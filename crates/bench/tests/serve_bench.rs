//! End-to-end checks of the serving-load bench: a real (miniature) run
//! round-trips through its own JSON parser and reproduces the pinned
//! certainty digest, and the checked-in CI baseline stays parseable and
//! pinned to the generator's digest.

use qarith_bench::serve::{
    check_serve_baseline, run_serve_bench, LoadMode, ServeBenchConfig, ServeBenchReport,
};
use qarith_bench::suite::SCHEMA_VERSION;
use qarith_datagen::WorkloadScale;

/// A fast configuration: 2 clients × 1 pass, 1 rep, default families
/// at the baseline's ε/seed so the certainty digest must agree with
/// the checked-in one.
fn mini_config() -> ServeBenchConfig {
    ServeBenchConfig {
        clients: 2,
        passes: 1,
        reps: 1,
        ..ServeBenchConfig::default_for(WorkloadScale::Tiny)
    }
}

fn baseline() -> ServeBenchReport {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/SERVE_tiny.json");
    let text = std::fs::read_to_string(path).expect("baseline JSON is checked in");
    ServeBenchReport::from_json(&text).expect("baseline parses")
}

#[test]
fn serve_run_round_trips_and_self_compares() {
    let report = run_serve_bench(&mini_config());
    let back = ServeBenchReport::from_json(&report.to_json()).expect("serve JSON parses");
    assert_eq!(back, report, "write → parse must be lossless (bit-exact numbers)");
    assert_eq!(check_serve_baseline(&report, &back, 0.25), Vec::<String>::new());
    // 2 clients × 1 pass × 10 workload SQL strings (9 distinct
    // templates — "Unfair Discount" appears in two families).
    assert_eq!(report.requests, 20);
    assert_eq!(report.templates, 9);
}

#[test]
fn certainty_digest_is_independent_of_client_concurrency() {
    // The digest comes from the sequential reference pass, so any
    // client configuration at equal (scale, seed, ε, families) must
    // reproduce it — including the checked-in 4-client baseline.
    let a = run_serve_bench(&mini_config());
    let b = run_serve_bench(&ServeBenchConfig { clients: 3, ..mini_config() });
    assert_eq!(a.certainty_digest, b.certainty_digest);
    assert_eq!(a.certainty_digest, baseline().certainty_digest);
}

#[test]
fn checked_in_serve_baseline_is_valid_and_pinned() {
    let baseline = baseline();
    assert_eq!(baseline.schema_version, SCHEMA_VERSION);
    assert_eq!(baseline.scale, "tiny");
    assert_eq!(baseline.seed, 2020);
    // Must agree with the generator pins in
    // crates/datagen/tests/determinism.rs — same seed, same scale.
    assert_eq!(baseline.db_tuples, 200);
    assert_eq!(baseline.db_num_nulls, 47);
    assert_eq!(baseline.db_digest, "0x75dc0786674255e7");
    assert_eq!(baseline.mode, "closed");
    assert_eq!(baseline.clients, 4, "the CI gate serves 4 concurrent clients");
    assert_eq!(baseline.templates, 9, "10 workload queries share one template");
    assert!(baseline.latency.p50 <= baseline.latency.p95);
    assert!(baseline.latency.p95 <= baseline.latency.p99);
    assert!(baseline.latency.p99 <= baseline.latency.max);
}

#[test]
fn checked_in_wire_baseline_is_valid_and_pinned() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/SERVE_WIRE_tiny.json");
    let text = std::fs::read_to_string(path).expect("wire baseline JSON is checked in");
    let wire = ServeBenchReport::from_json(&text).expect("wire baseline parses");
    assert_eq!(wire.schema_version, SCHEMA_VERSION);
    assert_eq!(wire.kind, "wire");
    assert_eq!(wire.scale, "tiny");
    assert_eq!(wire.seed, 2020);
    assert_eq!(wire.db_digest, "0x75dc0786674255e7");
    assert_eq!(wire.clients, 4, "the CI net-smoke gate serves 4 concurrent wire clients");
    // The wire carries exactly the bits the in-process service
    // produces: both baselines pin the same certainty digest.
    assert_eq!(wire.certainty_digest, baseline().certainty_digest);
    // And its connection books are closed: one reply per request,
    // nothing left open after the drain.
    let net: std::collections::HashMap<&str, u64> =
        wire.net.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    assert_eq!(net["frames_in"], net["frames_out"]);
    assert_eq!(net["connections_active"], 0);
    assert_eq!(net["connections_opened"], net["connections_closed"]);
    assert_eq!(net["protocol_errors"], 0);
}

#[test]
fn open_loop_mode_records_schedule_latency() {
    let config = ServeBenchConfig { mode: LoadMode::Open, rate: 2000.0, ..mini_config() };
    let report = run_serve_bench(&config);
    assert_eq!(report.mode, "open");
    assert_eq!(report.rate, 2000.0);
    // Same population, same digest: the load mode is timing-only.
    assert_eq!(report.certainty_digest, baseline().certainty_digest);
}
