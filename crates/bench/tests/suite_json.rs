//! End-to-end checks of the workload suite: a real (miniature) run
//! round-trips through its own JSON parser, is deterministic in every
//! non-timing field, and the checked-in CI baseline stays parseable and
//! pinned to the generator's digest.

use qarith_bench::suite::{
    check_against_baseline, run_suite, SuiteConfig, SuiteReport, SCHEMA_VERSION,
};
use qarith_datagen::{QueryFamily, WorkloadScale};

/// A fast configuration: all three families (execution coverage — SQL
/// that merely *compiles* can still be rejected by the CQ executor),
/// one coarse ε, single rep, a 2-client serving pass.
fn mini_config() -> SuiteConfig {
    SuiteConfig {
        scale: WorkloadScale::Tiny,
        seed: 2020,
        families: QueryFamily::all().to_vec(),
        epsilons: vec![0.1],
        threads: 2,
        reps: 1,
        serving_threads: 2,
        serving_passes: 1,
    }
}

/// Copies a report with every wall-time zeroed, leaving only the
/// deterministic fields.
fn detimed(report: &SuiteReport) -> SuiteReport {
    let mut r = report.clone();
    for f in &mut r.families {
        for q in &mut f.queries {
            q.candidate_seconds = 0.0;
            for p in &mut q.points {
                p.seconds = 0.0;
            }
        }
    }
    if let Some(s) = &mut r.serving {
        s.seconds = 0.0;
    }
    r
}

#[test]
fn suite_round_trips_through_its_own_parser() {
    let report = run_suite(&mini_config());
    let text = report.to_json();
    let back = SuiteReport::from_json(&text).expect("suite JSON parses");
    assert_eq!(back, report, "write → parse must be lossless (bit-exact numbers)");
    // And a run compares clean against itself under the gate.
    assert_eq!(check_against_baseline(&report, &back, 0.25), Vec::<String>::new());
}

#[test]
fn suite_is_deterministic_apart_from_timings() {
    let a = run_suite(&mini_config());
    let b = run_suite(&mini_config());
    assert_eq!(detimed(&a), detimed(&b));
}

#[test]
fn suite_covers_all_pipelines_and_families() {
    let config = mini_config();
    let report = run_suite(&config);
    assert_eq!(report.pipelines(), vec!["seq", "batch", "rewrite"]);
    assert_eq!(report.families.len(), 3);
    for f in &report.families {
        for q in &f.queries {
            assert_eq!(q.points.len(), 3 * config.epsilons.len(), "{}/{}", f.family, q.name);
            for p in &q.points {
                assert!(
                    p.certainties.iter().all(|c| (0.0..=1.0).contains(c)),
                    "{}/{} [{}]: certainty out of range",
                    f.family,
                    q.name,
                    p.pipeline
                );
                assert_eq!(p.certainties.len() as u64, q.candidates);
            }
        }
    }
    // The division family must actually reach the rewrite pipeline's
    // exact routing (its reason to exist); sum exact_factors over it.
    let division = report.families.iter().find(|f| f.family == "division").unwrap();
    let exact: u64 = division
        .queries
        .iter()
        .flat_map(|q| &q.points)
        .filter_map(|p| p.rewrite.as_ref())
        .flat_map(|r| r.iter())
        .filter(|(k, _)| k == "exact_factors")
        .map(|(_, v)| *v)
        .sum();
    assert!(exact > 0, "division family routed no factor to an exact evaluator");
    let serving = report.serving.as_ref().expect("serving pass enabled");
    assert_eq!(
        serving.queries,
        2 * report.families.iter().map(|f| f.queries.len() as u64).sum::<u64>()
    );
}

#[test]
fn checked_in_baseline_is_valid_and_pinned() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/BENCH_tiny.json");
    let text = std::fs::read_to_string(path).expect("baseline JSON is checked in");
    let baseline = SuiteReport::from_json(&text).expect("baseline parses");
    assert_eq!(baseline.schema_version, SCHEMA_VERSION);
    assert_eq!(baseline.scale, "tiny");
    assert_eq!(baseline.seed, 2020);
    // Must agree with the generator pins in
    // crates/datagen/tests/determinism.rs — same seed, same scale.
    assert_eq!(baseline.db_tuples, 200);
    assert_eq!(baseline.db_num_nulls, 47);
    assert_eq!(baseline.db_digest, "0x75dc0786674255e7");
    assert_eq!(baseline.pipelines(), vec!["seq", "batch", "rewrite"]);
    assert!(baseline.epsilons.len() >= 2, "CI gate needs ≥ 2 ε values");
    assert!(baseline.families.len() >= 2, "CI gate needs ≥ 2 families");
    assert!(baseline.serving.is_some(), "baseline must include the serving pass");
}
