//! Throughput of the rewrite pipeline against the plain batch engine on
//! the tiny-scale §9 sales workload, plus the raw pass-pipeline cost.
//!
//! Per query (forced AFPRAS, the paper's `m = ⌈ε⁻²⌉` prescription,
//! ε = 0.05 — the acceptance point of the `fig1 --rewrite` report):
//!
//! * `batch` — the PR 2 path: canonical dedup + ν-cache, no rewriting;
//! * `rewritten` — the same plus the `qarith-rewrite` pipeline:
//!   simplification, independence decomposition, exact routing of
//!   factors (spherical/arc/order/dimension evaluators), product
//!   combination;
//! * `passes_only` — `Rewriter::rewrite` alone over every uncertain
//!   candidate formula (the pure rewriting overhead, no measurement).
//!
//! Estimates on the two measured configurations agree within the
//! additive budget; what this bench tracks is the wall-clock effect of
//! trading Monte-Carlo directions for closed forms.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarith_bench::Fig1Harness;
use qarith_core::{BatchOptions, NuCache};
use qarith_datagen::sales::SalesScale;
use qarith_rewrite::{RewriteOptions, Rewriter};

const EPSILON: f64 = 0.05;
const SEED: u64 = 2020;
const BATCH: BatchOptions = BatchOptions { threads: 4, dedup: true };

fn per_query(c: &mut Criterion) {
    let harness = Fig1Harness::new(&SalesScale::tiny(), SEED);
    let mut group = c.benchmark_group("rewrite_throughput");
    for (qi, q) in harness.queries.iter().enumerate() {
        let name = q.name.replace(' ', "_");
        group.bench_with_input(BenchmarkId::new("batch", &name), &qi, |b, &qi| {
            b.iter(|| {
                harness.run_epsilon_batch(qi, EPSILON, SEED, BATCH, Some(Arc::new(NuCache::new())))
            });
        });
        group.bench_with_input(BenchmarkId::new("rewritten", &name), &qi, |b, &qi| {
            b.iter(|| {
                harness.run_epsilon_rewritten(
                    qi,
                    EPSILON,
                    SEED,
                    BATCH,
                    Some(Arc::new(NuCache::new())),
                )
            });
        });
    }
    group.finish();
}

fn passes_only(c: &mut Criterion) {
    let harness = Fig1Harness::new(&SalesScale::tiny(), SEED);
    let formulas: Vec<_> = harness
        .queries
        .iter()
        .flat_map(|q| q.candidates.iter().filter(|c| !c.certain).map(|c| c.formula.clone()))
        .collect();
    let rewriter = Rewriter::new(RewriteOptions::full());
    let mut group = c.benchmark_group("rewrite_passes");
    group.bench_function("workload_formulas", |b| {
        b.iter(|| {
            for f in &formulas {
                std::hint::black_box(rewriter.rewrite(f));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, per_query, passes_only);
criterion_main!(benches);
