//! Ablation A2: the Theorem 7.1 multiplicative FPRAS vs the Theorem 8.1
//! additive scheme on CQ(+,<) workloads (where both apply).
//!
//! The AFPRAS evaluates each direction in O(|φ|); the FPRAS pays for LP
//! interior points, hit-and-run mixing, and union multiplicity counting.
//! The paper chose the additive scheme for its implementation (§8: "more
//! natural to implement"); this bench quantifies that choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarith_constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith_core::afpras::{self, AfprasOptions};
use qarith_core::fpras::{self, FprasOptions};

/// A union of two disjoint n-dimensional cones (each an orthant slice).
fn cone_union(n: u32) -> QfFormula {
    let z = |i: u32| Polynomial::var(Var(i));
    let pos = QfFormula::and((0..n).map(|i| QfFormula::atom(Atom::new(z(i), ConstraintOp::Gt))));
    let neg = QfFormula::and((0..n).map(|i| QfFormula::atom(Atom::new(z(i), ConstraintOp::Lt))));
    QfFormula::or([pos, neg])
}

fn fpras_vs_afpras(c: &mut Criterion) {
    let mut group = c.benchmark_group("fpras_vs_afpras");
    group.sample_size(10);
    for n in [2u32, 4, 6] {
        let phi = cone_union(n);
        let a_opts = AfprasOptions { epsilon: 0.05, ..AfprasOptions::default() };
        group.bench_with_input(BenchmarkId::new("afpras", n), &n, |b, _| {
            b.iter(|| afpras::estimate_nu(&phi, &a_opts).unwrap());
        });
        let f_opts = FprasOptions { epsilon: 0.1, ..FprasOptions::default() };
        group.bench_with_input(BenchmarkId::new("fpras", n), &n, |b, _| {
            b.iter(|| fpras::estimate_nu(&phi, &f_opts).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, fpras_vs_afpras);
criterion_main!(benches);
