//! Ablation A3: sample-count policies for the additive scheme.
//!
//! The paper's §8 uses `m ≥ ε⁻²` for confidence 3/4; the Hoeffding-exact
//! count for (ε, δ) is `m = ⌈ln(2/δ)/(2ε²)⌉`. At δ = 1/4 Hoeffding draws
//! ≈ 1.04× the paper's count; at δ = 0.01 ≈ 2.65×. Accuracy-per-sample
//! comparisons live in the `ablations` binary; this bench tracks the time
//! cost of each policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarith_constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith_core::afpras::{estimate_nu, AfprasOptions, SampleCount};

fn wedge() -> QfFormula {
    let z = |i: u32| Polynomial::var(Var(i));
    QfFormula::and([
        QfFormula::atom(Atom::new(z(0), ConstraintOp::Ge)),
        QfFormula::atom(Atom::new(
            Polynomial::constant(qarith_numeric::Rational::new(7, 10))
                .checked_mul(&z(1))
                .unwrap()
                .checked_sub(&z(0))
                .unwrap(),
            ConstraintOp::Ge,
        )),
    ])
}

fn sample_count_policies(c: &mut Criterion) {
    let phi = wedge();
    let mut group = c.benchmark_group("ablation_samplecount");
    for eps in [0.05, 0.02] {
        for (label, policy, delta) in [
            ("paper_eps2", SampleCount::Paper, 0.25),
            ("hoeffding_d25", SampleCount::Hoeffding, 0.25),
            ("hoeffding_d01", SampleCount::Hoeffding, 0.01),
        ] {
            let opts =
                AfprasOptions { epsilon: eps, delta, samples: policy, ..AfprasOptions::default() };
            group.bench_with_input(
                BenchmarkId::new(label, format!("eps_{eps}")),
                &opts,
                |b, opts| b.iter(|| estimate_nu(&phi, opts).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, sample_count_policies);
criterion_main!(benches);
