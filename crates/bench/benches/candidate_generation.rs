//! Ablation A6: cost of the "Postgres side" — candidate generation by
//! the CQ executor as the database grows.
//!
//! Figure 1 measures only the Monte-Carlo phase; this bench tracks the
//! other half of the pipeline (hash-index construction + join
//! enumeration under candidate-counting LIMIT 25) at three database
//! scales, for the Competitive Advantage query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarith_datagen::sales::{sales_catalog, sales_database, SalesScale, COMPETITIVE_ADVANTAGE_SQL};
use qarith_engine::cq::{self, CqOptions};

fn candidate_generation(c: &mut Criterion) {
    let catalog = sales_catalog();
    let lowered = qarith_sql::compile(COMPETITIVE_ADVANTAGE_SQL, &catalog).unwrap();
    let mut group = c.benchmark_group("candidate_generation");
    group.sample_size(10);
    for (label, scale) in [
        ("tiny_200", SalesScale::tiny()),
        ("small_2k", SalesScale::small()),
        (
            "mid_20k",
            SalesScale {
                products: 10_000,
                orders: 9_000,
                markets: 1_000,
                segments: 1_000,
                null_rate: 0.02,
                market_null_rate: 0.25,
            },
        ),
    ] {
        let db = sales_database(&scale, 2020);
        group.bench_with_input(BenchmarkId::from_parameter(label), &db, |b, db| {
            b.iter(|| {
                cq::execute(&lowered.query, db, &CqOptions::with_candidate_limit(25)).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, candidate_generation);
criterion_main!(benches);
