//! Criterion version of Figure 1 (reduced grid).
//!
//! The `fig1` binary regenerates the full 19-point sweep at the paper's
//! scale; this bench tracks the same measurement — Monte-Carlo time per
//! query per ε — at the `small` scale with a 3-point ε grid so it can run
//! on every `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarith_bench::Fig1Harness;
use qarith_datagen::sales::SalesScale;

fn fig1(c: &mut Criterion) {
    let harness = Fig1Harness::new(&SalesScale::small(), 2020);
    let mut group = c.benchmark_group("fig1");
    for (qi, q) in harness.queries.iter().enumerate() {
        for eps in [0.1, 0.05, 0.02] {
            group.bench_with_input(
                BenchmarkId::new(q.name.replace(' ', "_"), format!("eps_{eps}")),
                &eps,
                |b, &eps| {
                    b.iter(|| harness.run_epsilon(qi, eps, 99));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
