//! Ablation A1: the §9 partial-vector sampling optimization.
//!
//! The paper: "instead of sampling the whole z̄, we only sample as many
//! coordinates of z̄ as needed to replace the nulls that affect the
//! result of the input query … speeds up the computation substantially."
//!
//! We compare the optimized mode (sample only the formula's coordinates)
//! against the naive mode (sample all |N_num(D)| coordinates and
//! project), for a formula over 4 nulls in databases with 100 / 1,000 /
//! 10,000 total numerical nulls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarith_constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith_core::afpras::{estimate_nu, AfprasOptions, SampleCount};

fn formula_over_four_nulls() -> QfFormula {
    let z = |i: u32| Polynomial::var(Var(i));
    QfFormula::and([
        QfFormula::atom(Atom::new(z(0), ConstraintOp::Gt)),
        QfFormula::atom(Atom::new(z(1) - z(0), ConstraintOp::Gt)),
        QfFormula::or([
            QfFormula::atom(Atom::new(z(2), ConstraintOp::Lt)),
            QfFormula::atom(Atom::new(z(3) - z(2), ConstraintOp::Gt)),
        ]),
    ])
}

fn sampling_modes(c: &mut Criterion) {
    let phi = formula_over_four_nulls();
    let mut group = c.benchmark_group("ablation_partial_sampling");
    let base =
        AfprasOptions { epsilon: 0.05, samples: SampleCount::Paper, ..AfprasOptions::default() };

    group.bench_function("partial_(paper_optimization)", |b| {
        b.iter(|| estimate_nu(&phi, &base).unwrap());
    });
    for total_nulls in [100usize, 1_000, 10_000] {
        let mut opts = base.clone();
        opts.full_dimension = Some(total_nulls);
        group.bench_with_input(
            BenchmarkId::new("full_vector", total_nulls),
            &total_nulls,
            |b, _| b.iter(|| estimate_nu(&phi, &opts).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, sampling_modes);
criterion_main!(benches);
