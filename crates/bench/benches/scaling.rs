//! Ablation A4: data-complexity scaling of the additive scheme.
//!
//! Theorem 8.1 promises time polynomial in |D| and 1/ε. The per-direction
//! cost is linear in the (deduplicated) formula; this bench scales the
//! ground formula along two axes: number of variables (nulls) and number
//! of disjuncts (derivations per candidate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarith_constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith_core::afpras::{estimate_nu, AfprasOptions, SampleCount};

/// Chain formula over n variables: z0 < z1 < … < z_{n−1}.
fn chain(n: u32) -> QfFormula {
    let z = |i: u32| Polynomial::var(Var(i));
    QfFormula::and((0..n - 1).map(|i| {
        QfFormula::atom(Atom::new(z(i).checked_sub(&z(i + 1)).unwrap(), ConstraintOp::Lt))
    }))
}

/// DNF with d disjuncts over 4 variables (mimics a candidate with d
/// derivations).
fn dnf(d: i64) -> QfFormula {
    let z = |i: u32| Polynomial::var(Var(i));
    QfFormula::or((0..d).map(|k| {
        QfFormula::and([
            QfFormula::atom(Atom::new(
                z(0).checked_sub(&Polynomial::constant(qarith_numeric::Rational::from_int(k)))
                    .unwrap(),
                ConstraintOp::Gt,
            )),
            QfFormula::atom(Atom::new(
                z((k % 4) as u32).checked_sub(&z(((k + 1) % 4) as u32)).unwrap(),
                ConstraintOp::Lt,
            )),
        ])
    }))
}

fn scaling(c: &mut Criterion) {
    let opts =
        AfprasOptions { epsilon: 0.05, samples: SampleCount::Paper, ..AfprasOptions::default() };

    let mut group = c.benchmark_group("scaling_variables");
    for n in [2u32, 4, 8, 16, 32] {
        let phi = chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| estimate_nu(&phi, &opts).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling_disjuncts");
    for d in [1i64, 8, 64, 256] {
        let phi = dnf(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| estimate_nu(&phi, &opts).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
