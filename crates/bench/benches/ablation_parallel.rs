//! Ablation A5: sequential vs multi-threaded Monte-Carlo sampling.
//!
//! The paper's Python implementation is sequential; the Rust AFPRAS can
//! split the m directions across threads (deterministic per-thread RNG
//! streams). The speedup matters at the Figure-1 high-precision end
//! (ε = 0.01 ⇒ m = 10,000 per candidate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarith_constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith_core::afpras::{estimate_nu, AfprasOptions, SampleCount};

/// A moderately expensive formula: 64-disjunct DNF over 8 variables with
/// quadratic atoms.
fn workload() -> QfFormula {
    let z = |i: u32| Polynomial::var(Var(i));
    QfFormula::or((0..64i64).map(|k| {
        let i = (k % 8) as u32;
        let j = ((k + 3) % 8) as u32;
        QfFormula::and([
            QfFormula::atom(Atom::new(
                z(i).checked_mul(&z(i)).unwrap().checked_sub(&z(j)).unwrap(),
                ConstraintOp::Lt,
            )),
            QfFormula::atom(Atom::new(z(j).checked_sub(&z(i)).unwrap(), ConstraintOp::Gt)),
        ])
    }))
}

fn parallel(c: &mut Criterion) {
    let phi = workload();
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let opts = AfprasOptions {
            epsilon: 0.01,
            samples: SampleCount::Paper,
            threads,
            ..AfprasOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| estimate_nu(&phi, &opts).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, parallel);
criterion_main!(benches);
