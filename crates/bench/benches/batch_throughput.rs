//! Throughput of the batch measurement engine against the plain
//! per-candidate loop, on the tiny-scale §9 sales workload.
//!
//! Three configurations per query (forced AFPRAS, the paper's
//! `m = ⌈ε⁻²⌉` prescription, ε = 0.02):
//!
//! * `sequential` — the uncached baseline: one measurement per
//!   candidate (`BatchOptions { threads: 1, dedup: false }`);
//! * `batch_cold` — canonical dedup + 4 worker threads, empty ν-cache
//!   every iteration;
//! * `batch_warm` — same, with a ν-cache already holding the workload
//!   (the production serving scenario: repeated analyst queries over a
//!   slowly-changing database re-measure the same canonical formulas).
//!
//! The `workload` group measures all three queries back to back with one
//! shared cache — the number EXPERIMENTS.md's batch-vs-sequential table
//! reports.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarith_bench::Fig1Harness;
use qarith_core::{BatchOptions, NuCache};
use qarith_datagen::sales::SalesScale;

const EPSILON: f64 = 0.02;
const SEED: u64 = 2020;

const SEQUENTIAL: BatchOptions = BatchOptions { threads: 1, dedup: false };
const BATCH: BatchOptions = BatchOptions { threads: 4, dedup: true };

fn per_query(c: &mut Criterion) {
    let harness = Fig1Harness::new(&SalesScale::tiny(), SEED);
    let mut group = c.benchmark_group("batch_throughput");
    for (qi, q) in harness.queries.iter().enumerate() {
        let name = q.name.replace(' ', "_");
        group.bench_with_input(BenchmarkId::new("sequential", &name), &qi, |b, &qi| {
            b.iter(|| harness.run_epsilon_batch(qi, EPSILON, SEED, SEQUENTIAL, None));
        });
        group.bench_with_input(BenchmarkId::new("batch_cold", &name), &qi, |b, &qi| {
            b.iter(|| {
                harness.run_epsilon_batch(qi, EPSILON, SEED, BATCH, Some(Arc::new(NuCache::new())))
            });
        });
        let warm = Arc::new(NuCache::new());
        harness.run_epsilon_batch(qi, EPSILON, SEED, BATCH, Some(warm.clone()));
        group.bench_with_input(BenchmarkId::new("batch_warm", &name), &qi, |b, &qi| {
            b.iter(|| harness.run_epsilon_batch(qi, EPSILON, SEED, BATCH, Some(warm.clone())));
        });
    }
    group.finish();
}

fn workload(c: &mut Criterion) {
    let harness = Fig1Harness::new(&SalesScale::tiny(), SEED);
    let queries: Vec<usize> = (0..harness.queries.len()).collect();
    let mut group = c.benchmark_group("batch_throughput_workload");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            for &qi in &queries {
                harness.run_epsilon_batch(qi, EPSILON, SEED, SEQUENTIAL, None);
            }
        });
    });
    group.bench_function("batch_cold", |b| {
        b.iter(|| {
            let cache = Arc::new(NuCache::new());
            for &qi in &queries {
                harness.run_epsilon_batch(qi, EPSILON, SEED, BATCH, Some(cache.clone()));
            }
        });
    });
    let warm = Arc::new(NuCache::new());
    for &qi in &queries {
        harness.run_epsilon_batch(qi, EPSILON, SEED, BATCH, Some(warm.clone()));
    }
    group.bench_function("batch_warm", |b| {
        b.iter(|| {
            for &qi in &queries {
                harness.run_epsilon_batch(qi, EPSILON, SEED, BATCH, Some(warm.clone()));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, per_query, workload);
criterion_main!(benches);
