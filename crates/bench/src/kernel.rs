//! The sampling-kernel microbench behind the `kernel_bench` binary.
//!
//! PR 9 restructured the AFPRAS hot loop — blocked structure-of-arrays
//! direction generation, the lane-parallel `limit_truth_block`
//! evaluator, and template-shared sampling across formulas with equal
//! sampled dimension (`estimate_nu_compiled_many`) — under a hard
//! bit-pinning contract: hits (and therefore every checked-in certainty
//! digest) must be unchanged. This module measures that kernel in
//! isolation, on the real workload's compiled formulas, and pins three
//! things in a schema-versioned `kernel` document that CI gates against
//! a checked-in baseline (`baselines/KERNEL_tiny.json`):
//!
//! * **hits digest** — a deterministic hash over every formula's
//!   (dimension, atom count, hit count). The hit counts are bit-pinned,
//!   so the digest must match *exactly* across machines; any drift is a
//!   kernel regression.
//! * **allocs per sample** — the hot loop allocates nothing: the SoA
//!   block and the evaluator scratch are asserted pointer- and
//!   capacity-stable across the whole run (`#![forbid(unsafe_code)]`
//!   rules out a counting allocator, so stability of the owned buffers
//!   is the observable). Pinned at 0.
//! * **directions/sec** — blocked-kernel throughput, gated with a
//!   relative tolerance like the suite's wall-time totals. The unit is
//!   the quantity every pipeline spends: one (formula, direction)
//!   evaluation — `formulas × directions_per_formula` per pass. Both
//!   sides of the comparison do exactly the same Monte-Carlo work
//!   (identical per-formula hit counts); the blocked side fills one
//!   shared SoA block per dimension group where the scalar reference
//!   re-draws per formula — amortization the per-formula stream
//!   derivation makes invisible to results.
//!
//! Every run also re-executes the pre-blocking scalar reference (one
//! `Vec` per draw, memoized short-circuit evaluation) and asserts its
//! hit counts equal the blocked kernel's — the bit-identity check runs
//! in-binary on every CI pass, not just in unit tests. The scalar
//! timing is reported (it is the denominator of the speedup table in
//! EXPERIMENTS.md) but not gated: two machine-dependent timings on one
//! side of a ratio would double the gate's noise.

use std::hash::{Hash, Hasher};
use std::time::Instant;

use qarith_core::afpras::{estimate_nu_compiled_many, AfprasOptions, SampleCount};
use qarith_datagen::{QueryFamily, WorkloadScale, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::json::{parse, Json, JsonError};
use crate::suite::{SCHEMA_NAME, SCHEMA_VERSION};
use crate::{CompiledFormula, Fig1Harness};

/// Configuration of one kernel run.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Database scale (the formulas come from the full workload at this
    /// scale: every family, every query, every uncertain candidate).
    pub scale: WorkloadScale,
    /// Generation + sampling seed.
    pub seed: u64,
    /// Directions drawn per formula.
    pub directions: usize,
    /// Timed repetitions; the recorded time is the minimum (noise only
    /// ever adds). Must be ≥ 1.
    pub reps: usize,
}

impl KernelConfig {
    /// The default configuration at a scale: the suite's seed, 4096
    /// directions per formula (≈ the ε = 0.016 sample count, deep into
    /// the hot loop's steady state), 3 reps.
    pub fn default_for(scale: WorkloadScale) -> KernelConfig {
        KernelConfig { scale, seed: 2020, directions: 4096, reps: 3 }
    }
}

/// One kernel run: the machine-readable artifact of `kernel_bench`.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Scale name.
    pub scale: String,
    /// Seed.
    pub seed: u64,
    /// Timed repetitions (min-of-reps timing).
    pub reps: u64,
    /// Compiled formulas measured (uncertain candidates with ≥ 1
    /// sampled coordinate, across all families and queries).
    pub formulas: u64,
    /// Largest direction-space dimension among them.
    pub max_dim: u64,
    /// Total deduplicated atoms across them.
    pub atoms: u64,
    /// Directions drawn per formula.
    pub directions_per_formula: u64,
    /// Total directions per timed rep (`formulas ×
    /// directions_per_formula`).
    pub directions_total: u64,
    /// Deterministic hex digest over every formula's (dim, atoms,
    /// hits). Bit-pinned: must match the baseline exactly.
    pub hits_digest: String,
    /// Heap allocations per sample in the hot loop, pinned by buffer
    /// stability assertions. Always 0.
    pub allocs_per_sample: u64,
    /// Blocked-kernel seconds for one pass over all formulas (min over
    /// reps).
    pub blocked_seconds: f64,
    /// Scalar-reference seconds for the same pass (min over reps).
    pub scalar_seconds: f64,
    /// `directions_total / blocked_seconds` — the gated throughput.
    pub directions_per_sec: f64,
    /// `directions_total / scalar_seconds` (informational).
    pub scalar_directions_per_sec: f64,
    /// `scalar_seconds / blocked_seconds` (informational).
    pub speedup: f64,
}

/// The workload's compiled formulas at a scale: one shared generated
/// database, every family's queries executed, the uncertain candidates'
/// compiled formulas collected in deterministic (family, query,
/// candidate) order. Zero-dimensional formulas are dropped — the
/// estimator decides them without sampling, so they never reach the
/// kernel.
fn workload_formulas(config: &KernelConfig) -> Vec<CompiledFormula> {
    let db = qarith_datagen::sales::sales_database(&config.scale.params(), config.seed);
    let mut formulas = Vec::new();
    for family in QueryFamily::all() {
        let spec = WorkloadSpec { scale: config.scale, family, seed: config.seed };
        let workload = qarith_datagen::Workload { spec, db: db.clone(), queries: family.queries() };
        let harness = Fig1Harness::from_workload(workload);
        for q in harness.queries {
            formulas.extend(q.compiled.into_iter().filter(|c| c.dim() > 0));
        }
    }
    formulas
}

/// The pre-blocking AFPRAS worker, kept verbatim as the measurement
/// reference: one `Vec` per draw, memoized scalar evaluation. Stream 0,
/// like the single-threaded blocked path.
fn scalar_reference_hits(compiled: &CompiledFormula, seed: u64, quota: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64);
    let dim = compiled.dim();
    let mut memo = compiled.new_memo();
    let mut hits = 0usize;
    for _ in 0..quota {
        let dir = qarith_geometry::sample_unit_sphere(&mut rng, dim);
        if compiled.limit_truth(&dir, &mut memo) {
            hits += 1;
        }
    }
    hits
}

/// Drives the blocked hot loop directly and asserts it never
/// reallocates: the SoA block keeps its pointer and capacity, the
/// evaluator scratch keeps its capacity, across every iteration.
/// Returns the pinned allocs-per-sample figure (0) so the call site
/// reads as what it records.
fn assert_hot_loop_allocation_free(compiled: &CompiledFormula, seed: u64, quota: usize) -> u64 {
    const BLOCK: usize = 64;
    let dim = compiled.dim();
    let block = quota.clamp(1, BLOCK);
    let mut soa = vec![0.0f64; dim * block];
    let mut scratch = compiled.new_block_scratch(block);
    let ptr = soa.as_ptr();
    let (cap, scratch_cap) = (soa.capacity(), scratch.capacity());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64);
    let mut remaining = quota;
    while remaining > 0 {
        let count = remaining.min(block);
        qarith_geometry::fill_unit_sphere_block(&mut rng, dim, count, &mut soa[..dim * count]);
        let _ = compiled.limit_truth_block(&soa[..dim * count], count, &mut scratch);
        assert!(
            std::ptr::eq(ptr, soa.as_ptr())
                && soa.capacity() == cap
                && scratch.capacity() == scratch_cap,
            "hot-loop buffer reallocated (dim {dim}, block {block})"
        );
        remaining -= count;
    }
    0
}

/// Runs the kernel benchmark: blocked kernel and scalar reference over
/// the workload's formulas, hit-count bit-identity asserted inline,
/// buffers pinned allocation-free, timings min-of-reps.
pub fn run_kernel(config: &KernelConfig) -> KernelReport {
    let formulas = workload_formulas(config);
    assert!(!formulas.is_empty(), "workload produced no sampled formulas");
    let m = config.directions.max(1);
    let sample_seed = config.seed ^ 0xF1616;
    let opts = AfprasOptions {
        samples: SampleCount::Fixed(m),
        seed: sample_seed,
        threads: 1,
        ..AfprasOptions::default()
    };

    let refs: Vec<&CompiledFormula> = formulas.iter().collect();
    let mut blocked_seconds = f64::INFINITY;
    let mut scalar_seconds = f64::INFINITY;
    let mut hits: Vec<usize> = Vec::new();
    for rep in 0..config.reps.max(1) {
        let started = Instant::now();
        let blocked: Vec<usize> =
            estimate_nu_compiled_many(&refs, &opts).iter().map(|o| o.hits).collect();
        blocked_seconds = blocked_seconds.min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        let scalar: Vec<usize> =
            formulas.iter().map(|c| scalar_reference_hits(c, sample_seed, m)).collect();
        scalar_seconds = scalar_seconds.min(started.elapsed().as_secs_f64());

        // The bit-pinning contract, checked on every run: the blocked
        // kernel's hit counts equal the scalar reference's, formula by
        // formula, rep by rep.
        assert_eq!(
            blocked, scalar,
            "blocked kernel diverged from the scalar reference (rep {rep})"
        );
        hits = blocked;
    }

    // The allocation pin, on the widest formula (the one whose buffers
    // would be likeliest to grow).
    let widest = formulas.iter().max_by_key(|c| c.dim()).expect("non-empty");
    let allocs_per_sample = assert_hot_loop_allocation_free(widest, sample_seed, m);

    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    (formulas.len() as u64).hash(&mut hasher);
    (m as u64).hash(&mut hasher);
    for (c, h) in formulas.iter().zip(&hits) {
        (c.dim() as u64, c.atom_count() as u64, *h as u64).hash(&mut hasher);
    }
    let hits_digest = format!("{:#018x}", hasher.finish());

    let directions_total = (formulas.len() * m) as u64;
    KernelReport {
        schema_version: SCHEMA_VERSION,
        scale: config.scale.name().to_string(),
        seed: config.seed,
        reps: config.reps.max(1) as u64,
        formulas: formulas.len() as u64,
        max_dim: formulas.iter().map(|c| c.dim() as u64).max().unwrap_or(0),
        atoms: formulas.iter().map(|c| c.atom_count() as u64).sum(),
        directions_per_formula: m as u64,
        directions_total,
        hits_digest,
        allocs_per_sample,
        blocked_seconds,
        scalar_seconds,
        directions_per_sec: directions_total as f64 / blocked_seconds.max(1e-12),
        scalar_directions_per_sec: directions_total as f64 / scalar_seconds.max(1e-12),
        speedup: scalar_seconds / blocked_seconds.max(1e-12),
    }
}

// ---------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------

impl KernelReport {
    /// Serializes to the pretty-printed `kernel`-kind document (schema
    /// v4, like the suite/serve/wire kinds).
    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", Json::str(SCHEMA_NAME)),
            ("schema_version", Json::num_u64(self.schema_version)),
            ("kind", Json::str("kernel")),
            ("scale", Json::str(&self.scale)),
            ("seed", Json::num_u64(self.seed)),
            ("reps", Json::num_u64(self.reps)),
            (
                "kernel",
                Json::obj([
                    ("formulas", Json::num_u64(self.formulas)),
                    ("max_dim", Json::num_u64(self.max_dim)),
                    ("atoms", Json::num_u64(self.atoms)),
                    ("directions_per_formula", Json::num_u64(self.directions_per_formula)),
                    ("directions_total", Json::num_u64(self.directions_total)),
                    ("hits_digest", Json::str(&self.hits_digest)),
                    ("allocs_per_sample", Json::num_u64(self.allocs_per_sample)),
                    ("blocked_seconds", Json::Num(self.blocked_seconds)),
                    ("scalar_seconds", Json::Num(self.scalar_seconds)),
                    ("directions_per_sec", Json::Num(self.directions_per_sec)),
                    ("scalar_directions_per_sec", Json::Num(self.scalar_directions_per_sec)),
                    ("speedup", Json::Num(self.speedup)),
                ]),
            ),
        ])
        .pretty()
    }

    /// Parses a document produced by [`KernelReport::to_json`]. Rejects
    /// unknown schema names, future versions, and non-kernel kinds.
    pub fn from_json(text: &str) -> Result<KernelReport, String> {
        let doc = parse(text).map_err(|e: JsonError| e.to_string())?;
        let schema = req_str(&doc, "schema")?;
        if schema != SCHEMA_NAME {
            return Err(format!("unknown schema `{schema}` (expected `{SCHEMA_NAME}`)"));
        }
        let schema_version = req_u64(&doc, "schema_version")?;
        if schema_version > SCHEMA_VERSION {
            return Err(format!(
                "schema version {schema_version} is newer than this binary's {SCHEMA_VERSION}"
            ));
        }
        let kind = req_str(&doc, "kind")?;
        if kind != "kernel" {
            return Err(format!("document kind `{kind}` is not a kernel report"));
        }
        let k = doc.get("kernel").ok_or("missing field `kernel`")?;
        Ok(KernelReport {
            schema_version,
            scale: req_str(&doc, "scale")?,
            seed: req_u64(&doc, "seed")?,
            reps: req_u64(&doc, "reps")?,
            formulas: req_u64(k, "formulas")?,
            max_dim: req_u64(k, "max_dim")?,
            atoms: req_u64(k, "atoms")?,
            directions_per_formula: req_u64(k, "directions_per_formula")?,
            directions_total: req_u64(k, "directions_total")?,
            hits_digest: req_str(k, "hits_digest")?,
            allocs_per_sample: req_u64(k, "allocs_per_sample")?,
            blocked_seconds: req_f64(k, "blocked_seconds")?,
            scalar_seconds: req_f64(k, "scalar_seconds")?,
            directions_per_sec: req_f64(k, "directions_per_sec")?,
            scalar_directions_per_sec: req_f64(k, "scalar_directions_per_sec")?,
            speedup: req_f64(k, "speedup")?,
        })
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing integer field `{key}`"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number field `{key}`"))
}

// ---------------------------------------------------------------------
// Baseline gate
// ---------------------------------------------------------------------

/// Compares a fresh kernel report against the checked-in baseline.
/// Returns the list of failures (empty ⇒ gate passes).
///
/// * **Configuration** must match exactly: schema version, scale, seed,
///   reps, formula/atom/dimension census, direction counts. A mismatch
///   means the two reports measure different workloads.
/// * **Hits digest** must match exactly — the hit counts are bit-pinned
///   (same RNG stream, same evaluator semantics), so *any* drift is a
///   kernel regression or an intentional change that must re-pin the
///   baseline in the same commit.
/// * **Allocs per sample** must match exactly (pinned at 0).
/// * **Throughput** (`directions_per_sec`) is gated with the given
///   relative tolerance: fresh may not fall below
///   `baseline / (1 + tolerance)`. The scalar reference timing and the
///   speedup ratio are informational only.
pub fn check_kernel_baseline(
    fresh: &KernelReport,
    baseline: &KernelReport,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut cfg = |name: &str, a: String, b: String| {
        if a != b {
            failures.push(format!("config mismatch: {name} is {a}, baseline has {b}"));
        }
    };
    cfg("schema_version", fresh.schema_version.to_string(), baseline.schema_version.to_string());
    cfg("scale", fresh.scale.clone(), baseline.scale.clone());
    cfg("seed", fresh.seed.to_string(), baseline.seed.to_string());
    cfg("reps", fresh.reps.to_string(), baseline.reps.to_string());
    cfg("formulas", fresh.formulas.to_string(), baseline.formulas.to_string());
    cfg("max_dim", fresh.max_dim.to_string(), baseline.max_dim.to_string());
    cfg("atoms", fresh.atoms.to_string(), baseline.atoms.to_string());
    cfg(
        "directions_per_formula",
        fresh.directions_per_formula.to_string(),
        baseline.directions_per_formula.to_string(),
    );
    cfg(
        "directions_total",
        fresh.directions_total.to_string(),
        baseline.directions_total.to_string(),
    );
    if !failures.is_empty() {
        return failures;
    }
    if fresh.hits_digest != baseline.hits_digest {
        failures.push(format!(
            "hits digest drift: {} vs baseline {} — the kernel's hit counts changed",
            fresh.hits_digest, baseline.hits_digest
        ));
    }
    if fresh.allocs_per_sample != baseline.allocs_per_sample {
        failures.push(format!(
            "allocs per sample changed: {} vs baseline {}",
            fresh.allocs_per_sample, baseline.allocs_per_sample
        ));
    }
    if baseline.directions_per_sec > 0.0
        && fresh.directions_per_sec < baseline.directions_per_sec / (1.0 + tolerance)
    {
        failures.push(format!(
            "kernel throughput regressed: {:.0} directions/sec vs baseline {:.0} \
             (−{:.0}% > {:.0}% tolerance)",
            fresh.directions_per_sec,
            baseline.directions_per_sec,
            100.0 * (1.0 - fresh.directions_per_sec / baseline.directions_per_sec),
            100.0 * tolerance
        ));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> KernelReport {
        KernelReport {
            schema_version: SCHEMA_VERSION,
            scale: "tiny".into(),
            seed: 2020,
            reps: 3,
            formulas: 40,
            max_dim: 9,
            atoms: 300,
            directions_per_formula: 4096,
            directions_total: 163_840,
            hits_digest: "0x75dc0786674255e7".into(),
            allocs_per_sample: 0,
            blocked_seconds: 0.02,
            scalar_seconds: 0.15,
            directions_per_sec: 8_192_000.0,
            scalar_directions_per_sec: 1_092_266.0,
            speedup: 7.5,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = tiny_report();
        let text = report.to_json();
        let back = KernelReport::from_json(&text).expect("parse own output");
        assert_eq!(back, report);
    }

    #[test]
    fn non_kernel_kinds_are_rejected() {
        let text = tiny_report().to_json().replace("\"kernel\"", "\"suite\"");
        assert!(KernelReport::from_json(&text).unwrap_err().contains("not a kernel report"));
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let report = tiny_report();
        assert_eq!(check_kernel_baseline(&report, &report, 0.25), Vec::<String>::new());
    }

    #[test]
    fn digest_drift_fails_the_gate() {
        let baseline = tiny_report();
        let mut fresh = baseline.clone();
        fresh.hits_digest = "0x0000000000000bad".into();
        let failures = check_kernel_baseline(&fresh, &baseline, 0.25);
        assert!(failures.iter().any(|f| f.contains("digest drift")), "{failures:?}");
    }

    #[test]
    fn throughput_regression_fails_and_tolerated_run_passes() {
        let baseline = tiny_report();
        let mut fresh = baseline.clone();
        fresh.directions_per_sec = baseline.directions_per_sec / 1.2; // within 25%
        assert_eq!(check_kernel_baseline(&fresh, &baseline, 0.25), Vec::<String>::new());
        fresh.directions_per_sec = baseline.directions_per_sec / 1.5;
        let failures = check_kernel_baseline(&fresh, &baseline, 0.25);
        assert!(failures.iter().any(|f| f.contains("throughput regressed")), "{failures:?}");
    }

    #[test]
    fn config_mismatch_fails_fast() {
        let baseline = tiny_report();
        let mut fresh = baseline.clone();
        fresh.formulas = 41;
        fresh.hits_digest = "0xdead".into();
        let failures = check_kernel_baseline(&fresh, &baseline, 0.25);
        assert!(failures.iter().any(|f| f.contains("formulas")), "{failures:?}");
        // Census mismatch fails fast, before the digest comparison.
        assert!(!failures.iter().any(|f| f.contains("digest")), "{failures:?}");
    }

    #[test]
    fn kernel_run_is_deterministic_and_allocation_free() {
        let config = KernelConfig {
            directions: 128,
            reps: 1,
            ..KernelConfig::default_for(WorkloadScale::Tiny)
        };
        let a = run_kernel(&config);
        let b = run_kernel(&config);
        assert_eq!(a.hits_digest, b.hits_digest);
        assert_eq!(a.formulas, b.formulas);
        assert_eq!(a.allocs_per_sample, 0);
        assert!(a.formulas > 0 && a.max_dim > 0);
        assert_eq!(a.directions_total, a.formulas * a.directions_per_formula);
    }
}
