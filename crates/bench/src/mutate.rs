//! Mutation load against the `qarith-serve` write path — the engine
//! behind `serve_bench --mutate` and the CI `mutation-smoke` step.
//!
//! [`run_mutate_bench`] reuses the [`crate::serve`] report shape
//! (document kind `"mutate"`) and measures the *live database* cycle:
//! a deterministic stream of write batches
//! ([`qarith_datagen::mutations::sales_mutations`]) interleaved with
//! full replays of the query-template population against the evolving
//! epochs. Per repetition:
//!
//! 1. a pristine service is rebuilt from the generated database, its
//!    plan cache warmed by one untimed pass (so the timed phase
//!    measures mutation serving, not first-compilation);
//! 2. for each batch: `QueryService::apply` is timed (epoch build +
//!    publication + delta-aware invalidation), then every template is
//!    re-queried and timed — the post-write queries pay exactly the
//!    re-measurement the invalidation made necessary, which is the
//!    quantity this bench exists to watch;
//! 3. every response is checked to carry the epoch and database digest
//!    the preceding write acked — a torn or stale snapshot is a
//!    correctness failure, not a measurement.
//!
//! The certainty digest is pinned on an epoch-0 reference pass over
//! the template population *before* any mutation, so the CI gate
//! ([`crate::serve::check_serve_baseline`]) keeps its bit-exactness
//! property: the mutation stream is deterministic, the epoch-0
//! answers are deterministic, and p95 (pooled write + query
//! latencies) is gated with the usual tolerance.
//!
//! The driver is single-threaded by design: concurrency is the epoch
//! torture test's job (`crates/serve/tests/epoch_torture.rs`); this
//! bench wants attributable latencies for the write path itself.

use std::sync::Arc;

use qarith_datagen::mutations::{sales_mutations, MutationShape};
use qarith_datagen::{database_digest, QueryFamily};
use qarith_serve::{QueryService, ServeConfig, ShardedCacheConfig};
use qarith_types::{Database, WriteBatch};

use crate::serve::{
    pairs, response_bits, serving_options, stage_latencies, LatencySummary, ServeBenchConfig,
    ServeBenchReport,
};
use crate::suite::SCHEMA_VERSION;

/// The mutation stream replayed each repetition: 8 batches of 4 ops.
/// Small enough for a CI smoke step at tiny scale, large enough that
/// every op kind (insert with fresh nulls, delete, update) appears.
pub const MUTATE_SHAPE: MutationShape = MutationShape { batches: 8, ops_per_batch: 4 };

/// Runs the configured mutation load. Panics if any post-write
/// response names an epoch or digest other than the one the write
/// acked — that is a snapshot-consistency failure, not a measurement.
///
/// `clients`, `mode`, and `rate` from the config are ignored (the
/// driver is single-threaded closed-loop); the report pins them to
/// `1` / `"closed"` / `0` so fresh-vs-baseline config comparison
/// stays meaningful regardless of how the binary was invoked.
pub fn run_mutate_bench(config: &ServeBenchConfig) -> ServeBenchReport {
    let db = qarith_datagen::sales::sales_database(&config.scale.params(), config.seed);
    let db_stats = db.stats();
    let db_digest = format!("{:#018x}", database_digest(&db));
    let stream = sales_mutations(&db, config.seed, MUTATE_SHAPE);

    let sql: Vec<String> =
        config.families.iter().flat_map(QueryFamily::queries).map(|q| q.sql).collect();
    assert!(!sql.is_empty(), "no query families configured");

    let service_for = |db: Database| {
        Arc::new(QueryService::new(
            db,
            ServeConfig {
                options: serving_options(config.epsilon, config.seed),
                cache: ShardedCacheConfig {
                    shards: config.cache_shards,
                    budget_bytes: config.cache_budget_bytes,
                },
                max_in_flight: config.max_in_flight,
                ..ServeConfig::default()
            },
        ))
    };

    // Epoch-0 reference pass on a throwaway service: pins the certainty
    // digest the gate compares bit for bit. Mutations never touch it.
    let reference = service_for(db.clone());
    let mut digest = qarith_numeric::Fnv1a64::new();
    for q in &sql {
        let response = reference.query(q).expect("workload SQL serves");
        digest.update(response.fingerprint.as_bytes());
        for (tuple, value, samples, dimension) in response_bits(&response) {
            digest.update(tuple.as_bytes());
            for n in [value, samples, dimension] {
                digest.update(&n.to_le_bytes());
            }
        }
    }
    drop(reference);

    // Timed repetitions over pristine rebuilds; keep the min-p95 rep.
    let requests_per_rep = MUTATE_SHAPE.batches * (1 + sql.len());
    let mut best: Option<(LatencySummary, f64, Arc<QueryService>)> = None;
    for _ in 0..config.reps.max(1) {
        let service = service_for(db.clone());
        let (mut latencies, seconds) = timed_rep(&service, &sql, &stream);
        let summary = LatencySummary::of(&mut latencies);
        if best.as_ref().map_or(true, |(b, _, _)| summary.p95 < b.p95) {
            best = Some((summary, seconds, service));
        }
    }
    let (latency, seconds, service) = best.expect("reps ≥ 1");

    let templates: std::collections::HashSet<String> = sql
        .iter()
        .map(|q| qarith_sql::sql_fingerprint(q).expect("workload SQL fingerprints"))
        .collect();

    ServeBenchReport {
        schema_version: SCHEMA_VERSION,
        kind: "mutate".to_string(),
        scale: config.scale.name().to_string(),
        seed: config.seed,
        epsilon: config.epsilon,
        clients: 1,
        passes: MUTATE_SHAPE.batches as u64,
        mode: "closed".to_string(),
        rate: 0.0,
        reps: config.reps.max(1) as u64,
        db_tuples: db_stats.tuples as u64,
        db_num_nulls: db_stats.num_nulls as u64,
        db_digest,
        templates: templates.len() as u64,
        requests: requests_per_rep as u64,
        seconds,
        qps: requests_per_rep as f64 / seconds.max(1e-9),
        latency,
        service: pairs(&service.stats().as_pairs()),
        admission: pairs(&service.admission_stats().as_pairs()),
        cache: pairs(&service.cache_stats().as_pairs()),
        net: Vec::new(),
        stages: stage_latencies(&service),
        certainty_digest: format!("{:#018x}", digest.finish()),
    }
}

/// One timed repetition on a pristine service: warm the plan cache,
/// then interleave the whole mutation stream with template replays.
/// Returns pooled per-operation latencies (writes and queries) and the
/// repetition's wall-clock seconds.
fn timed_rep(
    service: &Arc<QueryService>,
    sql: &[String],
    stream: &[WriteBatch],
) -> (Vec<f64>, f64) {
    use std::time::Instant;

    // Untimed warmup: plans compiled, epoch-0 groups cached.
    for q in sql {
        service.query(q).expect("warmup query serves");
    }

    let mut latencies = Vec::with_capacity(stream.len() * (1 + sql.len()));
    let start = Instant::now();
    for batch in stream {
        let issued = Instant::now();
        let outcome = service.apply(batch).expect("mutation batch commits");
        latencies.push(issued.elapsed().as_secs_f64());
        assert_eq!(outcome.noops, 0, "the generated stream is constructed to apply every op");
        for q in sql {
            let issued = Instant::now();
            let response = service.query(q).expect("query serves across epochs");
            latencies.push(issued.elapsed().as_secs_f64());
            assert_eq!(
                (response.epoch, response.db_digest),
                (outcome.epoch, outcome.db_digest),
                "a post-write response must execute against the acked snapshot"
            );
        }
    }
    (latencies, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_datagen::WorkloadScale;

    fn tiny_config() -> ServeBenchConfig {
        ServeBenchConfig { reps: 1, ..ServeBenchConfig::default_for(WorkloadScale::Tiny) }
    }

    #[test]
    fn mutate_report_round_trips_and_counts_add_up() {
        let report = run_mutate_bench(&tiny_config());
        assert_eq!(report.kind, "mutate");
        assert_eq!(report.requests, (MUTATE_SHAPE.batches * (1 + 10)) as u64);
        let counter = |block: &[(String, u64)], name: &str| {
            block.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
        };
        assert_eq!(counter(&report.service, "writes"), MUTATE_SHAPE.batches as u64);
        assert_eq!(counter(&report.service, "write_ops"), MUTATE_SHAPE.total_ops() as u64);
        assert_eq!(counter(&report.service, "epoch"), MUTATE_SHAPE.batches as u64);
        assert!(counter(&report.cache, "invalidations") > 0, "writes must invalidate");
        // The write stages fired and landed in the report.
        for stage in ["write_apply", "invalidate"] {
            let row = report.stages.iter().find(|s| s.stage == stage).expect("stage present");
            assert_eq!(row.count, MUTATE_SHAPE.batches as u64);
        }
        let back = ServeBenchReport::from_json(&report.to_json()).expect("parse own output");
        assert_eq!(back, report);
    }

    #[test]
    fn certainty_digest_is_reproducible_and_epoch0_pinned() {
        let a = run_mutate_bench(&tiny_config());
        let b = run_mutate_bench(&tiny_config());
        assert_eq!(a.certainty_digest, b.certainty_digest);
        assert_eq!(a.db_digest, b.db_digest);
    }
}
