//! A small Prometheus text-format (version 0.0.4) validator for the
//! `GET /metrics` exposition — the checked-in arbiter behind the CI
//! `metrics-smoke` step and the `metrics_smoke` binary.
//!
//! This is not a full parser of the exposition format; it checks the
//! invariants a scrape of *this* workspace must satisfy:
//!
//! * every sample line parses as `name[{labels}] value` with a
//!   `qarith_`-prefixed name and a finite numeric value;
//! * every sample's family has `# HELP` and `# TYPE` preambles, and
//!   the declared type is one of `counter`/`gauge`/`histogram`;
//! * every `histogram` family is complete and internally consistent:
//!   its `_bucket` cumulative counts are non-decreasing in `le` order,
//!   the last bucket is `le="+Inf"`, and `_count` equals that `+Inf`
//!   cumulative count exactly (the tracer derives the count from the
//!   buckets, so even a scrape racing recording must satisfy this);
//! * `counter` and `gauge` samples carry non-negative integer values.
//!
//! [`validate`] returns every violation found (empty ⇒ the text is a
//! valid qarith exposition), plus summary counts the caller can assert
//! coverage on (e.g. "≥ 6 per-stage histogram families").

/// What [`validate`] found in one exposition body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PromReport {
    /// Every invariant violation, human-readable. Empty ⇒ valid.
    pub failures: Vec<String>,
    /// Families declared `# TYPE ... counter` or `gauge` that carried
    /// at least one sample.
    pub scalar_families: usize,
    /// Families declared `# TYPE ... histogram` that carried at least
    /// one `_bucket` sample.
    pub histogram_families: usize,
    /// Histogram families whose name starts with `qarith_stage_` —
    /// the per-stage latency families the tracer exports.
    pub stage_families: usize,
}

/// One parsed sample line: family name (label set stripped, histogram
/// suffix kept), optional `le` label, value text.
struct Sample<'a> {
    name: &'a str,
    le: Option<&'a str>,
    value: &'a str,
    line: &'a str,
}

fn parse_sample(line: &str) -> Result<Sample<'_>, String> {
    let Some((name_labels, value)) = line.rsplit_once(' ') else {
        return Err(format!("sample line without a value: `{line}`"));
    };
    let (name, le) = match name_labels.split_once('{') {
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set: `{line}`"))?;
            let mut le = None;
            for label in labels.split(',').filter(|l| !l.is_empty()) {
                let (key, val) = label
                    .split_once('=')
                    .ok_or_else(|| format!("malformed label `{label}` in `{line}`"))?;
                let val = val
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value in `{line}`"))?;
                if key == "le" {
                    le = Some(val);
                }
            }
            (name, le)
        }
        None => (name_labels, None),
    };
    Ok(Sample { name, le, value, line })
}

/// Validates one `/metrics` body. See the module docs for the
/// invariant list.
pub fn validate(text: &str) -> PromReport {
    let mut report = PromReport::default();
    let mut types: Vec<(String, String)> = Vec::new();
    let mut helps: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut words = rest.split_ascii_whitespace();
            match (words.next(), words.next()) {
                (Some(name), Some(kind)) => {
                    if !matches!(kind, "counter" | "gauge" | "histogram") {
                        report.failures.push(format!("unknown TYPE `{kind}` for {name}"));
                    }
                    types.push((name.to_string(), kind.to_string()));
                }
                _ => report.failures.push(format!("malformed TYPE line: `{line}`")),
            }
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some(name) = rest.split_ascii_whitespace().next() {
                helps.push(name.to_string());
            }
        }
    }
    let type_of = |name: &str| types.iter().find(|(n, _)| n == name).map(|(_, k)| k.as_str());

    // Group samples by family: a histogram family `f` owns `f_bucket`,
    // `f_sum`, and `f_count`; scalars own their own name.
    let samples: Vec<Sample<'_>> = text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .filter_map(|l| match parse_sample(l) {
            Ok(s) => Some(s),
            Err(e) => {
                report.failures.push(e);
                None
            }
        })
        .collect();

    let mut seen_scalar: Vec<&str> = Vec::new();
    let mut seen_histogram: Vec<&str> = Vec::new();
    for sample in &samples {
        if !sample.name.starts_with("qarith_") {
            report.failures.push(format!("unprefixed metric `{}`", sample.name));
        }
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let stem = sample.name.strip_suffix(suffix)?;
                // `_count`/`_sum` are histogram samples only when the
                // stem is a declared histogram (a plain counter named
                // `..._count` stays a scalar).
                (type_of(stem) == Some("histogram")).then_some(stem)
            })
            .unwrap_or(sample.name);
        let declared = type_of(family);
        if declared.is_none() {
            report.failures.push(format!("sample without a TYPE preamble: `{}`", sample.line));
            continue;
        }
        if !helps.iter().any(|h| h == family) {
            report.failures.push(format!("family `{family}` has no HELP line"));
        }
        match declared {
            Some("histogram") => {
                if !seen_histogram.contains(&family) {
                    seen_histogram.push(family);
                }
            }
            _ => {
                if sample.value.parse::<u64>().is_err() {
                    report.failures.push(format!(
                        "non-integer {} sample: `{}`",
                        declared.unwrap_or("scalar"),
                        sample.line
                    ));
                }
                if !seen_scalar.contains(&sample.name) {
                    seen_scalar.push(sample.name);
                }
            }
        }
    }

    for family in &seen_histogram {
        check_histogram(family, &samples, &mut report.failures);
    }
    report.scalar_families = seen_scalar.len();
    report.histogram_families = seen_histogram.len();
    report.stage_families =
        seen_histogram.iter().filter(|f| f.starts_with("qarith_stage_")).count();
    report
}

/// The histogram invariants: buckets cumulative and ordered, `+Inf`
/// last, `_count == +Inf`, `_sum` present and finite.
fn check_histogram(family: &str, samples: &[Sample<'_>], failures: &mut Vec<String>) {
    let bucket_name = format!("{family}_bucket");
    let buckets: Vec<&Sample<'_>> = samples.iter().filter(|s| s.name == bucket_name).collect();
    if buckets.is_empty() {
        failures.push(format!("histogram `{family}` has no _bucket samples"));
        return;
    }

    let mut prev_le = f64::NEG_INFINITY;
    let mut prev_count = 0u64;
    let mut inf_count = None;
    for bucket in &buckets {
        let Some(le) = bucket.le else {
            failures.push(format!("bucket without an le label: `{}`", bucket.line));
            continue;
        };
        let Ok(count) = bucket.value.parse::<u64>() else {
            failures.push(format!("non-integer bucket count: `{}`", bucket.line));
            continue;
        };
        let le_value =
            if le == "+Inf" { f64::INFINITY } else { le.parse::<f64>().unwrap_or(f64::NAN) };
        // NaN (an unparseable bound) must fail too, so compare via
        // partial_cmp rather than `le_value > prev_le`.
        if le_value.partial_cmp(&prev_le) != Some(std::cmp::Ordering::Greater) {
            failures.push(format!(
                "bucket bounds not strictly increasing at `{}` (previous {prev_le})",
                bucket.line
            ));
        }
        if count < prev_count {
            failures.push(format!(
                "cumulative bucket count decreased at `{}` (previous {prev_count})",
                bucket.line
            ));
        }
        if le == "+Inf" {
            inf_count = Some(count);
        }
        prev_le = le_value;
        prev_count = count;
    }
    let last_is_inf = buckets.last().and_then(|b| b.le) == Some("+Inf");
    if !last_is_inf {
        failures.push(format!("histogram `{family}` does not end with an le=\"+Inf\" bucket"));
    }

    let scalar = |suffix: &str| -> Option<&str> {
        let name = format!("{family}{suffix}");
        samples.iter().find(|s| s.name == name).map(|s| s.value)
    };
    match scalar("_count").map(str::parse::<u64>) {
        Some(Ok(count)) => {
            if inf_count.is_some() && inf_count != Some(count) {
                failures.push(format!(
                    "`{family}_count` is {count} but the +Inf bucket holds {}",
                    inf_count.unwrap_or(0)
                ));
            }
        }
        Some(Err(_)) => failures.push(format!("`{family}_count` is not an integer")),
        None => failures.push(format!("histogram `{family}` has no _count sample")),
    }
    match scalar("_sum").map(str::parse::<f64>) {
        Some(Ok(sum)) if sum.is_finite() && sum >= 0.0 => {}
        Some(_) => failures.push(format!("`{family}_sum` is not a finite non-negative number")),
        None => failures.push(format!("histogram `{family}` has no _sum sample")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP qarith_net_frames_in qarith wire layer: `frames_in`.
# TYPE qarith_net_frames_in counter
qarith_net_frames_in 12
# HELP qarith_admission_in_flight qarith admission gate: `in_flight`.
# TYPE qarith_admission_in_flight gauge
qarith_admission_in_flight 0
# HELP qarith_stage_total_seconds qarith per-request stage latency: end-to-end.
# TYPE qarith_stage_total_seconds histogram
qarith_stage_total_seconds_bucket{le=\"0.000001\"} 0
qarith_stage_total_seconds_bucket{le=\"0.000002\"} 3
qarith_stage_total_seconds_bucket{le=\"+Inf\"} 5
qarith_stage_total_seconds_sum 0.0123
qarith_stage_total_seconds_count 5
";

    #[test]
    fn a_valid_exposition_passes_and_is_counted() {
        let report = validate(GOOD);
        assert_eq!(report.failures, Vec::<String>::new());
        assert_eq!(report.scalar_families, 2);
        assert_eq!(report.histogram_families, 1);
        assert_eq!(report.stage_families, 1);
    }

    #[test]
    fn count_must_equal_the_inf_bucket() {
        let bad = GOOD
            .replace("qarith_stage_total_seconds_count 5", "qarith_stage_total_seconds_count 4");
        let report = validate(&bad);
        assert!(
            report.failures.iter().any(|f| f.contains("_count` is 4")),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn decreasing_cumulative_buckets_fail() {
        let bad = GOOD.replace("le=\"+Inf\"} 5", "le=\"+Inf\"} 2");
        let report = validate(&bad);
        assert!(report.failures.iter().any(|f| f.contains("decreased")), "{:?}", report.failures);
    }

    #[test]
    fn missing_inf_bucket_sum_type_and_help_fail() {
        let no_inf = GOOD.replace("qarith_stage_total_seconds_bucket{le=\"+Inf\"} 5\n", "");
        assert!(validate(&no_inf).failures.iter().any(|f| f.contains("+Inf")));
        let no_sum = GOOD.replace("qarith_stage_total_seconds_sum 0.0123\n", "");
        assert!(validate(&no_sum).failures.iter().any(|f| f.contains("no _sum")));
        let no_type = GOOD.replace("# TYPE qarith_net_frames_in counter\n", "");
        assert!(validate(&no_type).failures.iter().any(|f| f.contains("TYPE preamble")));
        let no_help =
            GOOD.replace("# HELP qarith_net_frames_in qarith wire layer: `frames_in`.\n", "");
        assert!(validate(&no_help).failures.iter().any(|f| f.contains("no HELP")));
    }

    #[test]
    fn scalar_samples_must_be_integers() {
        let bad = GOOD.replace("qarith_net_frames_in 12", "qarith_net_frames_in 12.5");
        assert!(validate(&bad).failures.iter().any(|f| f.contains("non-integer counter")));
    }

    #[test]
    fn the_live_exposition_validates() {
        // The real render, straight from a served query — the same
        // body the CI metrics-smoke step scrapes over a socket.
        let db = qarith_datagen::sales::sales_database(
            &qarith_datagen::WorkloadScale::Tiny.params(),
            2020,
        );
        let service = qarith_serve::QueryService::new(db, qarith_serve::ServeConfig::default());
        service.query("SELECT P.id FROM Products P").expect("query serves");
        let text = qarith_net::metrics::render(&service, &Default::default());
        let report = validate(&text);
        assert_eq!(report.failures, Vec::<String>::new());
        assert!(report.stage_families >= 6, "only {} stage families", report.stage_families);
        // One family per entry in `qarith_trace::Stage::ALL` (pinned
        // against EXPERIMENTS.md by tests/stats_docs.rs).
        assert_eq!(report.histogram_families, 12);
    }
}
