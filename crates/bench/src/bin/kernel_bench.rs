//! The sampling-kernel microbench: the blocked AFPRAS hot loop (SoA
//! direction blocks + lane-parallel evaluation) against the
//! pre-blocking scalar reference, on the workload's compiled formulas,
//! emitting the schema-versioned `BENCH_9.json` kernel artifact and
//! optionally gating against a checked-in baseline (the CI
//! `kernel-smoke` step).
//!
//! ```text
//! cargo run --release -p qarith-bench --bin kernel_bench -- \
//!     [--scale tiny|small|medium|paper] [--seed N] [--directions N] \
//!     [--reps N] [--out PATH] [--check-baseline] [--baseline PATH] \
//!     [--tolerance F]
//! ```
//!
//! `--check-baseline` loads the baseline JSON (default:
//! `crates/bench/baselines/KERNEL_<scale>.json`), re-verifies the hits
//! digest and the allocs-per-sample pin exactly, compares directions/sec
//! with a relative tolerance (default 25 %), and exits non-zero on any
//! failure. The hit-count bit-identity between the blocked kernel and
//! the scalar reference is asserted inside the run itself, so a gate
//! pass certifies both throughput and bit-pinning. An intentional
//! kernel change must regenerate the baseline in the same commit: run
//! without `--check-baseline` and copy the fresh artifact over the
//! checked-in one.

use std::process::ExitCode;

use qarith_bench::kernel::{check_kernel_baseline, run_kernel, KernelConfig, KernelReport};
use qarith_datagen::WorkloadScale;

/// Default output artifact name — the PR-9 slot of the `BENCH_*.json`
/// trajectory (one artifact per perf-relevant PR).
const DEFAULT_OUT: &str = "BENCH_9.json";

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage: kernel_bench [--scale tiny|small|medium|paper] [--seed N] \
         [--directions N] [--reps N] [--out PATH] [--check-baseline] \
         [--baseline PATH] [--tolerance F]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = KernelConfig::default_for(WorkloadScale::Tiny);
    let mut out_path = DEFAULT_OUT.to_string();
    let mut baseline_path: Option<String> = None;
    let mut check_baseline = false;
    let mut tolerance = 0.25f64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            i += 1;
            args.get(i).cloned()
        };
        match flag {
            "--scale" => match value().as_deref().and_then(WorkloadScale::parse) {
                Some(s) => config.scale = s,
                None => return usage("--scale expects tiny|small|medium|paper"),
            },
            "--seed" => match value().and_then(|v| v.parse().ok()) {
                Some(s) => config.seed = s,
                None => return usage("--seed expects an integer"),
            },
            "--directions" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.directions = n,
                _ => return usage("--directions expects a positive integer"),
            },
            "--reps" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.reps = n,
                _ => return usage("--reps expects a positive integer"),
            },
            "--out" => match value() {
                Some(p) => out_path = p,
                None => return usage("--out expects a path"),
            },
            "--baseline" => match value() {
                Some(p) => baseline_path = Some(p),
                None => return usage("--baseline expects a path"),
            },
            "--check-baseline" => check_baseline = true,
            "--tolerance" => match value().and_then(|v| v.parse().ok()) {
                Some(t) if (0.0..10.0).contains(&t) => tolerance = t,
                _ => return usage("--tolerance expects a fraction, e.g. 0.25"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    println!("qarith kernel_bench — sampling-kernel microbench");
    println!(
        "scale {}  seed {}  directions/formula {}  reps {}",
        config.scale.name(),
        config.seed,
        config.directions,
        config.reps
    );

    let report = run_kernel(&config);
    println!(
        "workload: {} formulas ({} atoms, max dim {}), {} directions per rep",
        report.formulas, report.atoms, report.max_dim, report.directions_total
    );
    println!(
        "blocked kernel:   {:>12.0} directions/sec  ({:.4}s)",
        report.directions_per_sec, report.blocked_seconds
    );
    println!(
        "scalar reference: {:>12.0} directions/sec  ({:.4}s)",
        report.scalar_directions_per_sec, report.scalar_seconds
    );
    println!(
        "speedup {:.2}x  hits digest {}  allocs/sample {}  (bit-identity asserted in-run)",
        report.speedup, report.hits_digest, report.allocs_per_sample
    );

    std::fs::write(&out_path, report.to_json()).expect("write kernel json");
    println!("perf artifact written to {out_path}");

    if !check_baseline {
        return ExitCode::SUCCESS;
    }
    let baseline_path = baseline_path.unwrap_or_else(|| {
        format!("{}/baselines/KERNEL_{}.json", env!("CARGO_MANIFEST_DIR"), config.scale.name())
    });
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match KernelReport::from_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("FAIL: cannot parse baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let failures = check_kernel_baseline(&report, &baseline, tolerance);
    if failures.is_empty() {
        println!(
            "baseline check PASSED against {baseline_path} \
             (digest + allocs pinned, throughput within {:.0}%)",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("baseline check FAILED against {baseline_path}:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
