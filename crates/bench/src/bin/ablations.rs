//! Accuracy-side ablation tables (the timing side lives in the criterion
//! benches). Prints the measurements recorded in EXPERIMENTS.md:
//!
//! * **V2** — the Proposition 6.1 arctangent family: exact arc values vs
//!   AFPRAS estimates;
//! * **A2** — FPRAS vs AFPRAS vs exact on CQ(+,<) cone unions;
//! * **A3** — empirical additive error of the paper's `m = ε⁻²` sample
//!   count vs the Hoeffding count, against exact order-fragment values.
//!
//! ```text
//! cargo run -p qarith-bench --release --bin ablations [-- --seed N]
//! ```
//!
//! The seed governs every sampled column (the exact/closed-form columns
//! are seed-free); it is printed in the header so each reported table
//! is reproducible from its own output.

use qarith_constraints::{Atom, ConstraintOp, Polynomial, QfFormula, Var};
use qarith_core::afpras::{self, AfprasOptions, SampleCount};
use qarith_core::exact;
use qarith_core::fpras::{self, FprasOptions};
use qarith_numeric::Rational;

fn z(i: u32) -> Polynomial {
    Polynomial::var(Var(i))
}

fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
    QfFormula::atom(Atom::new(p, op))
}

fn main() {
    let mut seed: Option<u64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other} (expected --seed N)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    println!("qarith — accuracy ablations (V2, A2, A3)");
    // Keep the historical default streams (the EXPERIMENTS.md pins):
    // without --seed, V2/A2 use the evaluators' option-default seeds and
    // A3 sweeps seeds 1000..1049; --seed N shifts every stream.
    match seed {
        Some(s) => {
            println!("seed: {s} (rerun with --seed {s} to reproduce every sampled column)\n");
        }
        None => println!(
            "seed: defaults (V2/A2: evaluator option defaults; A3: 1000..1049 — the \
             EXPERIMENTS.md streams; rerun with --seed N to shift them)\n"
        ),
    }
    proposition_6_1_table(seed);
    fpras_accuracy_table(seed);
    sample_count_error_table(seed);
}

/// V2: μ = (arctan(α) + π/2)/2π for the wedge x ≥ 0 ∧ y ≤ α·x.
fn proposition_6_1_table(seed: Option<u64>) {
    println!("== V2: Proposition 6.1 arctangent family ==");
    println!("wedge: z0 ≥ 0 ∧ z1 ≤ α·z0; closed form (arctan α + π/2)/2π");
    println!("{:>6}  {:>12}  {:>12}  {:>12}", "α", "closed form", "exact arcs", "AFPRAS ε=.01");
    let mut opts = AfprasOptions { epsilon: 0.01, ..AfprasOptions::default() };
    if let Some(s) = seed {
        opts.seed = s;
    }
    for alpha in [-3.0f64, -1.0, -0.5, 0.0, 0.5, 1.0, 3.0] {
        let a = Polynomial::constant(Rational::parse_decimal(&alpha.to_string()).unwrap());
        let phi = QfFormula::and([
            atom(z(0), ConstraintOp::Ge),
            atom(z(1).checked_sub(&a.checked_mul(&z(0)).unwrap()).unwrap(), ConstraintOp::Le),
        ]);
        let closed = (alpha.atan() + std::f64::consts::FRAC_PI_2) / std::f64::consts::TAU;
        let arcs = exact::arcs2d::exact_arc_measure(&phi);
        let sampled = afpras::estimate_nu(&phi, &opts).unwrap().estimate;
        println!("{alpha:>6}  {closed:>12.6}  {arcs:>12.6}  {sampled:>12.6}");
    }
    println!();
}

/// A2: both approximation schemes against exact values on cone unions.
fn fpras_accuracy_table(seed: Option<u64>) {
    println!("== A2: FPRAS (Thm 7.1) vs AFPRAS (Thm 8.1) on CQ(+,<) cones ==");
    println!("{:<28}  {:>8}  {:>10}  {:>10}", "workload", "exact", "FPRAS", "AFPRAS");
    let workloads: Vec<(&str, QfFormula, f64)> = vec![
        ("halfplane z0<z1", atom(z(0).checked_sub(&z(1)).unwrap(), ConstraintOp::Lt), 0.5),
        (
            "quadrant (2D)",
            QfFormula::and([atom(z(0), ConstraintOp::Lt), atom(z(1), ConstraintOp::Lt)]),
            0.25,
        ),
        (
            "two disjoint quadrants",
            QfFormula::or([
                QfFormula::and([atom(z(0), ConstraintOp::Lt), atom(z(1), ConstraintOp::Lt)]),
                QfFormula::and([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]),
            ]),
            0.5,
        ),
        (
            "octant (3D)",
            QfFormula::and([
                atom(z(0), ConstraintOp::Lt),
                atom(z(1), ConstraintOp::Lt),
                atom(z(2), ConstraintOp::Lt),
            ]),
            0.125,
        ),
        (
            "overlapping halfplanes",
            QfFormula::or([atom(z(0), ConstraintOp::Lt), atom(z(1), ConstraintOp::Lt)]),
            0.75,
        ),
    ];
    let mut f_opts = FprasOptions { epsilon: 0.05, ..FprasOptions::default() };
    let mut a_opts = AfprasOptions { epsilon: 0.01, ..AfprasOptions::default() };
    if let Some(s) = seed {
        f_opts.seed = s;
        a_opts.seed = s;
    }
    for (name, phi, expected) in workloads {
        let f = fpras::estimate_nu(&phi, &f_opts).unwrap().estimate;
        let a = afpras::estimate_nu(&phi, &a_opts).unwrap().estimate;
        println!("{name:<28}  {expected:>8.4}  {f:>10.4}  {a:>10.4}");
    }
    println!();
}

/// A3: empirical |error| of the two sample-count policies over 50 seeds,
/// against the exact order-fragment value.
fn sample_count_error_table(seed: Option<u64>) {
    println!("== A3: additive error vs sample-count policy (50 seeds) ==");
    // ν = 1/6 exactly: the chain z0 < z1 < z2.
    let phi = QfFormula::and([
        atom(z(0).checked_sub(&z(1)).unwrap(), ConstraintOp::Lt),
        atom(z(1).checked_sub(&z(2)).unwrap(), ConstraintOp::Lt),
    ]);
    let truth = exact::order::exact_order_measure(&phi).unwrap().to_f64();
    println!("workload: z0<z1<z2, exact ν = {truth:.6}");
    println!("{:>6}  {:>22}  {:>9}  {:>10}  {:>10}", "ε", "policy", "m", "mean|err|", "max|err|");
    for eps in [0.1, 0.05, 0.02] {
        for (label, policy, delta) in [
            ("paper m=eps^-2", SampleCount::Paper, 0.25),
            ("hoeffding d=0.25", SampleCount::Hoeffding, 0.25),
            ("hoeffding d=0.01", SampleCount::Hoeffding, 0.01),
        ] {
            let mut opts =
                AfprasOptions { epsilon: eps, delta, samples: policy, ..AfprasOptions::default() };
            let m = opts.sample_count();
            let mut sum = 0.0f64;
            let mut max = 0.0f64;
            let runs = 50;
            for run in 0..runs {
                opts.seed = seed.unwrap_or(0).wrapping_add(1000 + run);
                let est = afpras::estimate_nu(&phi, &opts).unwrap().estimate;
                let err = (est - truth).abs();
                sum += err;
                if err > max {
                    max = err;
                }
            }
            println!("{eps:>6}  {label:>22}  {m:>9}  {:>10.5}  {max:>10.5}", sum / runs as f64);
        }
    }
    println!();
}
