//! Load generator for the `qarith-serve` query service: replays the
//! workload-suite queries from M client threads through one shared
//! [`QueryService`], closed- or open-loop, and emits the schema-v4
//! `"serve"` `BENCH_*.json` document with p50/p95/p99 latency,
//! throughput, the per-stage latency summaries from the service
//! tracer, and the plan/shard/admission counter blocks — optionally
//! gated against a checked-in baseline (the CI `serve-smoke` step).
//!
//! With `--wire` the same load runs through real loopback sockets and
//! the `qarith-net` framed protocol instead of in-process calls: every
//! request crosses TCP, every reply is decoded and compared bit for
//! bit against the sequential in-process reference, and the document
//! kind becomes `"wire"` with a `net` counter block (the CI
//! `net-smoke` step).
//!
//! With `--mutate` the bench exercises the *write* path instead: a
//! deterministic stream of write batches is interleaved with template
//! replays against the evolving epochs, the certainty digest is pinned
//! on the epoch-0 reference pass, and the document kind becomes
//! `"mutate"` (the CI `mutation-smoke` step; single-threaded driver,
//! `--clients`/`--mode`/`--rate` are ignored).
//!
//! ```text
//! cargo run --release -p qarith-bench --bin serve_bench -- \
//!     [--wire | --mutate] [--scale tiny|small|medium|paper] [--seed N] \
//!     [--families sales,range,division] [--epsilon F] \
//!     [--clients N] [--passes N] [--mode closed|open] [--rate QPS] \
//!     [--reps N] [--cache-budget BYTES] [--cache-shards N] \
//!     [--max-in-flight N] [--out PATH] [--check-baseline] \
//!     [--baseline PATH] [--tolerance F]
//! ```
//!
//! `--check-baseline` loads the baseline JSON (default:
//! `crates/bench/baselines/SERVE_<scale>.json`, or
//! `SERVE_WIRE_<scale>.json` under `--wire`, or
//! `SERVE_MUTATE_<scale>.json` under `--mutate`), re-verifies the
//! certainty digest bit for bit, and compares p95 latency with a
//! relative tolerance (default 25 %); any failure exits non-zero. An
//! intentional behavioral change must regenerate the baseline in the
//! same commit: run without `--check-baseline` and copy the fresh
//! artifact over the checked-in one.
//!
//! [`QueryService`]: qarith_serve::QueryService

use std::process::ExitCode;

use qarith_bench::mutate::run_mutate_bench;
use qarith_bench::serve::{
    check_serve_baseline, run_serve_bench, LoadMode, ServeBenchConfig, ServeBenchReport,
};
use qarith_bench::wire::run_wire_bench;
use qarith_datagen::{QueryFamily, WorkloadScale};

/// Default output artifact name — the PR-5 slot of the `BENCH_*.json`
/// trajectory (one artifact per perf-relevant PR).
const DEFAULT_OUT: &str = "BENCH_5.json";

/// Default output artifact name under `--wire` — the PR-7 slot.
const DEFAULT_WIRE_OUT: &str = "BENCH_7.json";

/// Default output artifact name under `--mutate` — the PR-10 slot.
const DEFAULT_MUTATE_OUT: &str = "BENCH_10.json";

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage: serve_bench [--wire | --mutate] [--scale tiny|small|medium|paper] [--seed N] \
         [--families LIST] [--epsilon F] [--clients N] [--passes N] \
         [--mode closed|open] [--rate QPS] [--reps N] [--cache-budget BYTES] \
         [--cache-shards N] [--max-in-flight N] [--out PATH] \
         [--check-baseline] [--baseline PATH] [--tolerance F]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServeBenchConfig::default_for(WorkloadScale::Tiny);
    let mut wire = false;
    let mut mutate = false;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut check_baseline = false;
    let mut tolerance = 0.25f64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            i += 1;
            args.get(i).cloned()
        };
        match flag {
            "--wire" => wire = true,
            "--mutate" => mutate = true,
            "--scale" => match value().as_deref().and_then(WorkloadScale::parse) {
                Some(s) => config.scale = s,
                None => return usage("--scale expects tiny|small|medium|paper"),
            },
            "--seed" => match value().and_then(|v| v.parse().ok()) {
                Some(s) => config.seed = s,
                None => return usage("--seed expects an integer"),
            },
            "--families" => {
                let list: Option<Vec<QueryFamily>> =
                    value().and_then(|v| v.split(',').map(QueryFamily::parse).collect());
                match list {
                    Some(fams) if !fams.is_empty() => config.families = fams,
                    _ => return usage("--families expects a comma list of sales|range|division"),
                }
            }
            "--epsilon" => match value().and_then(|v| v.parse().ok()) {
                Some(e) if (1e-4..=0.5).contains(&e) => config.epsilon = e,
                _ => return usage("--epsilon expects a value in [0.0001, 0.5]"),
            },
            "--clients" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.clients = n,
                _ => return usage("--clients expects a positive integer"),
            },
            "--passes" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.passes = n,
                _ => return usage("--passes expects a positive integer"),
            },
            "--mode" => match value().as_deref().and_then(LoadMode::parse) {
                Some(m) => config.mode = m,
                None => return usage("--mode expects closed|open"),
            },
            "--rate" => match value().and_then(|v| v.parse().ok()) {
                Some(r) if r > 0.0 => config.rate = r,
                _ => return usage("--rate expects a positive requests/second value"),
            },
            "--reps" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.reps = n,
                _ => return usage("--reps expects a positive integer"),
            },
            "--cache-budget" => match value().and_then(|v| v.parse().ok()) {
                Some(b) if b > 0 => config.cache_budget_bytes = b,
                _ => return usage("--cache-budget expects a positive byte count"),
            },
            "--cache-shards" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.cache_shards = n,
                _ => return usage("--cache-shards expects a positive integer"),
            },
            "--max-in-flight" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.max_in_flight = n,
                _ => return usage("--max-in-flight expects a positive integer"),
            },
            "--out" => match value() {
                Some(p) => out_path = Some(p),
                None => return usage("--out expects a path"),
            },
            "--baseline" => match value() {
                Some(p) => baseline_path = Some(p),
                None => return usage("--baseline expects a path"),
            },
            "--check-baseline" => check_baseline = true,
            "--tolerance" => match value().and_then(|v| v.parse().ok()) {
                Some(t) if (0.0..10.0).contains(&t) => tolerance = t,
                _ => return usage("--tolerance expects a fraction, e.g. 0.25"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    if config.mode == LoadMode::Open && config.rate <= 0.0 {
        return usage("--mode open requires --rate");
    }
    if wire && mutate {
        return usage("--wire and --mutate are mutually exclusive");
    }

    println!(
        "qarith serve_bench — serving load ({})",
        if wire {
            "wire: framed protocol over loopback TCP"
        } else if mutate {
            "mutate: write batches interleaved with template replays"
        } else {
            "in-process"
        }
    );
    println!(
        "scale {}  seed {}  families [{}]  ε {}  {} clients × {} passes ({}{})",
        config.scale.name(),
        config.seed,
        config.families.iter().map(QueryFamily::name).collect::<Vec<_>>().join(", "),
        config.epsilon,
        config.clients,
        config.passes,
        config.mode.name(),
        if config.mode == LoadMode::Open {
            format!(", {} q/s target", config.rate)
        } else {
            String::new()
        },
    );

    let report = if wire {
        run_wire_bench(&config)
    } else if mutate {
        run_mutate_bench(&config)
    } else {
        run_serve_bench(&config)
    };
    print_summary(&report);

    let out_path = out_path.unwrap_or_else(|| {
        if wire {
            DEFAULT_WIRE_OUT
        } else if mutate {
            DEFAULT_MUTATE_OUT
        } else {
            DEFAULT_OUT
        }
        .to_string()
    });
    std::fs::write(&out_path, report.to_json()).expect("write BENCH json");
    println!("perf artifact written to {out_path}");

    if !check_baseline {
        return ExitCode::SUCCESS;
    }
    let baseline_path = baseline_path.unwrap_or_else(|| {
        format!(
            "{}/baselines/SERVE_{}{}.json",
            env!("CARGO_MANIFEST_DIR"),
            if wire {
                "WIRE_"
            } else if mutate {
                "MUTATE_"
            } else {
                ""
            },
            config.scale.name()
        )
    });
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match ServeBenchReport::from_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("FAIL: cannot parse baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let failures = check_serve_baseline(&report, &baseline, tolerance);
    if failures.is_empty() {
        println!(
            "baseline check PASSED against {baseline_path} \
             (certainty digest bit-identical, p95 within {:.0}%)",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("baseline check FAILED against {baseline_path}:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}

fn counter(block: &[(String, u64)], name: &str) -> u64 {
    block.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
}

fn print_summary(report: &ServeBenchReport) {
    println!(
        "database: {} tuples, {} numerical nulls, digest {}",
        report.db_tuples, report.db_num_nulls, report.db_digest
    );
    println!(
        "{} requests over {} templates in {:.4}s — {:.0} q/s",
        report.requests, report.templates, report.seconds, report.qps
    );
    println!(
        "latency: p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        report.latency.p50 * 1e3,
        report.latency.p95 * 1e3,
        report.latency.p99 * 1e3,
        report.latency.max * 1e3,
    );
    println!(
        "plan cache: {} plans, {} hits / {} misses; ν-cache: {} hits / {} misses, \
         {} entries, {} evictions, {} bytes resident; admission: {} admitted, {} queued",
        counter(&report.service, "plans"),
        counter(&report.service, "plan_hits"),
        counter(&report.service, "plan_misses"),
        counter(&report.cache, "hits"),
        counter(&report.cache, "misses"),
        counter(&report.cache, "entries"),
        counter(&report.cache, "evictions"),
        counter(&report.cache, "resident_bytes"),
        counter(&report.admission, "admitted"),
        counter(&report.admission, "queued"),
    );
    if !report.stages.is_empty() {
        println!("per-stage latency (count, p50/p95/p99 as tracer bucket bounds):");
        for s in &report.stages {
            println!(
                "  {:<14} n={:<6} p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
                s.stage,
                s.count,
                s.p50 * 1e3,
                s.p95 * 1e3,
                s.p99 * 1e3,
            );
        }
    }
    if report.kind == "mutate" {
        println!(
            "writes: {} batches / {} ops → epoch {}; invalidation: {} ν-keys \
             ({} entries), {} plans",
            counter(&report.service, "writes"),
            counter(&report.service, "write_ops"),
            counter(&report.service, "epoch"),
            counter(&report.cache, "invalidations"),
            counter(&report.cache, "invalidated_entries"),
            counter(&report.service, "plan_invalidations"),
        );
    }
    if report.kind == "wire" {
        println!(
            "net: {} connections ({} opened / {} closed), {} frames in / {} out, \
             {} protocol errors, {} timeouts",
            counter(&report.net, "connections_active"),
            counter(&report.net, "connections_opened"),
            counter(&report.net, "connections_closed"),
            counter(&report.net, "frames_in"),
            counter(&report.net, "frames_out"),
            counter(&report.net, "protocol_errors"),
            counter(&report.net, "timeouts"),
        );
    }
    println!("certainty digest: {}", report.certainty_digest);
}
