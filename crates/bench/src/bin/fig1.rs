//! Regenerates **Figure 1** of the paper: running time of the additive
//! approximation scheme against the error level ε, for the three §9
//! decision-support queries over a ~200K-tuple synthetic sales database.
//!
//! ```text
//! cargo run -p qarith-bench --release --bin fig1 [-- --scale small|paper] [--seed N] [--csv PATH]
//! ```
//!
//! Output: one series per query (19 ε-points from 0.100 down to 0.010),
//! printed as the paper reports them and optionally written as CSV.
//! Absolute times are not comparable to the paper's (Python/NumPy on an
//! i5-8500 vs compiled Rust here); the reproduced *shape* is the ε⁻²
//! growth and the per-query ordering.

use std::io::Write;

use qarith_bench::{figure1_epsilons, secs, Fig1Harness};
use qarith_datagen::sales::SalesScale;

fn main() {
    let mut scale = SalesScale::paper();
    let mut seed = 2020u64;
    let mut csv_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("paper") => SalesScale::paper(),
                    Some("small") => SalesScale::small(),
                    Some("tiny") => SalesScale::tiny(),
                    other => {
                        eprintln!("unknown scale {other:?} (expected paper|small|tiny)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--csv" => {
                i += 1;
                csv_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--csv needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("qarith — Figure 1 reproduction (PODS'20 §9)");
    println!(
        "sales database: {} products, {} orders, {} market rows (~{} tuples), null rate {:.1}%",
        scale.products,
        scale.orders,
        scale.markets,
        scale.total_rows(),
        scale.null_rate * 100.0
    );
    println!("building database and candidates (the \"Postgres side\") …");

    let build_start = std::time::Instant::now();
    let harness = Fig1Harness::new(&scale, seed);
    println!("  database + candidate generation: {:.3}s total\n", secs(build_start.elapsed()));

    let stats = harness.db.stats();
    println!("  |N_num(D)| = {} numerical nulls across {} tuples\n", stats.num_nulls, stats.tuples);

    let mut csv = String::from("query,epsilon,samples,uncertain_candidates,seconds\n");
    let epsilons = figure1_epsilons();

    for (qi, q) in harness.queries.iter().enumerate() {
        println!("Query: {}", q.name);
        println!("  SQL: {}", q.sql);
        println!(
            "  candidates: {} ({} uncertain), candidate generation {:.4}s",
            q.candidates.len(),
            harness.uncertain_count(qi),
            secs(q.candidate_time)
        );
        println!("  {:>8}  {:>9}  {:>12}", "ε·10³", "samples", "time (s)");
        for &eps in &epsilons {
            let point = harness.run_epsilon(qi, eps, seed ^ 0xF1616);
            println!(
                "  {:>8.0}  {:>9}  {:>12.6}",
                eps * 1000.0,
                point.samples_per_candidate,
                secs(point.time)
            );
            csv.push_str(&format!(
                "{},{},{},{},{}\n",
                q.name,
                eps,
                point.samples_per_candidate,
                harness.uncertain_count(qi),
                secs(point.time)
            ));
        }
        println!();
    }

    if let Some(path) = csv_path {
        let mut f = std::fs::File::create(&path).expect("create CSV file");
        f.write_all(csv.as_bytes()).expect("write CSV");
        println!("CSV written to {path}");
    }
}
