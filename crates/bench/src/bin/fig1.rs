//! Regenerates **Figure 1** of the paper: running time of the additive
//! approximation scheme against the error level ε, for the three §9
//! decision-support queries over a ~200K-tuple synthetic sales database.
//!
//! ```text
//! cargo run -p qarith-bench --release --bin fig1 [-- --scale small|paper] [--seed N] [--csv PATH] [--batch]
//! ```
//!
//! With `--batch`, every ε point is additionally run through the batch
//! measurement engine (canonical dedup, 4 worker threads, shared
//! ν-cache) and the per-point speedup, group counts, and cache hits are
//! reported, followed by a warm-cache serving pass over the whole
//! workload. Batch estimates are bit-identical to the sequential ones
//! (checked per point).
//!
//! Output: one series per query (19 ε-points from 0.100 down to 0.010),
//! printed as the paper reports them and optionally written as CSV.
//! Absolute times are not comparable to the paper's (Python/NumPy on an
//! i5-8500 vs compiled Rust here); the reproduced *shape* is the ε⁻²
//! growth and the per-query ordering.

use std::io::Write;
use std::sync::Arc;

use qarith_bench::{figure1_epsilons, secs, Fig1Harness};
use qarith_core::{BatchOptions, NuCache};
use qarith_datagen::sales::SalesScale;

/// The batch configuration `--batch` exercises.
const BATCH: BatchOptions = BatchOptions { threads: 4, dedup: true };

fn main() {
    let mut scale = SalesScale::paper();
    let mut seed = 2020u64;
    let mut csv_path: Option<String> = None;
    let mut batch_mode = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("paper") => SalesScale::paper(),
                    Some("small") => SalesScale::small(),
                    Some("tiny") => SalesScale::tiny(),
                    other => {
                        eprintln!("unknown scale {other:?} (expected paper|small|tiny)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--csv" => {
                i += 1;
                csv_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--csv needs a path");
                    std::process::exit(2);
                }));
            }
            "--batch" => batch_mode = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("qarith — Figure 1 reproduction (PODS'20 §9)");
    println!(
        "sales database: {} products, {} orders, {} market rows (~{} tuples), null rate {:.1}%",
        scale.products,
        scale.orders,
        scale.markets,
        scale.total_rows(),
        scale.null_rate * 100.0
    );
    println!("building database and candidates (the \"Postgres side\") …");

    let build_start = std::time::Instant::now();
    let harness = Fig1Harness::new(&scale, seed);
    println!("  database + candidate generation: {:.3}s total\n", secs(build_start.elapsed()));

    let stats = harness.db.stats();
    println!("  |N_num(D)| = {} numerical nulls across {} tuples\n", stats.num_nulls, stats.tuples);

    let mut csv = String::from(
        "query,epsilon,samples,uncertain_candidates,seconds,batch_seconds,groups,cache_hits\n",
    );
    let epsilons = figure1_epsilons();
    let cache = Arc::new(NuCache::new());

    for (qi, q) in harness.queries.iter().enumerate() {
        println!("Query: {}", q.name);
        println!("  SQL: {}", q.sql);
        println!(
            "  candidates: {} ({} uncertain), candidate generation {:.4}s",
            q.candidates.len(),
            harness.uncertain_count(qi),
            secs(q.candidate_time)
        );
        if batch_mode {
            println!(
                "  {:>8}  {:>9}  {:>12}  {:>12}  {:>7}  {:>6}  {:>9}",
                "ε·10³", "samples", "seq (s)", "batch (s)", "speedup", "groups", "cache-hit"
            );
        } else {
            println!("  {:>8}  {:>9}  {:>12}", "ε·10³", "samples", "time (s)");
        }
        for &eps in &epsilons {
            let point = harness.run_epsilon(qi, eps, seed ^ 0xF1616);
            if batch_mode {
                let batch =
                    harness.run_epsilon_batch(qi, eps, seed ^ 0xF1616, BATCH, Some(cache.clone()));
                for (s, b) in point.estimates.iter().zip(&batch.estimates) {
                    assert_eq!(
                        s.value.to_bits(),
                        b.value.to_bits(),
                        "batch must be bit-identical to sequential ({}, ε = {eps})",
                        q.name
                    );
                }
                println!(
                    "  {:>8.0}  {:>9}  {:>12.6}  {:>12.6}  {:>6.2}x  {:>6}  {:>9}",
                    eps * 1000.0,
                    point.samples_per_candidate,
                    secs(point.time),
                    secs(batch.time),
                    secs(point.time) / secs(batch.time).max(1e-9),
                    batch.stats.groups,
                    batch.stats.cache_hits,
                );
                csv.push_str(&format!(
                    "{},{},{},{},{},{},{},{}\n",
                    q.name,
                    eps,
                    point.samples_per_candidate,
                    harness.uncertain_count(qi),
                    secs(point.time),
                    secs(batch.time),
                    batch.stats.groups,
                    batch.stats.cache_hits,
                ));
            } else {
                println!(
                    "  {:>8.0}  {:>9}  {:>12.6}",
                    eps * 1000.0,
                    point.samples_per_candidate,
                    secs(point.time)
                );
                csv.push_str(&format!(
                    "{},{},{},{},{},,,\n",
                    q.name,
                    eps,
                    point.samples_per_candidate,
                    harness.uncertain_count(qi),
                    secs(point.time)
                ));
            }
        }
        println!();
    }

    if batch_mode {
        // Warm-cache serving pass: the whole workload again at the finest
        // ε, every canonical formula already cached.
        let eps = *epsilons.last().expect("non-empty grid");
        let seq_start = std::time::Instant::now();
        for qi in 0..harness.queries.len() {
            harness.run_epsilon(qi, eps, seed ^ 0xF1616);
        }
        let seq_time = secs(seq_start.elapsed());
        let warm_start = std::time::Instant::now();
        let mut hits = 0usize;
        let mut groups = 0usize;
        for qi in 0..harness.queries.len() {
            let point =
                harness.run_epsilon_batch(qi, eps, seed ^ 0xF1616, BATCH, Some(cache.clone()));
            hits += point.stats.cache_hits;
            groups += point.stats.groups;
        }
        let warm_time = secs(warm_start.elapsed());
        println!(
            "warm-cache serving pass (ε = {eps:.3}): sequential {seq_time:.6}s, \
             batch {warm_time:.6}s ({:.1}x), {hits}/{groups} groups served from the ν-cache",
            seq_time / warm_time.max(1e-9)
        );
        let stats = cache.stats();
        println!(
            "ν-cache totals: {} entries, {} hits / {} misses ({:.0}% hit rate)",
            stats.entries,
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        );
    }

    if let Some(path) = csv_path {
        let mut f = std::fs::File::create(&path).expect("create CSV file");
        f.write_all(csv.as_bytes()).expect("write CSV");
        println!("CSV written to {path}");
    }
}
