//! Regenerates **Figure 1** of the paper: running time of the additive
//! approximation scheme against the error level ε, for the three §9
//! decision-support queries over a ~200K-tuple synthetic sales database.
//!
//! ```text
//! cargo run -p qarith-bench --release --bin fig1 [-- --scale small|paper] [--seed N] [--csv PATH] [--batch] [--rewrite]
//! ```
//!
//! With `--batch`, every ε point is additionally run through the batch
//! measurement engine (canonical dedup, 4 worker threads, shared
//! ν-cache) and the per-point speedup, group counts, in-batch dedup
//! hits, and cache hits are reported, followed by a warm-cache serving
//! pass over the whole workload. Batch estimates are bit-identical to
//! the sequential ones (checked per point).
//!
//! With `--rewrite` (implies `--batch`), a third configuration runs the
//! `qarith-rewrite` pipeline — simplification, independence
//! decomposition, exact routing per factor — and the table gains a
//! rewritten-time column plus its speedup over the plain batch path.
//! Rewritten estimates are not bit-identical (the sampled formula and
//! budget change) but keep the ε-additive guarantee; each point asserts
//! the rewritten values stay within 2ε of the sequential ones, and a
//! per-query "rewrite:" line attributes the win (factors, exact-routed
//! factors, dimension reduction). A final cold pass at ε = 0.05 prints
//! the workload-level speedup of the rewritten path over the PR 2 batch
//! path.
//!
//! Output: one series per query (19 ε-points from 0.100 down to 0.010),
//! printed as the paper reports them and optionally written as CSV.
//! Absolute times are not comparable to the paper's (Python/NumPy on an
//! i5-8500 vs compiled Rust here); the reproduced *shape* is the ε⁻²
//! growth and the per-query ordering.

use std::io::Write;
use std::sync::Arc;

use qarith_bench::{figure1_epsilons, secs, BatchPoint, Fig1Harness};
use qarith_core::{BatchOptions, NuCache, RewriteStats};
use qarith_datagen::sales::SalesScale;

/// The batch configuration `--batch` and `--rewrite` exercise.
const BATCH: BatchOptions = BatchOptions { threads: 4, dedup: true };

/// The ε the workload-level rewrite acceptance line reports.
const ACCEPT_EPSILON: f64 = 0.05;

fn main() {
    let mut scale = SalesScale::paper();
    let mut seed = 2020u64;
    let mut csv_path: Option<String> = None;
    let mut batch_mode = false;
    let mut rewrite_mode = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("paper") => SalesScale::paper(),
                    Some("small") => SalesScale::small(),
                    Some("tiny") => SalesScale::tiny(),
                    other => {
                        eprintln!("unknown scale {other:?} (expected paper|small|tiny)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--csv" => {
                i += 1;
                csv_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--csv needs a path");
                    std::process::exit(2);
                }));
            }
            "--batch" => batch_mode = true,
            "--rewrite" => {
                batch_mode = true;
                rewrite_mode = true;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("qarith — Figure 1 reproduction (PODS'20 §9)");
    // Every reported table must be reproducible from its own output:
    // the seed governs both data generation and direction sampling.
    println!("seed: {seed} (rerun with --seed {seed} to reproduce this table exactly)");
    println!(
        "sales database: {} products, {} orders, {} market rows (~{} tuples), null rate {:.1}%",
        scale.products,
        scale.orders,
        scale.markets,
        scale.total_rows(),
        scale.null_rate * 100.0
    );
    println!("building database and candidates (the \"Postgres side\") …");

    let build_start = std::time::Instant::now();
    let harness = Fig1Harness::new(&scale, seed);
    println!("  database + candidate generation: {:.3}s total\n", secs(build_start.elapsed()));

    let stats = harness.db.stats();
    println!("  |N_num(D)| = {} numerical nulls across {} tuples\n", stats.num_nulls, stats.tuples);

    let mut csv = String::from(
        "query,epsilon,samples,uncertain_candidates,seconds,batch_seconds,groups,dedup_hits,\
         cache_hits,rewrite_seconds,rewrite_factors,rewrite_exact_factors,rewrite_dim_before,\
         rewrite_dim_after\n",
    );
    let epsilons = figure1_epsilons();
    let cache = Arc::new(NuCache::new());
    let rw_cache = Arc::new(NuCache::new());

    for (qi, q) in harness.queries.iter().enumerate() {
        println!("Query: {}", q.name);
        println!("  SQL: {}", q.sql);
        println!(
            "  candidates: {} ({} uncertain), candidate generation {:.4}s",
            q.candidates.len(),
            harness.uncertain_count(qi),
            secs(q.candidate_time)
        );
        match (batch_mode, rewrite_mode) {
            (true, true) => println!(
                "  {:>8}  {:>9}  {:>12}  {:>12}  {:>12}  {:>7}  {:>6}  {:>5}  {:>9}",
                "ε·10³",
                "samples",
                "seq (s)",
                "batch (s)",
                "rewrite (s)",
                "rw-spdup",
                "groups",
                "dedup",
                "cache-hit"
            ),
            (true, false) => println!(
                "  {:>8}  {:>9}  {:>12}  {:>12}  {:>7}  {:>6}  {:>5}  {:>9}",
                "ε·10³",
                "samples",
                "seq (s)",
                "batch (s)",
                "speedup",
                "groups",
                "dedup",
                "cache-hit"
            ),
            _ => println!("  {:>8}  {:>9}  {:>12}", "ε·10³", "samples", "time (s)"),
        }
        let mut rewrite_stats: Option<RewriteStats> = None;
        for &eps in &epsilons {
            let point = harness.run_epsilon(qi, eps, seed ^ 0xF1616);
            if !batch_mode {
                println!(
                    "  {:>8.0}  {:>9}  {:>12.6}",
                    eps * 1000.0,
                    point.samples_per_candidate,
                    secs(point.time)
                );
                csv.push_str(&format!(
                    "{},{},{},{},{},,,,,,,,,\n",
                    q.name,
                    eps,
                    point.samples_per_candidate,
                    harness.uncertain_count(qi),
                    secs(point.time)
                ));
                continue;
            }
            let batch =
                harness.run_epsilon_batch(qi, eps, seed ^ 0xF1616, BATCH, Some(cache.clone()));
            for (s, b) in point.estimates.iter().zip(&batch.estimates) {
                assert_eq!(
                    s.value.to_bits(),
                    b.value.to_bits(),
                    "batch must be bit-identical to sequential ({}, ε = {eps})",
                    q.name
                );
            }
            let rewritten: Option<BatchPoint> = rewrite_mode.then(|| {
                let rw = harness.run_epsilon_rewritten(
                    qi,
                    eps,
                    seed ^ 0xF1616,
                    BATCH,
                    Some(rw_cache.clone()),
                );
                for (s, r) in point.estimates.iter().zip(&rw.estimates) {
                    assert!(
                        (s.value - r.value).abs() <= 2.0 * eps + 1e-9,
                        "rewritten estimate must stay within 2ε of sequential \
                         ({}, ε = {eps}: {} vs {})",
                        q.name,
                        r.value,
                        s.value
                    );
                }
                if rw.stats.rewrite.groups > 0 && rewrite_stats.is_none() {
                    rewrite_stats = Some(rw.stats.rewrite);
                }
                rw
            });
            match &rewritten {
                Some(rw) => println!(
                    "  {:>8.0}  {:>9}  {:>12.6}  {:>12.6}  {:>12.6}  {:>6.2}x  {:>6}  {:>5}  {:>9}",
                    eps * 1000.0,
                    point.samples_per_candidate,
                    secs(point.time),
                    secs(batch.time),
                    secs(rw.time),
                    secs(batch.time) / secs(rw.time).max(1e-9),
                    batch.stats.groups,
                    batch.stats.dedup_hits,
                    batch.stats.cache_hits,
                ),
                None => println!(
                    "  {:>8.0}  {:>9}  {:>12.6}  {:>12.6}  {:>6.2}x  {:>6}  {:>5}  {:>9}",
                    eps * 1000.0,
                    point.samples_per_candidate,
                    secs(point.time),
                    secs(batch.time),
                    secs(point.time) / secs(batch.time).max(1e-9),
                    batch.stats.groups,
                    batch.stats.dedup_hits,
                    batch.stats.cache_hits,
                ),
            }
            let (rw_secs, rw_cols) = match &rewritten {
                Some(rw) => {
                    let r = &rw.stats.rewrite;
                    (
                        format!("{}", secs(rw.time)),
                        format!(
                            "{},{},{},{}",
                            r.factors, r.exact_factors, r.dim_before, r.dim_after
                        ),
                    )
                }
                None => (String::new(), ",,,".into()),
            };
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                q.name,
                eps,
                point.samples_per_candidate,
                harness.uncertain_count(qi),
                secs(point.time),
                secs(batch.time),
                batch.stats.groups,
                batch.stats.dedup_hits,
                batch.stats.cache_hits,
                rw_secs,
                rw_cols,
            ));
        }
        if let Some(r) = rewrite_stats {
            println!(
                "  rewrite: {}/{} groups factored, {} factors ({} exact-routed), \
                 dim {}→{} (−{:.0}%)",
                r.factored,
                r.groups,
                r.factors,
                r.exact_factors,
                r.dim_before,
                r.dim_after,
                100.0 * (1.0 - r.dim_after as f64 / r.dim_before.max(1) as f64),
            );
        }
        println!();
    }

    if batch_mode {
        // Warm-cache serving pass: the whole workload again at the finest
        // ε, every canonical formula already cached.
        let eps = *epsilons.last().expect("non-empty grid");
        let seq_start = std::time::Instant::now();
        for qi in 0..harness.queries.len() {
            harness.run_epsilon(qi, eps, seed ^ 0xF1616);
        }
        let seq_time = secs(seq_start.elapsed());
        let warm_start = std::time::Instant::now();
        let mut hits = 0usize;
        let mut groups = 0usize;
        for qi in 0..harness.queries.len() {
            let point =
                harness.run_epsilon_batch(qi, eps, seed ^ 0xF1616, BATCH, Some(cache.clone()));
            hits += point.stats.cache_hits;
            groups += point.stats.groups;
        }
        let warm_time = secs(warm_start.elapsed());
        println!(
            "warm-cache serving pass (ε = {eps:.3}): sequential {seq_time:.6}s, \
             batch {warm_time:.6}s ({:.1}x), {hits}/{groups} groups served from the ν-cache",
            seq_time / warm_time.max(1e-9)
        );
        let stats = cache.stats();
        println!(
            "ν-cache totals: {} entries, {} hits / {} misses ({:.0}% hit rate)",
            stats.entries,
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        );
        if rewrite_mode {
            let rw_stats = rw_cache.stats();
            println!(
                "rewritten ν-cache totals: {} entries, {} hits / {} misses ({:.0}% hit rate)",
                rw_stats.entries,
                rw_stats.hits,
                rw_stats.misses,
                rw_stats.hit_rate() * 100.0
            );
        }
    }

    if rewrite_mode {
        // Cold workload-level comparison at the acceptance ε: fresh
        // caches for both configurations, all three queries back to back.
        let batch_start = std::time::Instant::now();
        let cold = Arc::new(NuCache::new());
        for qi in 0..harness.queries.len() {
            harness.run_epsilon_batch(
                qi,
                ACCEPT_EPSILON,
                seed ^ 0xF1616,
                BATCH,
                Some(cold.clone()),
            );
        }
        let batch_time = secs(batch_start.elapsed());
        let rw_start = std::time::Instant::now();
        let cold_rw = Arc::new(NuCache::new());
        for qi in 0..harness.queries.len() {
            harness.run_epsilon_rewritten(
                qi,
                ACCEPT_EPSILON,
                seed ^ 0xF1616,
                BATCH,
                Some(cold_rw.clone()),
            );
        }
        let rw_time = secs(rw_start.elapsed());
        println!(
            "rewrite speedup at ε = {ACCEPT_EPSILON}: batch {batch_time:.6}s, \
             rewritten {rw_time:.6}s ({:.2}x, cold caches, whole workload)",
            batch_time / rw_time.max(1e-9)
        );
    }

    if let Some(path) = csv_path {
        let mut f = std::fs::File::create(&path).expect("create CSV file");
        f.write_all(csv.as_bytes()).expect("write CSV");
        println!("CSV written to {path}");
    }
}
