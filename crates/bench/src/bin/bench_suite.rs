//! The multi-scale workload suite: every query family through the
//! sequential, batch, and rewritten measurement pipelines at a fixed ε
//! ladder, emitting the schema-versioned `BENCH_4.json` perf artifact
//! plus a human summary table, and optionally gating against a
//! checked-in baseline (the CI `perf-smoke` job).
//!
//! ```text
//! cargo run --release -p qarith-bench --bin bench_suite -- \
//!     [--scale tiny|small|medium|paper] [--seed N] \
//!     [--families sales,range,division] [--epsilons 0.1,0.05,0.02] \
//!     [--threads N] [--reps N] [--serving-threads N] [--serving-passes N] \
//!     [--out PATH] [--check-baseline] [--baseline PATH] [--tolerance F]
//! ```
//!
//! `--check-baseline` loads the baseline JSON (default:
//! `crates/bench/baselines/BENCH_<scale>.json`), re-verifies every
//! certainty bit for bit, compares per-pipeline wall-time totals with a
//! relative tolerance (default 25 %), and exits non-zero on any
//! failure. An intentional behavioral change (new generator, new
//! sampling order, …) must regenerate the baseline in the same commit:
//! run without `--check-baseline` and copy the fresh artifact over the
//! checked-in one.

use std::process::ExitCode;

use qarith_bench::suite::{check_against_baseline, run_suite, SuiteConfig, SuiteReport};
use qarith_datagen::{QueryFamily, WorkloadScale};

/// Default output artifact name — the PR-4 slot of the `BENCH_*.json`
/// trajectory (one artifact per perf-relevant PR).
const DEFAULT_OUT: &str = "BENCH_4.json";

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage: bench_suite [--scale tiny|small|medium|paper] [--seed N] \
         [--families LIST] [--epsilons LIST] [--threads N] [--reps N] \
         [--serving-threads N] [--serving-passes N] [--out PATH] [--check-baseline] \
         [--baseline PATH] [--tolerance F]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = SuiteConfig::default_for(WorkloadScale::Tiny);
    let mut out_path = DEFAULT_OUT.to_string();
    let mut baseline_path: Option<String> = None;
    let mut check_baseline = false;
    let mut tolerance = 0.25f64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || {
            i += 1;
            args.get(i).cloned()
        };
        match flag {
            "--scale" => match value().as_deref().and_then(WorkloadScale::parse) {
                Some(s) => config.scale = s,
                None => return usage("--scale expects tiny|small|medium|paper"),
            },
            "--seed" => match value().and_then(|v| v.parse().ok()) {
                Some(s) => config.seed = s,
                None => return usage("--seed expects an integer"),
            },
            "--families" => {
                let list: Option<Vec<QueryFamily>> =
                    value().and_then(|v| v.split(',').map(QueryFamily::parse).collect());
                match list {
                    Some(fams) if !fams.is_empty() => config.families = fams,
                    _ => return usage("--families expects a comma list of sales|range|division"),
                }
            }
            "--epsilons" => {
                let list: Option<Vec<f64>> =
                    value().and_then(|v| v.split(',').map(|e| e.parse().ok()).collect());
                match list {
                    Some(eps)
                        if !eps.is_empty() && eps.iter().all(|e| (1e-4..=0.5).contains(e)) =>
                    {
                        config.epsilons = eps;
                    }
                    _ => return usage("--epsilons expects a comma list in [0.0001, 0.5]"),
                }
            }
            "--threads" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.threads = n,
                _ => return usage("--threads expects a positive integer"),
            },
            "--reps" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.reps = n,
                _ => return usage("--reps expects a positive integer"),
            },
            "--serving-threads" => match value().and_then(|v| v.parse().ok()) {
                Some(n) => config.serving_threads = n,
                None => return usage("--serving-threads expects an integer (0 disables)"),
            },
            "--serving-passes" => match value().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.serving_passes = n,
                _ => return usage("--serving-passes expects a positive integer"),
            },
            "--out" => match value() {
                Some(p) => out_path = p,
                None => return usage("--out expects a path"),
            },
            "--baseline" => match value() {
                Some(p) => baseline_path = Some(p),
                None => return usage("--baseline expects a path"),
            },
            "--check-baseline" => check_baseline = true,
            "--tolerance" => match value().and_then(|v| v.parse().ok()) {
                Some(t) if (0.0..10.0).contains(&t) => tolerance = t,
                _ => return usage("--tolerance expects a fraction, e.g. 0.25"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    println!("qarith bench_suite — workload sweep");
    println!(
        "scale {}  seed {}  families [{}]  ε ladder {:?}  batch threads {}",
        config.scale.name(),
        config.seed,
        config.families.iter().map(QueryFamily::name).collect::<Vec<_>>().join(", "),
        config.epsilons,
        config.threads
    );

    let started = std::time::Instant::now();
    let report = run_suite(&config);
    println!(
        "database: {} tuples, {} numerical nulls, digest {}",
        report.db_tuples, report.db_num_nulls, report.db_digest
    );
    print_summary(&report);
    println!("suite completed in {:.3}s", started.elapsed().as_secs_f64());

    std::fs::write(&out_path, report.to_json()).expect("write BENCH json");
    println!("perf artifact written to {out_path}");

    if !check_baseline {
        return ExitCode::SUCCESS;
    }
    let baseline_path = baseline_path.unwrap_or_else(|| {
        format!("{}/baselines/BENCH_{}.json", env!("CARGO_MANIFEST_DIR"), config.scale.name())
    });
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match SuiteReport::from_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("FAIL: cannot parse baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let failures = check_against_baseline(&report, &baseline, tolerance);
    if failures.is_empty() {
        println!(
            "baseline check PASSED against {baseline_path} \
             (certainties bit-identical, wall time within {:.0}%)",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("baseline check FAILED against {baseline_path}:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}

/// The human summary: per (family, query, ε) one row comparing the
/// three pipelines, then the serving pass.
fn print_summary(report: &SuiteReport) {
    for family in &report.families {
        println!("\nfamily: {}", family.family);
        println!(
            "  {:<26} {:>6}  {:>9}  {:>11}  {:>11}  {:>11}  {:>8}  {:>7}",
            "query", "ε·10³", "dirs", "seq (s)", "batch (s)", "rewrite (s)", "rw-spdup", "exact"
        );
        for q in &family.queries {
            for eps in &report.epsilons {
                let find = |pipeline: &str| {
                    q.points.iter().find(|p| p.pipeline == pipeline && p.epsilon == *eps)
                };
                let (Some(seq), Some(batch), Some(rw)) =
                    (find("seq"), find("batch"), find("rewrite"))
                else {
                    continue;
                };
                let exact = rw
                    .rewrite
                    .as_ref()
                    .and_then(|r| {
                        let get = |k: &str| r.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
                        Some(format!("{}/{}", get("exact_factors")?, get("factors")?))
                    })
                    .unwrap_or_default();
                println!(
                    "  {:<26} {:>6.0}  {:>9}  {:>11.6}  {:>11.6}  {:>11.6}  {:>7.2}x  {:>7}",
                    q.name,
                    eps * 1000.0,
                    seq.directions,
                    seq.seconds,
                    batch.seconds,
                    rw.seconds,
                    batch.seconds / rw.seconds.max(1e-9),
                    exact,
                );
            }
        }
    }
    if let Some(s) = &report.serving {
        let hits = s.cache.iter().find(|(n, _)| n == "hits").map_or(0, |(_, v)| *v);
        let misses = s.cache.iter().find(|(n, _)| n == "misses").map_or(0, |(_, v)| *v);
        println!(
            "\nwarm serving pass: {} clients × {} passes, {} queries at ε = {} \
             in {:.4}s ({:.0} q/s; ν-cache {hits} hits / {misses} misses)",
            s.client_threads,
            s.passes,
            s.queries,
            s.epsilon,
            s.seconds,
            s.queries as f64 / s.seconds.max(1e-9),
        );
    }
}
