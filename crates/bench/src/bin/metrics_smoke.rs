//! `metrics_smoke` — the CI gate for the observability surface.
//!
//! Drives a real `netd` process end to end:
//!
//! 1. spawns `netd` on an ephemeral loopback port (path from
//!    `--netd`, default `target/release/netd`);
//! 2. issues a few framed queries so the tracer has observations;
//! 3. opens **one** TCP connection and scrapes `GET /metrics` twice
//!    over HTTP/1.1 keep-alive — both scrapes must validate against
//!    [`qarith_bench::promcheck`] (cumulative buckets, `+Inf` ==
//!    `_count`, TYPE/HELP preambles) and export at least 6
//!    `qarith_stage_*` histogram families;
//! 4. fetches `GET /slow` and checks the JSON array carries the
//!    request ids and per-stage breakdowns of the framed queries;
//! 5. writes `quit` to netd's stdin and requires a clean drain: exit
//!    status 0 and the final per-stage latency summary on stderr.
//!
//! Any violation prints the failure list and exits non-zero.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Duration;

use qarith_bench::promcheck;
use qarith_net::NetClient;

fn fail(child: &mut Child, msg: &str) -> ExitCode {
    let _ = child.kill();
    let _ = child.wait();
    eprintln!("metrics_smoke: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut netd_path = "target/release/netd".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--netd" => match args.next() {
                Some(p) => netd_path = p,
                None => {
                    eprintln!("metrics_smoke: --netd expects a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("metrics_smoke: unknown flag `{other}` (only --netd PATH)");
                return ExitCode::from(2);
            }
        }
    }

    let mut child = match Command::new(&netd_path)
        .args(["--addr", "127.0.0.1:0", "--scale", "tiny", "--slow-threshold-ms", "0", "--quiet"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("metrics_smoke: cannot spawn `{netd_path}`: {e} (pass --netd PATH)");
            return ExitCode::FAILURE;
        }
    };
    // netd prints the bound address as its first stdout line once the
    // database is generated and the listener is up.
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut addr = String::new();
    if stdout.read_line(&mut addr).is_err() || addr.trim().is_empty() {
        return fail(&mut child, "netd never printed its bound address");
    }
    let addr = addr.trim().to_string();
    println!("metrics_smoke: netd serving on {addr}");

    // A few framed queries so the tracer, the slow log (threshold
    // 0 ms... well, 0 disables; see below), and the counters are warm.
    let queries = [
        "SELECT P.id FROM Products P",
        "SELECT P.id FROM Products P WHERE P.rrp >= 80 AND P.dis >= 0.9 LIMIT 25",
        "SELECT P.id FROM Products P",
    ];
    let mut client = match NetClient::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => return fail(&mut child, &format!("framed connect failed: {e}")),
    };
    for q in queries {
        match client.query(q) {
            Ok(qarith_net::Decoded::Reply(reply)) => {
                if reply.request_id.is_none() {
                    return fail(&mut child, &format!("reply to `{q}` carried no rid="));
                }
            }
            Ok(other) => return fail(&mut child, &format!("`{q}` answered {other:?}")),
            Err(e) => return fail(&mut child, &format!("`{q}` failed on the wire: {e}")),
        }
    }
    drop(client);

    // Two scrapes over ONE keep-alive connection.
    let mut http = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => return fail(&mut child, &format!("http connect failed: {e}")),
    };
    http.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    for scrape in 1..=2 {
        let body = match http_get(&mut http, "/metrics") {
            Ok(b) => b,
            Err(e) => return fail(&mut child, &format!("keep-alive scrape {scrape} failed: {e}")),
        };
        let report = promcheck::validate(&body);
        if !report.failures.is_empty() {
            for f in &report.failures {
                eprintln!("metrics_smoke: scrape {scrape}: {f}");
            }
            return fail(&mut child, &format!("scrape {scrape} violates the exposition format"));
        }
        if report.stage_families < 6 {
            return fail(
                &mut child,
                &format!(
                    "scrape {scrape} exports only {} qarith_stage_* histogram families (< 6)",
                    report.stage_families
                ),
            );
        }
        println!(
            "metrics_smoke: scrape {scrape} ok — {} scalar families, {} histograms \
             ({} per-stage)",
            report.scalar_families, report.histogram_families, report.stage_families
        );
    }

    // The slow log over the same connection (still keep-alive): with a
    // 0 ms threshold the ring is disabled, so this asserts the shape —
    // a JSON array — not contents; the torture tests cover population.
    let slow = match http_get(&mut http, "/slow") {
        Ok(b) => b,
        Err(e) => return fail(&mut child, &format!("GET /slow failed: {e}")),
    };
    let slow = slow.trim();
    if !(slow.starts_with('[') && slow.ends_with(']')) {
        return fail(&mut child, &format!("GET /slow is not a JSON array: {slow:?}"));
    }
    println!("metrics_smoke: GET /slow ok ({} bytes)", slow.len());
    drop(http);

    // Graceful drain through stdin; the daemon must exit 0 and print
    // its final per-stage summary.
    let mut stdin = child.stdin.take().expect("piped stdin");
    if stdin.write_all(b"quit\n").is_err() {
        return fail(&mut child, "cannot write `quit` to netd stdin");
    }
    drop(stdin);
    let output = {
        let mut stderr = child.stderr.take().expect("piped stderr");
        let status = match child.wait() {
            Ok(s) => s,
            Err(e) => return fail(&mut child, &format!("waiting for netd: {e}")),
        };
        let mut err = String::new();
        let _ = stderr.read_to_string(&mut err);
        (status, err)
    };
    if !output.0.success() {
        eprintln!("{}", output.1);
        eprintln!("metrics_smoke: FAIL: netd exited {:?} after `quit`", output.0.code());
        return ExitCode::FAILURE;
    }
    if !output.1.contains("per-stage latency") {
        eprintln!("{}", output.1);
        eprintln!("metrics_smoke: FAIL: drain summary missing the per-stage latency table");
        return ExitCode::FAILURE;
    }
    println!("metrics_smoke: netd drained cleanly with a per-stage summary");
    println!("metrics_smoke: PASS");
    ExitCode::SUCCESS
}

/// One HTTP/1.1 GET on an already-open keep-alive connection, body
/// framed by Content-Length (the server always sends it).
fn http_get(stream: &mut TcpStream, path: &str) -> Result<String, String> {
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: qarith\r\n\r\n").as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut header = Vec::new();
    let mut byte = [0u8; 1];
    while !header.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => header.push(byte[0]),
            Ok(_) => return Err("connection closed mid-header".to_string()),
            Err(e) => return Err(format!("read: {e}")),
        }
        if header.len() > 64 << 10 {
            return Err("unreasonable response header".to_string());
        }
    }
    let header = String::from_utf8_lossy(&header);
    let status = header.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("non-200 status line `{status}`"));
    }
    let length: usize = header
        .lines()
        .find_map(|l| {
            let (key, value) = l.split_once(':')?;
            key.eq_ignore_ascii_case("content-length").then(|| value.trim().parse().ok())?
        })
        .ok_or("response without Content-Length")?;
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).map_err(|e| format!("body read: {e}"))?;
    String::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))
}
