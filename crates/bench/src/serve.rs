//! Load generation against the `qarith-serve` query service — the
//! engine behind the `serve_bench` binary.
//!
//! One [`ServeBenchConfig`] names a database scale, a query-family
//! population, an ε, and a client configuration. [`run_serve_bench`]:
//!
//! 1. builds the database and a [`QueryService`] over it (forced
//!    AFPRAS at the paper's `m = ⌈ε⁻²⌉` prescription, per-request
//!    fan-out 1 — concurrency comes from the clients, as in a server
//!    handling parallel sessions);
//! 2. runs a **sequential reference pass** (one thread, each template
//!    once) and pins every certainty bit into a digest — this also
//!    warms the plan cache, so the timed phase measures serving, not
//!    first-compilation;
//! 3. replays the workload from M client threads, **closed-loop**
//!    (each client issues its next request the moment the previous one
//!    returns) or **open-loop** (requests fire on a fixed-rate
//!    schedule; latency is measured from the *scheduled* arrival, so
//!    queueing delay under overload is visible — no coordinated
//!    omission). Every response is compared bit-for-bit against the
//!    reference as it arrives.
//! 4. repeats the timed phase [`ServeBenchConfig::reps`] times and
//!    reports the repetition with the lowest p95 (scheduler noise only
//!    ever adds latency — the same min-of-reps estimator the workload
//!    suite uses for wall times).
//!
//! The result serializes into the schema-v4 `BENCH_*.json` document
//! kind `"serve"` ([`ServeBenchReport::to_json`]);
//! [`check_serve_baseline`] is the CI gate — certainty drift fails
//! hard, p95 latency may regress at most the tolerance.
//!
//! [`crate::wire`] reuses this module's report shape for the
//! `kind = "wire"` documents of `serve_bench --wire`, which drive the
//! same load through real loopback sockets and the `qarith-net` framed
//! protocol and add a `net` counter block.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use qarith_core::afpras::{AfprasOptions, SampleCount};
use qarith_core::{BatchOptions, MeasureOptions, MethodChoice};
use qarith_datagen::{database_digest, QueryFamily, WorkloadScale};
use qarith_serve::{QueryResponse, QueryService, ServeConfig, ShardedCacheConfig};

use crate::json::{parse, Json, JsonError};
use crate::suite::{SCHEMA_NAME, SCHEMA_VERSION};

/// How clients generate load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// Each client issues its next request as soon as the previous one
    /// completes (throughput-seeking; measures service latency).
    Closed,
    /// Requests fire on a fixed-rate global schedule regardless of
    /// completions (arrival-driven; measures latency *including*
    /// schedule slippage under overload).
    Open,
}

impl LoadMode {
    /// Stable lowercase name (CLI argument and JSON field value).
    pub fn name(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open => "open",
        }
    }

    /// Parses a CLI/JSON name produced by [`LoadMode::name`].
    pub fn parse(s: &str) -> Option<LoadMode> {
        match s {
            "closed" => Some(LoadMode::Closed),
            "open" => Some(LoadMode::Open),
            _ => None,
        }
    }
}

/// Configuration of one serving-load run.
#[derive(Clone, Debug)]
pub struct ServeBenchConfig {
    /// Database scale.
    pub scale: WorkloadScale,
    /// Generation seed (sampling derives from it as in the suite).
    pub seed: u64,
    /// Query families whose queries form the replayed template
    /// population.
    pub families: Vec<QueryFamily>,
    /// The served ε.
    pub epsilon: f64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Passes over the whole template population per client.
    pub passes: usize,
    /// Load-generation mode.
    pub mode: LoadMode,
    /// Target arrival rate in requests/second ([`LoadMode::Open`]
    /// only).
    pub rate: f64,
    /// Timed repetitions; the reported latencies come from the
    /// repetition with the lowest p95.
    pub reps: usize,
    /// Sharded ν-cache memory budget (bytes).
    pub cache_budget_bytes: usize,
    /// Sharded ν-cache shard count.
    pub cache_shards: usize,
    /// Admission-control cap on concurrently executing queries.
    pub max_in_flight: usize,
}

impl ServeBenchConfig {
    /// The default configuration at a scale: all families, ε = 0.02,
    /// 4 closed-loop clients × 3 passes, 3 reps, the default cache and
    /// a 64-wide gate.
    pub fn default_for(scale: WorkloadScale) -> ServeBenchConfig {
        ServeBenchConfig {
            scale,
            seed: 2020,
            families: QueryFamily::all().to_vec(),
            epsilon: 0.02,
            clients: 4,
            passes: 3,
            mode: LoadMode::Closed,
            rate: 0.0,
            reps: 3,
            cache_budget_bytes: 64 << 20,
            cache_shards: 16,
            max_in_flight: 64,
        }
    }
}

/// Latency percentiles of one timed repetition, in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile (the CI-gated quantity).
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed request.
    pub max: f64,
}

impl LatencySummary {
    /// Percentiles of a latency sample (nearest-rank). Panics on an
    /// empty sample — a run with zero requests is a configuration bug.
    pub fn of(latencies: &mut [f64]) -> LatencySummary {
        assert!(!latencies.is_empty(), "no latencies recorded");
        latencies.sort_by(f64::total_cmp);
        let pick = |q: f64| {
            let n = latencies.len();
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            latencies[rank - 1]
        };
        LatencySummary {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: *latencies.last().expect("nonempty"),
        }
    }
}

/// A full serving-load run: the schema-v4 `"serve"` document, or —
/// when produced by [`crate::wire::run_wire_bench`] — the `"wire"`
/// document measured through real sockets.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeBenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Document kind: `"serve"` (in-process), `"wire"` (through the
    /// `qarith-net` framed protocol over loopback sockets), or
    /// `"mutate"` (write batches interleaved with template replays —
    /// [`crate::mutate::run_mutate_bench`]).
    pub kind: String,
    /// Scale name.
    pub scale: String,
    /// Seed.
    pub seed: u64,
    /// The served ε.
    pub epsilon: f64,
    /// Concurrent client threads.
    pub clients: u64,
    /// Passes per client.
    pub passes: u64,
    /// Load mode name.
    pub mode: String,
    /// Open-loop arrival rate (0 for closed-loop).
    pub rate: f64,
    /// Timed repetitions behind the min-p95 selection.
    pub reps: u64,
    /// Generated tuples.
    pub db_tuples: u64,
    /// Generated numerical nulls.
    pub db_num_nulls: u64,
    /// [`database_digest`] of the generated database, hex.
    pub db_digest: String,
    /// Distinct query templates in the population.
    pub templates: u64,
    /// Requests in the reported repetition.
    pub requests: u64,
    /// Wall-clock seconds of the reported repetition.
    pub seconds: f64,
    /// Requests per second of the reported repetition.
    pub qps: f64,
    /// Latency percentiles of the reported repetition.
    pub latency: LatencySummary,
    /// Service counters after the run
    /// ([`qarith_serve::ServiceStats::as_pairs`] names).
    pub service: Vec<(String, u64)>,
    /// Admission counters
    /// ([`qarith_serve::AdmissionStats::as_pairs`] names).
    pub admission: Vec<(String, u64)>,
    /// Sharded ν-cache counters
    /// ([`qarith_serve::ShardedCacheStats::as_pairs`] names).
    pub cache: Vec<(String, u64)>,
    /// Wire-listener counters ([`qarith_net::NetStats::as_pairs`]
    /// names). Empty for in-process (`"serve"`) runs.
    pub net: Vec<(String, u64)>,
    /// Per-stage latency summaries from the service tracer, covering
    /// the run's full lifetime (reference pass + every repetition).
    /// Stages with zero observations are omitted. Informational — the
    /// gate does not compare them.
    pub stages: Vec<StageLatency>,
    /// FNV-1a digest over every reference-pass certainty bit, hex —
    /// the quantity the CI gate pins.
    pub certainty_digest: String,
}

/// One stage row of the schema-v4 `stages` block: observation count
/// and p50/p95/p99 in seconds. The quantiles are bucket upper bounds
/// from the tracer's ~2× log-bucketed histograms, so they over-report
/// by at most one octave.
#[derive(Clone, Debug, PartialEq)]
pub struct StageLatency {
    /// Stage wire name (`qarith_trace::Stage::name`).
    pub stage: String,
    /// Observation count.
    pub count: u64,
    /// Median estimate, seconds.
    pub p50: f64,
    /// 95th-percentile estimate, seconds.
    pub p95: f64,
    /// 99th-percentile estimate, seconds.
    pub p99: f64,
}

/// The tracer's per-stage summaries as report rows, dropping stages
/// that never fired (e.g. the wire stages of an in-process run).
pub(crate) fn stage_latencies(service: &QueryService) -> Vec<StageLatency> {
    service
        .latency_stats()
        .summaries()
        .into_iter()
        .filter(|s| s.count > 0)
        .map(|s| StageLatency {
            stage: s.stage.name().to_string(),
            count: s.count,
            p50: s.p50_nanos as f64 / 1e9,
            p95: s.p95_nanos as f64 / 1e9,
            p99: s.p99_nanos as f64 / 1e9,
        })
        .collect()
}

/// Paper-style engine options for serving: forced AFPRAS, the §8
/// `m = ⌈ε⁻²⌉` prescription, per-request fan-out 1, dedup on. The
/// sampling seed derives from the generation seed exactly like the
/// workload suite's (`seed ^ 0xF1616`), so suite and serving runs at
/// equal config sample identically.
pub(crate) fn serving_options(epsilon: f64, seed: u64) -> MeasureOptions {
    MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions {
            epsilon,
            samples: SampleCount::Paper,
            seed: seed ^ 0xF1616,
            ..AfprasOptions::default()
        },
        batch: BatchOptions { threads: 1, dedup: true },
        ..MeasureOptions::default()
    }
}

/// μ-relevant response bits (tuple, value, samples, dimension) — what
/// concurrent responses are compared on and the digest is built from.
pub(crate) fn response_bits(r: &QueryResponse) -> Vec<(String, u64, u64, u64)> {
    r.answers
        .iter()
        .map(|a| {
            (
                format!("{}", a.tuple),
                a.certainty.value.to_bits(),
                a.certainty.samples as u64,
                a.certainty.dimension as u64,
            )
        })
        .collect()
}

/// Runs the configured load test. Panics if any concurrent response
/// deviates from the sequential reference by a single bit — that is a
/// correctness failure, not a measurement.
pub fn run_serve_bench(config: &ServeBenchConfig) -> ServeBenchReport {
    let db = qarith_datagen::sales::sales_database(&config.scale.params(), config.seed);
    let db_stats = db.stats();
    let db_digest = format!("{:#018x}", database_digest(&db));

    let sql: Vec<String> =
        config.families.iter().flat_map(QueryFamily::queries).map(|q| q.sql).collect();
    assert!(!sql.is_empty(), "no query families configured");

    let service = Arc::new(QueryService::new(
        db,
        ServeConfig {
            options: serving_options(config.epsilon, config.seed),
            cache: ShardedCacheConfig {
                shards: config.cache_shards,
                budget_bytes: config.cache_budget_bytes,
            },
            max_in_flight: config.max_in_flight,
            // The workload population is 9 templates; the default cap
            // never evicts here, which keeps the timed phase pure
            // plan-hit serving.
            ..ServeConfig::default()
        },
    ));

    // Sequential reference pass: pins the expected bits, warms the plan
    // cache, and feeds the ν-cache exactly once per group.
    let mut digest = qarith_numeric::Fnv1a64::new();
    let mut reference = Vec::with_capacity(sql.len());
    for q in &sql {
        let response = service.query(q).expect("workload SQL serves");
        let bits = response_bits(&response);
        digest.update(response.fingerprint.as_bytes());
        for (tuple, value, samples, dimension) in &bits {
            digest.update(tuple.as_bytes());
            for n in [*value, *samples, *dimension] {
                digest.update(&n.to_le_bytes());
            }
        }
        reference.push(bits);
    }

    // Timed repetitions; keep the one with the lowest p95.
    let requests_per_rep = config.clients.max(1) * config.passes.max(1) * sql.len();
    let mut best: Option<(LatencySummary, f64)> = None;
    for _ in 0..config.reps.max(1) {
        let (mut latencies, seconds) = timed_rep(config, &service, &sql, &reference);
        let summary = LatencySummary::of(&mut latencies);
        if best.map_or(true, |(b, _)| summary.p95 < b.p95) {
            best = Some((summary, seconds));
        }
    }
    let (latency, seconds) = best.expect("reps ≥ 1");

    let templates: std::collections::HashSet<String> = sql
        .iter()
        .map(|q| qarith_sql::sql_fingerprint(q).expect("workload SQL fingerprints"))
        .collect();

    ServeBenchReport {
        schema_version: SCHEMA_VERSION,
        kind: "serve".to_string(),
        scale: config.scale.name().to_string(),
        seed: config.seed,
        epsilon: config.epsilon,
        clients: config.clients.max(1) as u64,
        passes: config.passes.max(1) as u64,
        mode: config.mode.name().to_string(),
        rate: if config.mode == LoadMode::Open { config.rate } else { 0.0 },
        reps: config.reps.max(1) as u64,
        db_tuples: db_stats.tuples as u64,
        db_num_nulls: db_stats.num_nulls as u64,
        db_digest,
        templates: templates.len() as u64,
        requests: requests_per_rep as u64,
        seconds,
        qps: requests_per_rep as f64 / seconds.max(1e-9),
        latency,
        service: pairs(&service.stats().as_pairs()),
        admission: pairs(&service.admission_stats().as_pairs()),
        cache: pairs(&service.cache_stats().as_pairs()),
        net: Vec::new(),
        stages: stage_latencies(&service),
        certainty_digest: format!("{:#018x}", digest.finish()),
    }
}

pub(crate) fn pairs(p: &[(&'static str, u64)]) -> Vec<(String, u64)> {
    p.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
}

/// One timed repetition: all clients through the shared service,
/// returning per-request latencies and the wall-clock seconds.
fn timed_rep(
    config: &ServeBenchConfig,
    service: &Arc<QueryService>,
    sql: &[String],
    reference: &[Vec<(String, u64, u64, u64)>],
) -> (Vec<f64>, f64) {
    let clients = config.clients.max(1);
    let passes = config.passes.max(1);
    let total = clients * passes * sql.len();
    let barrier = Barrier::new(clients + 1);
    let next = AtomicUsize::new(0);
    let interval = if config.mode == LoadMode::Open {
        assert!(config.rate > 0.0, "open-loop mode needs a positive --rate");
        Duration::from_secs_f64(1.0 / config.rate)
    } else {
        Duration::ZERO
    };

    let mut all_latencies: Vec<f64> = Vec::with_capacity(total);
    let mut seconds = 0.0f64;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let (service, barrier, next) = (service.clone(), &barrier, &next);
                scope.spawn(move || {
                    barrier.wait();
                    let start = Instant::now();
                    let mut latencies = Vec::with_capacity(total / clients + 1);
                    match config.mode {
                        LoadMode::Closed => {
                            // Closed loop: clients own pass slices and
                            // issue back to back.
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= total {
                                    break;
                                }
                                let q = &sql[k % sql.len()];
                                let issued = Instant::now();
                                let response = service.query(q).expect("served");
                                latencies.push(issued.elapsed().as_secs_f64());
                                assert_eq!(
                                    response_bits(&response),
                                    reference[k % sql.len()],
                                    "concurrent response drifted from the sequential reference"
                                );
                            }
                        }
                        LoadMode::Open => {
                            // Open loop: request k is *scheduled* at
                            // start + k·interval; latency counts from
                            // the schedule, so falling behind shows up
                            // as latency (no coordinated omission).
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= total {
                                    break;
                                }
                                let scheduled = start + interval * k as u32;
                                if let Some(wait) = scheduled.checked_duration_since(Instant::now())
                                {
                                    std::thread::sleep(wait);
                                }
                                let q = &sql[k % sql.len()];
                                let response = service.query(q).expect("served");
                                latencies.push(scheduled.elapsed().as_secs_f64());
                                assert_eq!(
                                    response_bits(&response),
                                    reference[k % sql.len()],
                                    "concurrent response drifted from the sequential reference"
                                );
                            }
                        }
                    }
                    // The client's own wall clock, from its barrier
                    // release to its last completion: the repetition's
                    // duration is the slowest client's (the main thread
                    // may be scheduled late after the barrier on busy
                    // machines, so it cannot time this reliably).
                    (latencies, start.elapsed().as_secs_f64())
                })
            })
            .collect();
        barrier.wait();
        for w in workers {
            let (latencies, elapsed) = w.join().expect("client thread");
            all_latencies.extend(latencies);
            seconds = seconds.max(elapsed);
        }
    });
    (all_latencies, seconds)
}

// ---------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------

fn counters_to_json(pairs: &[(String, u64)]) -> Json {
    Json::Obj(pairs.iter().map(|(k, v)| (k.clone(), Json::num_u64(*v))).collect())
}

fn counters_from_json(v: &Json, what: &str) -> Result<Vec<(String, u64)>, String> {
    match v {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("{what}.{k}: expected a counter"))
            })
            .collect(),
        _ => Err(format!("{what}: expected an object")),
    }
}

impl ServeBenchReport {
    /// Serializes to the pretty-printed `BENCH_*.json` document (kind
    /// `"serve"` or `"wire"`).
    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", Json::str(SCHEMA_NAME)),
            ("schema_version", Json::num_u64(self.schema_version)),
            ("kind", Json::str(&self.kind)),
            ("scale", Json::str(&self.scale)),
            ("seed", Json::num_u64(self.seed)),
            ("epsilon", Json::Num(self.epsilon)),
            ("clients", Json::num_u64(self.clients)),
            ("passes", Json::num_u64(self.passes)),
            ("mode", Json::str(&self.mode)),
            ("rate", Json::Num(self.rate)),
            ("reps", Json::num_u64(self.reps)),
            (
                "db",
                Json::obj([
                    ("tuples", Json::num_u64(self.db_tuples)),
                    ("num_nulls", Json::num_u64(self.db_num_nulls)),
                    ("digest", Json::str(&self.db_digest)),
                ]),
            ),
            ("templates", Json::num_u64(self.templates)),
            ("requests", Json::num_u64(self.requests)),
            ("seconds", Json::Num(self.seconds)),
            ("qps", Json::Num(self.qps)),
            (
                "latency",
                Json::obj([
                    ("p50", Json::Num(self.latency.p50)),
                    ("p95", Json::Num(self.latency.p95)),
                    ("p99", Json::Num(self.latency.p99)),
                    ("max", Json::Num(self.latency.max)),
                ]),
            ),
            ("service", counters_to_json(&self.service)),
            ("admission", counters_to_json(&self.admission)),
            ("cache", counters_to_json(&self.cache)),
            ("net", counters_to_json(&self.net)),
            (
                "stages",
                Json::Obj(
                    self.stages
                        .iter()
                        .map(|s| {
                            (
                                s.stage.clone(),
                                Json::obj([
                                    ("count", Json::num_u64(s.count)),
                                    ("p50", Json::Num(s.p50)),
                                    ("p95", Json::Num(s.p95)),
                                    ("p99", Json::Num(s.p99)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            ("certainty_digest", Json::str(&self.certainty_digest)),
        ])
        .pretty()
    }

    /// Parses a document produced by [`ServeBenchReport::to_json`].
    /// Rejects unknown schema names, future versions, and kinds other
    /// than `"serve"` / `"wire"` / `"mutate"`. The `net` block is
    /// optional on parse (v2 serve documents predate it).
    pub fn from_json(text: &str) -> Result<ServeBenchReport, String> {
        let doc = parse(text).map_err(|e: JsonError| e.to_string())?;
        let schema = req_str(&doc, "schema")?;
        if schema != SCHEMA_NAME {
            return Err(format!("unknown schema `{schema}` (expected `{SCHEMA_NAME}`)"));
        }
        let schema_version = req_u64(&doc, "schema_version")?;
        if schema_version > SCHEMA_VERSION {
            return Err(format!(
                "schema version {schema_version} is newer than this binary's {SCHEMA_VERSION}"
            ));
        }
        let kind = req_str(&doc, "kind")?;
        if kind != "serve" && kind != "wire" && kind != "mutate" {
            return Err(format!("document kind `{kind}` is not a serve report"));
        }
        let db = doc.get("db").ok_or("missing field `db`")?;
        let latency = doc.get("latency").ok_or("missing field `latency`")?;
        Ok(ServeBenchReport {
            schema_version,
            kind,
            scale: req_str(&doc, "scale")?,
            seed: req_u64(&doc, "seed")?,
            epsilon: req_f64(&doc, "epsilon")?,
            clients: req_u64(&doc, "clients")?,
            passes: req_u64(&doc, "passes")?,
            mode: req_str(&doc, "mode")?,
            rate: req_f64(&doc, "rate")?,
            reps: req_u64(&doc, "reps")?,
            db_tuples: req_u64(db, "tuples")?,
            db_num_nulls: req_u64(db, "num_nulls")?,
            db_digest: req_str(db, "digest")?,
            templates: req_u64(&doc, "templates")?,
            requests: req_u64(&doc, "requests")?,
            seconds: req_f64(&doc, "seconds")?,
            qps: req_f64(&doc, "qps")?,
            latency: LatencySummary {
                p50: req_f64(latency, "p50")?,
                p95: req_f64(latency, "p95")?,
                p99: req_f64(latency, "p99")?,
                max: req_f64(latency, "max")?,
            },
            service: counters_from_json(doc.get("service").ok_or("missing `service`")?, "service")?,
            admission: counters_from_json(
                doc.get("admission").ok_or("missing `admission`")?,
                "admission",
            )?,
            cache: counters_from_json(doc.get("cache").ok_or("missing `cache`")?, "cache")?,
            net: match doc.get("net") {
                Some(v) => counters_from_json(v, "net")?,
                None => Vec::new(),
            },
            // v3 documents predate the stages block.
            stages: match doc.get("stages") {
                Some(Json::Obj(rows)) => rows
                    .iter()
                    .map(|(stage, v)| {
                        Ok(StageLatency {
                            stage: stage.clone(),
                            count: req_u64(v, "count")?,
                            p50: req_f64(v, "p50")?,
                            p95: req_f64(v, "p95")?,
                            p99: req_f64(v, "p99")?,
                        })
                    })
                    .collect::<Result<Vec<StageLatency>, String>>()?,
                Some(_) => return Err("stages: expected an object".to_string()),
                None => Vec::new(),
            },
            certainty_digest: req_str(&doc, "certainty_digest")?,
        })
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing integer field `{key}`"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number field `{key}`"))
}

// ---------------------------------------------------------------------
// Baseline gate
// ---------------------------------------------------------------------

/// Compares a fresh serving run against a checked-in baseline. Returns
/// the list of failures (empty ⇒ gate passes).
///
/// * **Configuration** must match exactly (scale, seed, ε, clients,
///   passes, mode, request count, template count, database digest): a
///   mismatch means the runs measure different things.
/// * **Certainties** are pinned through the reference-pass digest —
///   any bit of drift fails (an intentional change must re-pin the
///   baseline in the same commit).
/// * **p95 latency** may regress at most `tolerance` (relative), with
///   a 1 ms absolute floor so microsecond-scale baselines don't turn
///   scheduler jitter into failures. Throughput and the counter blocks
///   are informational: plan/ν-cache race outcomes under concurrency
///   are not deterministic, so they are not gated.
pub fn check_serve_baseline(
    fresh: &ServeBenchReport,
    baseline: &ServeBenchReport,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut cfg = |name: &str, a: String, b: String| {
        if a != b {
            failures.push(format!("config mismatch: {name} is {a}, baseline has {b}"));
        }
    };
    cfg("schema_version", fresh.schema_version.to_string(), baseline.schema_version.to_string());
    cfg("kind", fresh.kind.clone(), baseline.kind.clone());
    cfg("scale", fresh.scale.clone(), baseline.scale.clone());
    cfg("seed", fresh.seed.to_string(), baseline.seed.to_string());
    cfg("epsilon", format!("{:?}", fresh.epsilon), format!("{:?}", baseline.epsilon));
    cfg("clients", fresh.clients.to_string(), baseline.clients.to_string());
    cfg("passes", fresh.passes.to_string(), baseline.passes.to_string());
    cfg("mode", fresh.mode.clone(), baseline.mode.clone());
    // The open-loop target rate shapes the load the latencies were
    // measured under; comparing across rates would gate p95 against a
    // baseline from a different experiment.
    cfg("rate", format!("{:?}", fresh.rate), format!("{:?}", baseline.rate));
    cfg("requests", fresh.requests.to_string(), baseline.requests.to_string());
    cfg("templates", fresh.templates.to_string(), baseline.templates.to_string());
    cfg("db.digest", fresh.db_digest.clone(), baseline.db_digest.clone());
    if !failures.is_empty() {
        return failures;
    }

    if fresh.certainty_digest != baseline.certainty_digest {
        failures.push(format!(
            "certainty drift: digest {} vs baseline {} — served answers changed bits",
            fresh.certainty_digest, baseline.certainty_digest
        ));
    }
    let allowed = (baseline.latency.p95 * (1.0 + tolerance)).max(baseline.latency.p95 + 0.001);
    if fresh.latency.p95 > allowed {
        failures.push(format!(
            "p95 latency regressed: {:.6}s vs baseline {:.6}s (+{:.0}% > {:.0}% tolerance)",
            fresh.latency.p95,
            baseline.latency.p95,
            100.0 * (fresh.latency.p95 / baseline.latency.p95.max(1e-12) - 1.0),
            100.0 * tolerance
        ));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ServeBenchReport {
        ServeBenchReport {
            schema_version: SCHEMA_VERSION,
            kind: "serve".into(),
            scale: "tiny".into(),
            seed: 2020,
            epsilon: 0.02,
            clients: 4,
            passes: 3,
            mode: "closed".into(),
            rate: 0.0,
            reps: 3,
            db_tuples: 200,
            db_num_nulls: 47,
            db_digest: "0x75dc0786674255e7".into(),
            templates: 9,
            requests: 120,
            seconds: 0.5,
            qps: 240.0,
            latency: LatencySummary { p50: 0.001, p95: 0.004, p99: 0.009, max: 0.02 },
            service: vec![("queries".into(), 130)],
            admission: vec![("admitted".into(), 130)],
            cache: vec![("hits".into(), 100), ("evictions".into(), 0)],
            net: vec![],
            stages: vec![StageLatency {
                stage: "total".into(),
                count: 130,
                p50: 0.001024,
                p95: 0.004096,
                p99: 0.008192,
            }],
            certainty_digest: "0x0123456789abcdef".into(),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = tiny_report();
        let back = ServeBenchReport::from_json(&report.to_json()).expect("parse own output");
        assert_eq!(back, report);
    }

    #[test]
    fn suite_parser_rejects_serve_documents_and_vice_versa() {
        let serve = tiny_report().to_json();
        assert!(crate::suite::SuiteReport::from_json(&serve)
            .unwrap_err()
            .contains("not a suite report"));
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let report = tiny_report();
        assert_eq!(check_serve_baseline(&report, &report, 0.25), Vec::<String>::new());
    }

    #[test]
    fn certainty_drift_fails_the_gate() {
        let baseline = tiny_report();
        let mut fresh = baseline.clone();
        fresh.certainty_digest = "0xdeadbeefdeadbeef".into();
        let failures = check_serve_baseline(&fresh, &baseline, 0.25);
        assert!(failures.iter().any(|f| f.contains("certainty drift")), "{failures:?}");
    }

    #[test]
    fn p95_gate_tolerates_and_fails() {
        let baseline = tiny_report();
        let mut fresh = baseline.clone();
        fresh.latency.p95 = baseline.latency.p95 * 1.2;
        assert_eq!(check_serve_baseline(&fresh, &baseline, 0.25), Vec::<String>::new());
        fresh.latency.p95 = baseline.latency.p95 * 1.6;
        let failures = check_serve_baseline(&fresh, &baseline, 0.25);
        assert!(failures.iter().any(|f| f.contains("p95 latency regressed")), "{failures:?}");
    }

    #[test]
    fn microsecond_baselines_get_the_absolute_floor() {
        let mut baseline = tiny_report();
        baseline.latency.p95 = 2e-5;
        let mut fresh = baseline.clone();
        fresh.latency.p95 = 9e-4; // 45×, but within the 1 ms floor
        assert_eq!(check_serve_baseline(&fresh, &baseline, 0.25), Vec::<String>::new());
    }

    #[test]
    fn config_mismatch_fails_fast() {
        let baseline = tiny_report();
        let mut fresh = baseline.clone();
        fresh.clients = 16;
        let failures = check_serve_baseline(&fresh, &baseline, 0.25);
        assert!(failures.iter().any(|f| f.contains("clients")), "{failures:?}");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut sample: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let summary = LatencySummary::of(&mut sample);
        assert_eq!(summary.p50, 50.0);
        assert_eq!(summary.p95, 95.0);
        assert_eq!(summary.p99, 99.0);
        assert_eq!(summary.max, 100.0);
    }

    #[test]
    fn load_mode_names_round_trip() {
        for m in [LoadMode::Closed, LoadMode::Open] {
            assert_eq!(LoadMode::parse(m.name()), Some(m));
        }
        assert_eq!(LoadMode::parse("bursty"), None);
    }
}
