//! Shared harness for the paper's evaluation (§9, Figure 1), the
//! ablation studies listed in DESIGN.md, the multi-scale workload
//! suite ([`suite`], bin `bench_suite`), and the serving load
//! generator ([`serve`], bin `serve_bench`).
//!
//! Layering: the top of the workspace — above `qarith-core`,
//! `qarith-serve`, and `qarith-datagen`; nothing depends on it. Its
//! baselines under `baselines/` are what CI's perf jobs gate against.
//!
//! The paper's pipeline was: Postgres evaluates the SQL query naively and
//! emits candidate tuples plus compact constraint formulas; a
//! Python/NumPy program then runs the Theorem 8.1 Monte-Carlo phase per
//! candidate, for error levels ε ∈ {0.010, 0.015, …, 0.100}. Figure 1
//! plots the Monte-Carlo time against ε for three decision-support
//! queries.
//!
//! [`Fig1Harness`] reproduces that split: candidate generation (our CQ
//! executor) happens once per query; [`Fig1Harness::run_epsilon`] times
//! only the approximation phase, exactly like the paper's y-axis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use qarith_core::afpras::{estimate_nu_compiled_many, AfprasOptions, SampleCount};
use qarith_core::{
    BatchOptions, BatchStats, CertaintyEngine, CertaintyEstimate, MeasureOptions, MethodChoice,
    NuCache, RewriteOptions,
};
use qarith_datagen::sales::SalesScale;
use qarith_datagen::{QueryFamily, WorkloadSpec};
use qarith_engine::cq::{self, CandidateAnswer};
use qarith_types::Database;

pub mod json;
pub mod kernel;
pub mod mutate;
pub mod promcheck;
pub mod serve;
pub mod suite;
pub mod wire;

pub use qarith_constraints::asymptotic::CompiledFormula;

/// The ε grid of Figure 1: 0.010 to 0.100 in steps of 0.005 (19 points),
/// descending like the paper's x-axis (ε·10³ from 100 down to 10).
pub fn figure1_epsilons() -> Vec<f64> {
    (0..19).map(|i| 0.100 - 0.005 * i as f64).collect()
}

/// One workload query, prepared for measurement.
pub struct PreparedQuery {
    /// Display name ("Competitive Advantage", …).
    pub name: String,
    /// The SQL text.
    pub sql: String,
    /// Candidates produced by the executor under `LIMIT` semantics.
    pub candidates: Vec<CandidateAnswer>,
    /// Compiled ground formulas for the *uncertain* candidates (the
    /// certain ones need no sampling, as in the paper's implementation).
    pub compiled: Vec<CompiledFormula>,
    /// Time spent producing candidates (the "Postgres side").
    pub candidate_time: Duration,
}

/// The measurement harness for one workload: a generated database plus
/// its prepared queries. [`Fig1Harness::new`] instantiates the paper's
/// Figure 1 configuration (the `sales` family); the `bench_suite` driver
/// instantiates one harness per [`QueryFamily`] via
/// [`Fig1Harness::from_spec`].
pub struct Fig1Harness {
    /// The database.
    pub db: Database,
    /// Prepared queries, in the family's fixed order.
    pub queries: Vec<PreparedQuery>,
}

/// One measured point of Figure 1.
#[derive(Debug, Clone)]
pub struct Fig1Point {
    /// Error level.
    pub epsilon: f64,
    /// Monte-Carlo samples drawn per uncertain candidate.
    pub samples_per_candidate: usize,
    /// Total wall-clock time of the approximation phase.
    pub time: Duration,
    /// The certainty estimates (one per candidate, certain ones = 1).
    pub estimates: Vec<CertaintyEstimate>,
}

impl Fig1Harness {
    /// Builds the database at the given scale/seed and prepares the three
    /// §9 queries (the `sales` family).
    pub fn new(scale: &SalesScale, seed: u64) -> Fig1Harness {
        let db = qarith_datagen::sales::sales_database(scale, seed);
        let queries = Fig1Harness::prepare(&db, &QueryFamily::Sales.queries());
        Fig1Harness { db, queries }
    }

    /// Builds the harness for an arbitrary workload spec: generate the
    /// database, then execute and compile every query of the family.
    pub fn from_spec(spec: &WorkloadSpec) -> Fig1Harness {
        Fig1Harness::from_workload(spec.build())
    }

    /// Wraps an already-built [`qarith_datagen::Workload`] (consuming its
    /// database) — the entry point when one generated database is shared
    /// across several harnesses.
    pub fn from_workload(workload: qarith_datagen::Workload) -> Fig1Harness {
        let queries = Fig1Harness::prepare(&workload.db, &workload.queries);
        Fig1Harness { db: workload.db, queries }
    }

    /// Executes and compiles the given queries against `db`.
    fn prepare(db: &Database, queries: &[qarith_datagen::WorkloadQuery]) -> Vec<PreparedQuery> {
        let catalog = db.catalog();
        let mut prepared = Vec::with_capacity(queries.len());
        for q in queries {
            let lowered = qarith_sql::compile(&q.sql, &catalog).expect("workload queries compile");
            // Candidate-counting LIMIT: the analyst sees 25 *distinct*
            // results (nested-loop row order would otherwise fill the
            // window with duplicates of the first result).
            let opts = lowered.cq_options();
            let started = Instant::now();
            let candidates =
                cq::execute(&lowered.query, db, &opts).expect("workload queries execute");
            let candidate_time = started.elapsed();
            let compiled = candidates
                .iter()
                .filter(|c| !c.certain)
                .map(|c| CompiledFormula::compile(&c.formula))
                .collect();
            prepared.push(PreparedQuery {
                name: q.name.clone(),
                sql: q.sql.clone(),
                candidates,
                compiled,
                candidate_time,
            });
        }
        prepared
    }

    /// Runs the approximation phase of one query at one ε, timing it.
    ///
    /// Matches the paper's implementation: `m = ⌈ε⁻²⌉` directions
    /// (their §8 prescription), partial-vector sampling, no exact-method
    /// shortcuts. The uncertain candidates are measured through the
    /// template-sharing batched kernel
    /// ([`estimate_nu_compiled_many`]) — per-candidate estimates are
    /// bit-identical to formula-at-a-time calls (each candidate's
    /// direction stream depends only on seed and sampled dimension),
    /// but candidates with equal dimension share direction blocks.
    pub fn run_epsilon(&self, query_idx: usize, epsilon: f64, seed: u64) -> Fig1Point {
        let q = &self.queries[query_idx];
        let opts = AfprasOptions {
            epsilon,
            samples: SampleCount::Paper,
            seed,
            ..AfprasOptions::default()
        };
        let started = Instant::now();
        let refs: Vec<&CompiledFormula> = q.compiled.iter().collect();
        let mut outcomes = estimate_nu_compiled_many(&refs, &opts).into_iter();
        let mut estimates = Vec::with_capacity(q.candidates.len());
        for cand in &q.candidates {
            if cand.certain {
                estimates.push(CertaintyEstimate::exact_rational(qarith_numeric::Rational::ONE, 0));
            } else {
                let out = outcomes.next().expect("one outcome per uncertain");
                estimates.push(CertaintyEstimate {
                    value: out.estimate,
                    exact: None,
                    method: qarith_core::Method::Afpras,
                    epsilon: Some(epsilon),
                    delta: Some(opts.delta),
                    samples: out.samples,
                    dimension: out.dimension,
                    cached: false,
                    rewritten: false,
                });
            }
        }
        Fig1Point {
            epsilon,
            samples_per_candidate: opts.sample_count(),
            time: started.elapsed(),
            estimates,
        }
    }

    /// Number of uncertain candidates for a query (the ones that cost
    /// Monte-Carlo time).
    pub fn uncertain_count(&self, query_idx: usize) -> usize {
        self.queries[query_idx].compiled.len()
    }

    /// An engine configured like [`Fig1Harness::run_epsilon`]'s
    /// measurement phase — forced AFPRAS, the paper's `m = ⌈ε⁻²⌉`
    /// prescription — with the given batch fan-out.
    pub fn paper_engine(epsilon: f64, seed: u64, batch: BatchOptions) -> CertaintyEngine {
        CertaintyEngine::new(MeasureOptions {
            method: MethodChoice::Afpras,
            afpras: AfprasOptions {
                epsilon,
                samples: SampleCount::Paper,
                seed,
                ..AfprasOptions::default()
            },
            batch,
            ..MeasureOptions::default()
        })
    }

    /// Runs the approximation phase of one query at one ε through the
    /// batch engine (canonical dedup + parallel fan-out + optional
    /// ν-cache), timing it. For a fixed seed the estimates are
    /// bit-identical to [`Fig1Harness::run_epsilon`].
    pub fn run_epsilon_batch(
        &self,
        query_idx: usize,
        epsilon: f64,
        seed: u64,
        batch: BatchOptions,
        cache: Option<Arc<NuCache>>,
    ) -> BatchPoint {
        self.run_engine(Fig1Harness::paper_engine(epsilon, seed, batch), query_idx, epsilon, cache)
    }

    /// Like [`Fig1Harness::run_epsilon_batch`] but with the
    /// `qarith-rewrite` pipeline enabled (full pass set): formulas are
    /// simplified and decomposed before measurement, factors route to
    /// exact evaluators where possible, and the ν-cache keys pick up the
    /// rewritten forms. Estimates are **not** bit-identical to the
    /// unrewritten paths but carry the same ε-additive guarantee.
    pub fn run_epsilon_rewritten(
        &self,
        query_idx: usize,
        epsilon: f64,
        seed: u64,
        batch: BatchOptions,
        cache: Option<Arc<NuCache>>,
    ) -> BatchPoint {
        let mut engine = Fig1Harness::paper_engine(epsilon, seed, batch);
        let options = engine.options().clone().with_rewrite(RewriteOptions::full());
        engine = CertaintyEngine::new(options);
        self.run_engine(engine, query_idx, epsilon, cache)
    }

    fn run_engine(
        &self,
        mut engine: CertaintyEngine,
        query_idx: usize,
        epsilon: f64,
        cache: Option<Arc<NuCache>>,
    ) -> BatchPoint {
        if let Some(cache) = cache {
            engine = engine.with_cache(cache);
        }
        let candidates = self.queries[query_idx].candidates.clone();
        let started = Instant::now();
        let outcome = engine.measure_batch(candidates).expect("AFPRAS accepts any formula");
        BatchPoint {
            epsilon,
            time: started.elapsed(),
            stats: outcome.stats,
            estimates: outcome.answers.into_iter().map(|a| a.certainty).collect(),
        }
    }
}

/// One measured point of the batch path.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// Error level.
    pub epsilon: f64,
    /// Wall-clock time of the batch measurement phase.
    pub time: Duration,
    /// Dedup/cache/parallelism accounting.
    pub stats: BatchStats,
    /// The certainty estimates (one per candidate, certain ones = 1).
    pub estimates: Vec<CertaintyEstimate>,
}

/// Formats a duration in seconds with millisecond resolution (the
/// paper's y-axis unit).
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_grid_matches_figure_1() {
        let eps = figure1_epsilons();
        assert_eq!(eps.len(), 19);
        assert!((eps[0] - 0.100).abs() < 1e-12);
        assert!((eps[18] - 0.010).abs() < 1e-12);
        // Strictly descending in steps of 0.005.
        for w in eps.windows(2) {
            assert!((w[0] - w[1] - 0.005).abs() < 1e-12);
        }
    }

    #[test]
    fn harness_runs_at_tiny_scale() {
        let harness = Fig1Harness::new(&SalesScale::tiny(), 11);
        assert_eq!(harness.queries.len(), 3);
        for (i, q) in harness.queries.iter().enumerate() {
            assert!(!q.candidates.is_empty(), "{} returned no candidates", q.name);
            let point = harness.run_epsilon(i, 0.1, 1);
            assert_eq!(point.samples_per_candidate, 100);
            assert_eq!(point.estimates.len(), q.candidates.len());
            for e in &point.estimates {
                assert!((0.0..=1.0).contains(&e.value));
            }
        }
    }

    #[test]
    fn batch_path_matches_sequential_bit_for_bit() {
        let harness = Fig1Harness::new(&SalesScale::tiny(), 11);
        for (qi, _) in harness.queries.iter().enumerate() {
            let sequential = harness.run_epsilon(qi, 0.1, 7);
            let batch = harness.run_epsilon_batch(
                qi,
                0.1,
                7,
                BatchOptions { threads: 4, dedup: true },
                Some(Arc::new(NuCache::new())),
            );
            assert_eq!(sequential.estimates.len(), batch.estimates.len());
            for (s, b) in sequential.estimates.iter().zip(&batch.estimates) {
                assert_eq!(s.value.to_bits(), b.value.to_bits(), "query {qi}");
                assert_eq!(s.samples, b.samples);
                assert_eq!(s.dimension, b.dimension);
            }
            assert!(batch.stats.groups <= batch.stats.candidates - batch.stats.certain);
        }
    }

    #[test]
    fn smaller_epsilon_draws_more_samples() {
        let harness = Fig1Harness::new(&SalesScale::tiny(), 13);
        let coarse = harness.run_epsilon(0, 0.1, 1);
        let fine = harness.run_epsilon(0, 0.01, 1);
        assert_eq!(coarse.samples_per_candidate, 100);
        assert_eq!(fine.samples_per_candidate, 10_000);
    }
}
