//! Serving load through real sockets — the engine behind
//! `serve_bench --wire`.
//!
//! [`run_wire_bench`] measures the same workload as
//! [`crate::serve::run_serve_bench`], but each request crosses a real
//! loopback TCP connection and the `qarith-net` framed protocol:
//!
//! 1. builds the database and [`QueryService`] under the identical
//!    serving regime (forced AFPRAS, `m = ⌈ε⁻²⌉`, per-request fan-out
//!    1), then binds a [`NetServer`] on `127.0.0.1:0`;
//! 2. runs the **sequential in-process reference pass** and pins its
//!    certainty digest — the same construction as the in-process
//!    bench, so `serve` and `wire` baselines at equal config pin the
//!    same digest;
//! 3. replays the workload from M [`NetClient`] connections,
//!    closed-loop or **open-loop** (requests fire on a fixed-rate
//!    schedule; latency counts from the *scheduled* arrival, so
//!    schedule slippage under overload is visible — no coordinated
//!    omission). Every decoded reply is compared bit-for-bit against
//!    the reference;
//! 4. keeps the repetition with the lowest p95, drains the listener
//!    ([`NetServer::shutdown`]), and reports with `kind = "wire"` plus
//!    the [`qarith_net::NetStats`] counter block.
//!
//! The measured latency therefore includes framing, both socket hops,
//! and reply parsing — the end-to-end number a remote caller sees —
//! while the certainty digest proves the bytes on the wire carry
//! exactly the bits the in-process service produced.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use qarith_datagen::{database_digest, QueryFamily};
use qarith_net::{Decoded, NetClient, NetConfig, NetServer};
use qarith_serve::{QueryService, ServeConfig, ShardedCacheConfig};

use crate::serve::{
    pairs, response_bits, serving_options, stage_latencies, LatencySummary, LoadMode,
    ServeBenchConfig, ServeBenchReport,
};
use crate::suite::SCHEMA_VERSION;

/// One reply reduced to its μ-relevant bits, in the same shape
/// [`crate::serve::response_bits`] produces for in-process responses.
fn reply_bits(decoded: &Decoded) -> Vec<(String, u64, u64, u64)> {
    match decoded {
        Decoded::Reply(reply) => reply
            .answers
            .iter()
            .map(|a| (a.tuple.clone(), a.nu_bits, a.samples, a.dimension))
            .collect(),
        other => panic!("wire bench expected an ok reply, got {other:?}"),
    }
}

/// Runs the configured load test through loopback sockets. Panics if
/// any wire reply deviates from the sequential in-process reference by
/// a single bit — that is a correctness failure, not a measurement.
pub fn run_wire_bench(config: &ServeBenchConfig) -> ServeBenchReport {
    let db = qarith_datagen::sales::sales_database(&config.scale.params(), config.seed);
    let db_stats = db.stats();
    let db_digest = format!("{:#018x}", database_digest(&db));

    let sql: Vec<String> =
        config.families.iter().flat_map(QueryFamily::queries).map(|q| q.sql).collect();
    assert!(!sql.is_empty(), "no query families configured");

    let service = Arc::new(QueryService::new(
        db,
        ServeConfig {
            options: serving_options(config.epsilon, config.seed),
            cache: ShardedCacheConfig {
                shards: config.cache_shards,
                budget_bytes: config.cache_budget_bytes,
            },
            max_in_flight: config.max_in_flight,
            ..ServeConfig::default()
        },
    ));

    // Sequential in-process reference pass: pins the expected bits and
    // the digest, warms the plan cache. Identical to the in-process
    // bench's, so serve and wire runs at equal config pin the same
    // certainty digest.
    let mut digest = qarith_numeric::Fnv1a64::new();
    let mut reference = Vec::with_capacity(sql.len());
    for q in &sql {
        let response = service.query(q).expect("workload SQL serves");
        let bits = response_bits(&response);
        digest.update(response.fingerprint.as_bytes());
        for (tuple, value, samples, dimension) in &bits {
            digest.update(tuple.as_bytes());
            for n in [*value, *samples, *dimension] {
                digest.update(&n.to_le_bytes());
            }
        }
        reference.push(bits);
    }

    let server = NetServer::start(service, NetConfig::default())
        .expect("bind a loopback listener on an ephemeral port");

    // Timed repetitions; keep the one with the lowest p95. Each rep
    // opens fresh connections so the rep boundary is visible in the
    // connection counters, not smeared across reps.
    let requests_per_rep = config.clients.max(1) * config.passes.max(1) * sql.len();
    let mut best: Option<(LatencySummary, f64)> = None;
    for _ in 0..config.reps.max(1) {
        let (mut latencies, seconds) = wire_timed_rep(config, &server, &sql, &reference);
        let summary = LatencySummary::of(&mut latencies);
        if best.map_or(true, |(b, _)| summary.p95 < b.p95) {
            best = Some((summary, seconds));
        }
    }
    let (latency, seconds) = best.expect("reps ≥ 1");

    // Drain before reading counters: the gauge rows settle to 0 and
    // `connections_closed` becomes final.
    let outcome = server.shutdown(Duration::from_secs(10));
    assert!(outcome.drained, "wire bench listener failed to drain: {outcome:?}");
    let net = server.stats();
    let service = server.service();

    let templates: std::collections::HashSet<String> = sql
        .iter()
        .map(|q| qarith_sql::sql_fingerprint(q).expect("workload SQL fingerprints"))
        .collect();

    ServeBenchReport {
        schema_version: SCHEMA_VERSION,
        kind: "wire".to_string(),
        scale: config.scale.name().to_string(),
        seed: config.seed,
        epsilon: config.epsilon,
        clients: config.clients.max(1) as u64,
        passes: config.passes.max(1) as u64,
        mode: config.mode.name().to_string(),
        rate: if config.mode == LoadMode::Open { config.rate } else { 0.0 },
        reps: config.reps.max(1) as u64,
        db_tuples: db_stats.tuples as u64,
        db_num_nulls: db_stats.num_nulls as u64,
        db_digest,
        templates: templates.len() as u64,
        requests: requests_per_rep as u64,
        seconds,
        qps: requests_per_rep as f64 / seconds.max(1e-9),
        latency,
        service: pairs(&service.stats().as_pairs()),
        admission: pairs(&service.admission_stats().as_pairs()),
        cache: pairs(&service.cache_stats().as_pairs()),
        net: pairs(&net.as_pairs()),
        stages: stage_latencies(service),
        certainty_digest: format!("{:#018x}", digest.finish()),
    }
}

/// One timed repetition: every client on its own socket, returning
/// per-request latencies and the wall-clock seconds (the slowest
/// client's own clock, as in the in-process bench).
fn wire_timed_rep(
    config: &ServeBenchConfig,
    server: &NetServer,
    sql: &[String],
    reference: &[Vec<(String, u64, u64, u64)>],
) -> (Vec<f64>, f64) {
    let clients = config.clients.max(1);
    let passes = config.passes.max(1);
    let total = clients * passes * sql.len();
    let addr = server.local_addr();
    let barrier = Barrier::new(clients + 1);
    let next = AtomicUsize::new(0);
    let interval = if config.mode == LoadMode::Open {
        assert!(config.rate > 0.0, "open-loop mode needs a positive --rate");
        Duration::from_secs_f64(1.0 / config.rate)
    } else {
        Duration::ZERO
    };

    let mut all_latencies: Vec<f64> = Vec::with_capacity(total);
    let mut seconds = 0.0f64;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let (barrier, next) = (&barrier, &next);
                scope.spawn(move || {
                    // Connect before the barrier so the timed window
                    // measures serving, not TCP establishment.
                    let mut client = NetClient::connect(addr).expect("connect to wire bench");
                    barrier.wait();
                    let start = Instant::now();
                    let mut latencies = Vec::with_capacity(total / clients + 1);
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= total {
                            break;
                        }
                        let q = &sql[k % sql.len()];
                        let issued = match config.mode {
                            LoadMode::Closed => Instant::now(),
                            LoadMode::Open => {
                                // Request k is *scheduled* at
                                // start + k·interval; latency counts
                                // from the schedule, so falling behind
                                // shows up as latency (no coordinated
                                // omission).
                                let scheduled = start + interval * k as u32;
                                if let Some(wait) = scheduled.checked_duration_since(Instant::now())
                                {
                                    std::thread::sleep(wait);
                                }
                                scheduled
                            }
                        };
                        let decoded = client.query(q).expect("wire round trip");
                        latencies.push(issued.elapsed().as_secs_f64());
                        assert_eq!(
                            reply_bits(&decoded),
                            reference[k % sql.len()],
                            "wire reply drifted from the sequential in-process reference"
                        );
                    }
                    (latencies, start.elapsed().as_secs_f64())
                })
            })
            .collect();
        barrier.wait();
        for w in workers {
            let (latencies, elapsed) = w.join().expect("wire client thread");
            all_latencies.extend(latencies);
            seconds = seconds.max(elapsed);
        }
    });
    (all_latencies, seconds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{check_serve_baseline, run_serve_bench};
    use qarith_datagen::WorkloadScale;

    fn tiny_config() -> ServeBenchConfig {
        ServeBenchConfig {
            clients: 2,
            passes: 1,
            reps: 1,
            epsilon: 0.1,
            ..ServeBenchConfig::default_for(WorkloadScale::Tiny)
        }
    }

    #[test]
    fn wire_reports_round_trip_and_pin_the_serve_digest() {
        let config = tiny_config();
        let wire = run_wire_bench(&config);
        assert_eq!(wire.kind, "wire");
        // 2 clients × 1 pass × 10 workload SQL strings (9 distinct
        // templates — "Unfair Discount" appears in two families).
        assert_eq!(wire.requests, 20);
        // The net block closed its books: every request framed in got
        // exactly one reply framed out, and nothing is still open.
        let net: std::collections::HashMap<&str, u64> =
            wire.net.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        assert_eq!(net["frames_in"], wire.requests);
        assert_eq!(net["frames_out"], wire.requests);
        assert_eq!(net["protocol_errors"], 0);
        assert_eq!(net["connections_active"], 0);
        assert_eq!(net["connections_opened"], net["connections_closed"]);

        // The stages block saw every framed request cross the wire
        // stages, plus the reference pass on the in-process route.
        let stage = |name: &str| {
            wire.stages.iter().find(|s| s.stage == name).unwrap_or_else(|| {
                panic!("wire report without a `{name}` stage: {:?}", wire.stages)
            })
        };
        assert_eq!(stage("frame_decode").count, wire.requests);
        assert_eq!(stage("frame_encode").count, wire.requests);
        assert!(stage("total").count >= wire.requests, "reference pass also counts");

        let back = ServeBenchReport::from_json(&wire.to_json()).expect("parse own output");
        assert_eq!(back, wire);

        // Same config in-process: identical certainty digest — the
        // wire carries exactly the bits the service produced.
        let serve = run_serve_bench(&config);
        assert_eq!(serve.certainty_digest, wire.certainty_digest);

        // The gate refuses to compare a wire run against a serve
        // baseline: they measure different paths.
        let failures = check_serve_baseline(&wire, &serve, 0.25);
        assert!(failures.iter().any(|f| f.contains("kind")), "{failures:?}");
    }

    #[test]
    fn open_loop_wire_latency_counts_from_the_schedule() {
        let config = ServeBenchConfig { mode: LoadMode::Open, rate: 50.0, ..tiny_config() };
        let report = run_wire_bench(&config);
        assert_eq!(report.mode, "open");
        assert_eq!(report.rate, 50.0);
        // 20 requests at 50/s occupy ≥ 19 schedule intervals: the
        // arrival schedule, not completion, paces the run.
        assert!(
            report.seconds >= 19.0 / 50.0,
            "open loop finished faster than its own schedule ({}s)",
            report.seconds
        );
    }
}
