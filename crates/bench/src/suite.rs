//! The multi-scale workload suite behind the `bench_suite` binary.
//!
//! One [`SuiteConfig`] names a database scale, a seed, a set of query
//! families, and an ε ladder. [`run_suite`] drives every family's
//! queries through the three measurement pipelines —
//!
//! * `seq` — the paper's per-candidate AFPRAS loop
//!   ([`crate::Fig1Harness::run_epsilon`]);
//! * `batch` — PR 2's canonical-dedup + parallel fan-out engine
//!   (bit-identical estimates to `seq` for a fixed seed);
//! * `rewrite` — PR 3's simplification + independence-decomposition
//!   pipeline (ε-additive, not bit-identical) —
//!
//! recording wall time, fresh Monte-Carlo direction counts,
//! dedup/cache/factorization counters, and the full per-candidate
//! certainty vectors, then finishes with a warm-ν-cache multi-threaded
//! serving pass (repeated traffic over an already-hot cache — the
//! workload shape a long-running service sees, as opposed to the cold
//! batch latency the per-point table measures).
//!
//! The result serializes to the schema-versioned `BENCH_*.json`
//! trajectory ([`SuiteReport::to_json`]) and parses back
//! ([`SuiteReport::from_json`]); [`check_against_baseline`] is the CI
//! gate — any certainty drift, or a wall-time regression beyond the
//! tolerance, fails the `perf-smoke` job.
//!
//! Determinism contract: for a fixed config, every value in the report
//! except the `*_seconds` timings and the machine-dependent
//! `batch.threads` counter is reproducible bit for bit across runs and
//! hosts (see `crates/datagen/tests/determinism.rs` for the data side).
//! The baseline check exploits this: certainties are compared exactly,
//! only timings get a tolerance.

use std::sync::Arc;
use std::time::Instant;

use qarith_core::{BatchOptions, BatchStats, NuCache};
use qarith_datagen::{database_digest, QueryFamily, WorkloadScale, WorkloadSpec};

use crate::json::{parse, Json, JsonError};
use crate::{secs, BatchPoint, Fig1Harness};

/// Version of the `BENCH_*.json` schema. Bump when a field is renamed,
/// removed, or changes meaning; the baseline check refuses to compare
/// across versions.
///
/// **v2** (PR 5): documents carry a `kind` discriminator — `"suite"`
/// for [`SuiteReport`] (the only kind v1 had) and `"serve"` for the
/// serving-load reports of [`crate::serve`] (`serve_bench`), which add
/// p50/p95/p99 latency percentiles, throughput, and the
/// plan/shard/admission counter blocks.
///
/// **v3** (PR 7): adds the `"wire"` document kind — `serve_bench
/// --wire` runs the same serving load through real loopback sockets
/// and the framed protocol of `qarith-net`. Wire documents share the
/// serve-report shape and additionally carry a `net` counter block
/// ([`qarith_net::NetStats::as_pairs`] names). Serve documents gain
/// the same field as an empty object.
///
/// **v4** (PR 8): serve/wire documents carry a `stages` block — the
/// per-stage latency summaries (count, p50/p95/p99 in seconds, bucket
/// upper bounds from the `qarith-trace` histograms) of the run's full
/// lifetime, keyed by stage wire name. Informational, not gated: the
/// gated quantities stay the certainty digest and end-to-end p95.
///
/// **v4 addendum** (PR 9): a fourth document kind, `"kernel"` — the
/// sampling-kernel microbench of [`crate::kernel`] (`kernel_bench`),
/// gating the blocked kernel's hits digest, allocs-per-sample pin, and
/// directions/sec against `baselines/KERNEL_*.json`. Additive (no
/// existing document changes shape), so the version stays 4.
pub const SCHEMA_VERSION: u64 = 4;

/// The schema identifier stored in every report.
pub const SCHEMA_NAME: &str = "qarith-bench-suite";

/// The default ε ladder: coarse → fine, spanning a 25× direction-count
/// range (`m = ⌈ε⁻²⌉`: 100, 400, 2500).
pub fn default_epsilons() -> Vec<f64> {
    vec![0.10, 0.05, 0.02]
}

/// Configuration of one suite run.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Database scale.
    pub scale: WorkloadScale,
    /// Generation + sampling seed.
    pub seed: u64,
    /// Query families to run, in order.
    pub families: Vec<QueryFamily>,
    /// The ε ladder (each point runs all three pipelines).
    pub epsilons: Vec<f64>,
    /// Worker threads for the batch engine.
    pub threads: usize,
    /// Timed cold repetitions per point (fresh caches each rep); the
    /// recorded wall time is the **minimum** over them (the
    /// noise-robust estimator — scheduler interference only ever adds
    /// time). One additional untimed recording run per point feeds the
    /// shared caches and provides estimates/counters. Must be ≥ 1.
    pub reps: usize,
    /// Client threads of the serving pass (0 disables the pass).
    pub serving_threads: usize,
    /// Passes over the whole workload per serving client.
    pub serving_passes: usize,
}

impl SuiteConfig {
    /// The default configuration at a scale: all three families, the
    /// default ε ladder, 4 batch workers, a 4-client × 3-pass serving
    /// phase.
    pub fn default_for(scale: WorkloadScale) -> SuiteConfig {
        SuiteConfig {
            scale,
            seed: 2020,
            families: QueryFamily::all().to_vec(),
            epsilons: default_epsilons(),
            threads: 4,
            reps: 3,
            serving_threads: 4,
            serving_passes: 3,
        }
    }

    fn batch(&self) -> BatchOptions {
        BatchOptions { threads: self.threads, dedup: true }
    }
}

/// One pipeline's measurement of one query at one ε.
#[derive(Clone, Debug, PartialEq)]
pub struct PointReport {
    /// `"seq"`, `"batch"`, or `"rewrite"`.
    pub pipeline: String,
    /// Error level.
    pub epsilon: f64,
    /// Wall-clock seconds of the measurement phase.
    pub seconds: f64,
    /// Monte-Carlo directions actually sampled (certain candidates and
    /// dedup/cache-served estimates contribute 0).
    pub directions: u64,
    /// Batch accounting ([`BatchStats::as_pairs`] names); `None` for the
    /// sequential pipeline, which has no batch machinery.
    pub batch: Option<Vec<(String, u64)>>,
    /// Rewrite accounting ([`qarith_core::RewriteStats::as_pairs`]
    /// names); `None` unless the pipeline rewrites.
    pub rewrite: Option<Vec<(String, u64)>>,
    /// Per-candidate certainties, in candidate order.
    pub certainties: Vec<f64>,
}

/// One query's measurements across the ε ladder and pipelines.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryReport {
    /// Query display name.
    pub name: String,
    /// SQL text.
    pub sql: String,
    /// Candidates returned by the executor.
    pub candidates: u64,
    /// Thereof uncertain (needing measurement).
    pub uncertain: u64,
    /// Seconds spent generating candidates (once per query).
    pub candidate_seconds: f64,
    /// Measurements, grouped ε-major then pipeline (`seq`, `batch`,
    /// `rewrite`).
    pub points: Vec<PointReport>,
}

/// One family's queries.
#[derive(Clone, Debug, PartialEq)]
pub struct FamilyReport {
    /// Family name ([`QueryFamily::name`]).
    pub family: String,
    /// Query reports, in the family's fixed order.
    pub queries: Vec<QueryReport>,
}

/// The warm-cache multi-threaded serving pass.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingReport {
    /// The ε served (the ladder's finest).
    pub epsilon: f64,
    /// Concurrent client threads.
    pub client_threads: u64,
    /// Passes over the whole workload per client.
    pub passes: u64,
    /// Total query executions across clients and passes.
    pub queries: u64,
    /// Wall-clock seconds for the whole pass.
    pub seconds: f64,
    /// ν-cache counters after the pass ([`qarith_core::CacheStats`]).
    pub cache: Vec<(String, u64)>,
}

/// A full suite run: the machine-readable perf artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Scale name.
    pub scale: String,
    /// Seed.
    pub seed: u64,
    /// Batch worker threads configured.
    pub threads: u64,
    /// Timed repetitions per point (min-of-reps timing).
    pub reps: u64,
    /// The ε ladder.
    pub epsilons: Vec<f64>,
    /// Generated tuples.
    pub db_tuples: u64,
    /// Generated numerical nulls.
    pub db_num_nulls: u64,
    /// [`database_digest`] of the generated database, hex.
    pub db_digest: String,
    /// Per-family reports.
    pub families: Vec<FamilyReport>,
    /// The serving pass (absent when disabled).
    pub serving: Option<ServingReport>,
}

fn pairs_to_vec(pairs: &[(&'static str, u64)]) -> Vec<(String, u64)> {
    pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
}

fn fresh_directions(estimates: &[qarith_core::CertaintyEstimate]) -> u64 {
    estimates.iter().filter(|e| !e.cached).map(|e| e.samples as u64).sum()
}

fn batch_point_report(pipeline: &str, point: &BatchPoint, rewrites: bool) -> PointReport {
    let BatchStats { rewrite, .. } = point.stats;
    PointReport {
        pipeline: pipeline.to_string(),
        epsilon: point.epsilon,
        seconds: secs(point.time),
        directions: fresh_directions(&point.estimates),
        batch: Some(pairs_to_vec(&point.stats.as_pairs())),
        rewrite: rewrites.then(|| pairs_to_vec(&rewrite.as_pairs())),
        certainties: point.estimates.iter().map(|e| e.value).collect(),
    }
}

/// Runs the configured suite and collects the report.
///
/// Estimator invariants are asserted inline: batch estimates must be
/// bit-identical to sequential ones, rewritten estimates within 2ε of
/// them (the same checks `fig1 --rewrite` enforces).
pub fn run_suite(config: &SuiteConfig) -> SuiteReport {
    let sample_seed = config.seed ^ 0xF1616;
    let mut families = Vec::with_capacity(config.families.len());
    // Generate the database once (the spec's scale and seed are shared
    // by every family) and give each family's harness a clone — cloning
    // is a fraction of regeneration, which matters at the paper scale.
    let db = qarith_datagen::sales::sales_database(&config.scale.params(), config.seed);
    let db_stats = db.stats();
    let db_digest = format!("{:#018x}", database_digest(&db));
    let mut harnesses = Vec::with_capacity(config.families.len());
    for &family in &config.families {
        let spec = WorkloadSpec { scale: config.scale, family, seed: config.seed };
        let workload = qarith_datagen::Workload { spec, db: db.clone(), queries: family.queries() };
        let harness = Fig1Harness::from_workload(workload);
        harnesses.push((family, harness, Arc::new(NuCache::new()), Arc::new(NuCache::new())));
    }

    for (family, harness, batch_cache, rewrite_cache) in &harnesses {
        let mut queries = Vec::with_capacity(harness.queries.len());
        for (qi, q) in harness.queries.iter().enumerate() {
            let mut points = Vec::with_capacity(3 * config.epsilons.len());
            for &eps in &config.epsilons {
                // Cold timed repetitions: fresh per-rep caches, so every
                // rep measures the cold path; the recorded time is the
                // minimum (noise only ever adds). The batch/rewrite
                // recording runs afterwards feed the family-shared
                // caches (warm serving pass) and provide the recorded
                // counters — they may be partially cache-served, so
                // their times are never used. The sequential pipeline
                // has no cache to feed and is deterministic, so any
                // cold rep's estimates serve as its recording run.
                let mut seq_secs = f64::INFINITY;
                let mut batch_secs = f64::INFINITY;
                let mut rewrite_secs = f64::INFINITY;
                let mut seq_point = None;
                for _ in 0..config.reps.max(1) {
                    let cold_seq = harness.run_epsilon(qi, eps, sample_seed);
                    seq_secs = seq_secs.min(secs(cold_seq.time));
                    seq_point = Some(cold_seq);
                    let cold = harness.run_epsilon_batch(
                        qi,
                        eps,
                        sample_seed,
                        config.batch(),
                        Some(Arc::new(NuCache::new())),
                    );
                    batch_secs = batch_secs.min(secs(cold.time));
                    let cold_rw = harness.run_epsilon_rewritten(
                        qi,
                        eps,
                        sample_seed,
                        config.batch(),
                        Some(Arc::new(NuCache::new())),
                    );
                    rewrite_secs = rewrite_secs.min(secs(cold_rw.time));
                }
                let seq = seq_point.expect("reps ≥ 1");
                let batch = harness.run_epsilon_batch(
                    qi,
                    eps,
                    sample_seed,
                    config.batch(),
                    Some(batch_cache.clone()),
                );
                for (s, b) in seq.estimates.iter().zip(&batch.estimates) {
                    assert_eq!(
                        s.value.to_bits(),
                        b.value.to_bits(),
                        "batch must be bit-identical to sequential ({}/{}, ε = {eps})",
                        family.name(),
                        q.name
                    );
                }
                let rewritten = harness.run_epsilon_rewritten(
                    qi,
                    eps,
                    sample_seed,
                    config.batch(),
                    Some(rewrite_cache.clone()),
                );
                for (s, r) in seq.estimates.iter().zip(&rewritten.estimates) {
                    assert!(
                        (s.value - r.value).abs() <= 2.0 * eps + 1e-9,
                        "rewritten estimate outside 2ε of sequential ({}/{}, ε = {eps}: {} vs {})",
                        family.name(),
                        q.name,
                        r.value,
                        s.value
                    );
                }
                points.push(PointReport {
                    pipeline: "seq".into(),
                    epsilon: eps,
                    seconds: seq_secs,
                    directions: fresh_directions(&seq.estimates),
                    batch: None,
                    rewrite: None,
                    certainties: seq.estimates.iter().map(|e| e.value).collect(),
                });
                let mut batch_report = batch_point_report("batch", &batch, false);
                batch_report.seconds = batch_secs;
                points.push(batch_report);
                let mut rewrite_report = batch_point_report("rewrite", &rewritten, true);
                rewrite_report.seconds = rewrite_secs;
                points.push(rewrite_report);
            }
            queries.push(QueryReport {
                name: q.name.clone(),
                sql: q.sql.clone(),
                candidates: q.candidates.len() as u64,
                uncertain: harness.uncertain_count(qi) as u64,
                candidate_seconds: secs(q.candidate_time),
                points,
            });
        }
        families.push(FamilyReport { family: family.name().to_string(), queries });
    }

    let serving = (config.serving_threads > 0).then(|| serving_pass(config, &harnesses));

    let stats = db_stats;
    SuiteReport {
        schema_version: SCHEMA_VERSION,
        scale: config.scale.name().to_string(),
        seed: config.seed,
        threads: config.threads as u64,
        reps: config.reps.max(1) as u64,
        epsilons: config.epsilons.clone(),
        db_tuples: stats.tuples as u64,
        db_num_nulls: stats.num_nulls as u64,
        db_digest,
        families,
        serving,
    }
}

type FamilyHarness = (QueryFamily, Fig1Harness, Arc<NuCache>, Arc<NuCache>);

/// The warm-ν-cache serving phase: every canonical group is already
/// cached from the per-point batch runs, so this measures repeated-
/// traffic throughput — concurrent clients replaying the workload at
/// the finest ε, each with a single-threaded engine (concurrency comes
/// from the clients, as in a server handling parallel sessions).
fn serving_pass(config: &SuiteConfig, harnesses: &[FamilyHarness]) -> ServingReport {
    let eps = config.epsilons.iter().copied().fold(f64::INFINITY, f64::min);
    let sample_seed = config.seed ^ 0xF1616;
    let serve_batch = BatchOptions { threads: 1, dedup: true };
    let mut seconds = f64::INFINITY;
    // Like the per-point timings: repeat and keep the minimum (the cache
    // is warm from the measurement phase, so every rep serves hot).
    for _ in 0..config.reps.max(1) {
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..config.serving_threads {
                scope.spawn(|| {
                    for _ in 0..config.serving_passes {
                        for (_, harness, batch_cache, _) in harnesses {
                            for qi in 0..harness.queries.len() {
                                harness.run_epsilon_batch(
                                    qi,
                                    eps,
                                    sample_seed,
                                    serve_batch,
                                    Some(batch_cache.clone()),
                                );
                            }
                        }
                    }
                });
            }
        });
        seconds = seconds.min(secs(started.elapsed()));
    }
    let total_queries: usize = harnesses.iter().map(|(_, h, ..)| h.queries.len()).sum();
    let mut cache = [0u64; 3];
    for (_, _, batch_cache, _) in harnesses {
        for (i, (_, v)) in batch_cache.stats().as_pairs().iter().enumerate() {
            cache[i] += v;
        }
    }
    let names = ["hits", "misses", "entries"];
    ServingReport {
        epsilon: eps,
        client_threads: config.serving_threads as u64,
        passes: config.serving_passes as u64,
        queries: (config.serving_threads * config.serving_passes * total_queries) as u64,
        seconds,
        cache: names.iter().zip(cache).map(|(n, v)| ((*n).to_string(), v)).collect(),
    }
}

// ---------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------

fn counters_to_json(pairs: &[(String, u64)]) -> Json {
    Json::Obj(pairs.iter().map(|(k, v)| (k.clone(), Json::num_u64(*v))).collect())
}

fn counters_from_json(v: &Json, what: &str) -> Result<Vec<(String, u64)>, String> {
    match v {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("{what}.{k}: expected a counter"))
            })
            .collect(),
        _ => Err(format!("{what}: expected an object")),
    }
}

impl PointReport {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("pipeline".to_string(), Json::str(&self.pipeline)),
            ("epsilon".to_string(), Json::Num(self.epsilon)),
            ("seconds".to_string(), Json::Num(self.seconds)),
            ("directions".to_string(), Json::num_u64(self.directions)),
        ];
        if let Some(batch) = &self.batch {
            pairs.push(("batch".to_string(), counters_to_json(batch)));
        }
        if let Some(rewrite) = &self.rewrite {
            pairs.push(("rewrite".to_string(), counters_to_json(rewrite)));
        }
        pairs.push((
            "certainties".to_string(),
            Json::Arr(self.certainties.iter().map(|&c| Json::Num(c)).collect()),
        ));
        Json::Obj(pairs)
    }

    fn from_json(v: &Json) -> Result<PointReport, String> {
        Ok(PointReport {
            pipeline: req_str(v, "pipeline")?,
            epsilon: req_f64(v, "epsilon")?,
            seconds: req_f64(v, "seconds")?,
            directions: req_u64(v, "directions")?,
            batch: v.get("batch").map(|b| counters_from_json(b, "batch")).transpose()?,
            rewrite: v.get("rewrite").map(|r| counters_from_json(r, "rewrite")).transpose()?,
            certainties: req_f64_arr(v, "certainties")?,
        })
    }
}

impl QueryReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("sql", Json::str(&self.sql)),
            ("candidates", Json::num_u64(self.candidates)),
            ("uncertain", Json::num_u64(self.uncertain)),
            ("candidate_seconds", Json::Num(self.candidate_seconds)),
            ("points", Json::Arr(self.points.iter().map(PointReport::to_json).collect())),
        ])
    }

    fn from_json(v: &Json) -> Result<QueryReport, String> {
        Ok(QueryReport {
            name: req_str(v, "name")?,
            sql: req_str(v, "sql")?,
            candidates: req_u64(v, "candidates")?,
            uncertain: req_u64(v, "uncertain")?,
            candidate_seconds: req_f64(v, "candidate_seconds")?,
            points: req_arr(v, "points")?
                .iter()
                .map(PointReport::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl SuiteReport {
    /// Serializes to the pretty-printed `BENCH_*.json` document.
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            ("schema".to_string(), Json::str(SCHEMA_NAME)),
            ("schema_version".to_string(), Json::num_u64(self.schema_version)),
            ("kind".to_string(), Json::str("suite")),
            ("scale".to_string(), Json::str(&self.scale)),
            ("seed".to_string(), Json::num_u64(self.seed)),
            ("threads".to_string(), Json::num_u64(self.threads)),
            ("reps".to_string(), Json::num_u64(self.reps)),
            (
                "epsilons".to_string(),
                Json::Arr(self.epsilons.iter().map(|&e| Json::Num(e)).collect()),
            ),
            (
                "db".to_string(),
                Json::obj([
                    ("tuples", Json::num_u64(self.db_tuples)),
                    ("num_nulls", Json::num_u64(self.db_num_nulls)),
                    ("digest", Json::str(&self.db_digest)),
                ]),
            ),
            (
                "families".to_string(),
                Json::Arr(
                    self.families
                        .iter()
                        .map(|f| {
                            Json::obj([
                                ("family", Json::str(&f.family)),
                                (
                                    "queries",
                                    Json::Arr(f.queries.iter().map(QueryReport::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(s) = &self.serving {
            pairs.push((
                "serving".to_string(),
                Json::obj([
                    ("epsilon", Json::Num(s.epsilon)),
                    ("client_threads", Json::num_u64(s.client_threads)),
                    ("passes", Json::num_u64(s.passes)),
                    ("queries", Json::num_u64(s.queries)),
                    ("seconds", Json::Num(s.seconds)),
                    ("cache", counters_to_json(&s.cache)),
                ]),
            ));
        }
        Json::Obj(pairs).pretty()
    }

    /// Parses a document produced by [`SuiteReport::to_json`]. Rejects
    /// unknown schema names and future schema versions.
    pub fn from_json(text: &str) -> Result<SuiteReport, String> {
        let doc = parse(text).map_err(|e: JsonError| e.to_string())?;
        let schema = req_str(&doc, "schema")?;
        if schema != SCHEMA_NAME {
            return Err(format!("unknown schema `{schema}` (expected `{SCHEMA_NAME}`)"));
        }
        let schema_version = req_u64(&doc, "schema_version")?;
        if schema_version > SCHEMA_VERSION {
            return Err(format!(
                "schema version {schema_version} is newer than this binary's {SCHEMA_VERSION}"
            ));
        }
        // v1 documents predate the discriminator and are all suites.
        if let Some(kind) = doc.get("kind").and_then(Json::as_str) {
            if kind != "suite" {
                return Err(format!("document kind `{kind}` is not a suite report"));
            }
        }
        let db = doc.get("db").ok_or("missing field `db`")?;
        let families = req_arr(&doc, "families")?
            .iter()
            .map(|f| {
                Ok(FamilyReport {
                    family: req_str(f, "family")?,
                    queries: req_arr(f, "queries")?
                        .iter()
                        .map(QueryReport::from_json)
                        .collect::<Result<_, String>>()?,
                })
            })
            .collect::<Result<_, String>>()?;
        let serving = doc
            .get("serving")
            .map(|s| {
                Ok::<_, String>(ServingReport {
                    epsilon: req_f64(s, "epsilon")?,
                    client_threads: req_u64(s, "client_threads")?,
                    passes: req_u64(s, "passes")?,
                    queries: req_u64(s, "queries")?,
                    seconds: req_f64(s, "seconds")?,
                    cache: counters_from_json(s.get("cache").ok_or("missing `cache`")?, "cache")?,
                })
            })
            .transpose()?;
        Ok(SuiteReport {
            schema_version,
            scale: req_str(&doc, "scale")?,
            seed: req_u64(&doc, "seed")?,
            threads: req_u64(&doc, "threads")?,
            reps: req_u64(&doc, "reps")?,
            epsilons: req_f64_arr(&doc, "epsilons")?,
            db_tuples: req_u64(db, "tuples")?,
            db_num_nulls: req_u64(db, "num_nulls")?,
            db_digest: req_str(db, "digest")?,
            families,
            serving,
        })
    }

    /// Total measurement seconds of one pipeline across all families,
    /// queries, and ε points (the quantity the wall-time gate compares).
    pub fn total_seconds(&self, pipeline: &str) -> f64 {
        self.families
            .iter()
            .flat_map(|f| &f.queries)
            .flat_map(|q| &q.points)
            .filter(|p| p.pipeline == pipeline)
            .map(|p| p.seconds)
            .sum()
    }

    /// The pipelines present in the report, in first-appearance order.
    pub fn pipelines(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for p in self.families.iter().flat_map(|f| &f.queries).flat_map(|q| &q.points) {
            if !out.contains(&p.pipeline) {
                out.push(p.pipeline.clone());
            }
        }
        out
    }
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing integer field `{key}`"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number field `{key}`"))
}

fn req_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key).and_then(Json::as_arr).ok_or_else(|| format!("missing array field `{key}`"))
}

fn req_f64_arr(v: &Json, key: &str) -> Result<Vec<f64>, String> {
    req_arr(v, key)?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| format!("`{key}`: expected numbers")))
        .collect()
}

// ---------------------------------------------------------------------
// Baseline gate
// ---------------------------------------------------------------------

/// Compares a fresh report against a checked-in baseline. Returns the
/// list of failures (empty ⇒ gate passes).
///
/// * **Configuration** must match exactly: schema version, scale, seed,
///   ε ladder, families, queries, candidate/uncertain counts, database
///   digest. A mismatch means the two reports measure different things.
/// * **Certainties** must match bit for bit per (family, query,
///   pipeline, ε): the pipelines are deterministic under a fixed seed,
///   so *any* drift is a behavioral regression (or an intentional
///   change that must re-pin the baseline in the same commit).
/// * **Wall time** is gated per pipeline on the suite-wide total, with
///   the given relative tolerance (machine noise ≫ per-point noise; the
///   issue-level contract is "no >25 % regression").
/// * Counters (`directions`, the `batch` dedup/cache block, the
///   `rewrite` factorization block) are compared exactly, **except**
///   `batch.threads`, which is capped by the runner's available
///   parallelism and therefore machine-dependent. A counter block
///   present on only one side is a failure, and so is a serving pass
///   present on only one side.
pub fn check_against_baseline(
    fresh: &SuiteReport,
    baseline: &SuiteReport,
    time_tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut cfg = |name: &str, a: String, b: String| {
        if a != b {
            failures.push(format!("config mismatch: {name} is {a}, baseline has {b}"));
        }
    };
    cfg("schema_version", fresh.schema_version.to_string(), baseline.schema_version.to_string());
    cfg("scale", fresh.scale.clone(), baseline.scale.clone());
    cfg("seed", fresh.seed.to_string(), baseline.seed.to_string());
    cfg("threads", fresh.threads.to_string(), baseline.threads.to_string());
    cfg("reps", fresh.reps.to_string(), baseline.reps.to_string());
    cfg("epsilons", format!("{:?}", fresh.epsilons), format!("{:?}", baseline.epsilons));
    cfg("db.digest", fresh.db_digest.clone(), baseline.db_digest.clone());
    cfg("db.tuples", fresh.db_tuples.to_string(), baseline.db_tuples.to_string());
    if !failures.is_empty() {
        return failures;
    }

    if fresh.families.len() != baseline.families.len() {
        failures.push(format!(
            "family count changed: {} vs baseline {}",
            fresh.families.len(),
            baseline.families.len()
        ));
        return failures;
    }
    for (f, b) in fresh.families.iter().zip(&baseline.families) {
        if f.family != b.family || f.queries.len() != b.queries.len() {
            failures.push(format!(
                "family `{}` ({} queries) does not line up with baseline `{}` ({} queries)",
                f.family,
                f.queries.len(),
                b.family,
                b.queries.len()
            ));
            continue;
        }
        for (q, bq) in f.queries.iter().zip(&b.queries) {
            let ctx = format!("{}/{}", f.family, q.name);
            if q.name != bq.name || q.candidates != bq.candidates || q.uncertain != bq.uncertain {
                failures.push(format!(
                    "{ctx}: candidates {}/{} uncertain vs baseline {} `{}` {}/{}",
                    q.candidates, q.uncertain, bq.name, bq.name, bq.candidates, bq.uncertain
                ));
                continue;
            }
            if q.points.len() != bq.points.len() {
                failures.push(format!(
                    "{ctx}: {} points vs baseline {}",
                    q.points.len(),
                    bq.points.len()
                ));
                continue;
            }
            for (p, bp) in q.points.iter().zip(&bq.points) {
                let pctx = format!("{ctx} [{} ε={}]", p.pipeline, p.epsilon);
                if p.pipeline != bp.pipeline || p.epsilon != bp.epsilon {
                    failures.push(format!(
                        "{pctx}: point order differs from baseline [{} ε={}]",
                        bp.pipeline, bp.epsilon
                    ));
                    continue;
                }
                if p.certainties.len() != bp.certainties.len() {
                    failures.push(format!(
                        "{pctx}: {} certainties vs baseline {}",
                        p.certainties.len(),
                        bp.certainties.len()
                    ));
                    continue;
                }
                for (i, (c, bc)) in p.certainties.iter().zip(&bp.certainties).enumerate() {
                    if c.to_bits() != bc.to_bits() {
                        failures.push(format!(
                            "{pctx}: certainty drift at candidate {i}: {c} vs baseline {bc}"
                        ));
                        break;
                    }
                }
                if p.directions != bp.directions {
                    failures.push(format!(
                        "{pctx}: direction count changed: {} vs baseline {}",
                        p.directions, bp.directions
                    ));
                }
                // `threads` is capped by the runner's available
                // parallelism, so it is the one machine-dependent
                // counter; everything else is deterministic.
                compare_counters(&mut failures, &pctx, "batch", &p.batch, &bp.batch, &["threads"]);
                compare_counters(&mut failures, &pctx, "rewrite", &p.rewrite, &bp.rewrite, &[]);
            }
        }
    }

    for pipeline in baseline.pipelines() {
        let base = baseline.total_seconds(&pipeline);
        let now = fresh.total_seconds(&pipeline);
        if base > 0.0 && now > base * (1.0 + time_tolerance) {
            failures.push(format!(
                "pipeline `{pipeline}` wall time regressed: {now:.4}s vs baseline {base:.4}s \
                 (+{:.0}% > {:.0}% tolerance)",
                100.0 * (now / base - 1.0),
                100.0 * time_tolerance
            ));
        }
    }
    match (&fresh.serving, &baseline.serving) {
        (None, None) => {}
        (Some(s), Some(bs)) => {
            if s.client_threads != bs.client_threads || s.passes != bs.passes {
                failures.push(format!(
                    "serving config changed: {}×{} vs baseline {}×{}",
                    s.client_threads, s.passes, bs.client_threads, bs.passes
                ));
            }
            if bs.seconds > 0.0 && s.seconds > bs.seconds * (1.0 + time_tolerance) {
                failures.push(format!(
                    "serving pass wall time regressed: {:.4}s vs baseline {:.4}s \
                     (+{:.0}% > {:.0}% tolerance)",
                    s.seconds,
                    bs.seconds,
                    100.0 * (s.seconds / bs.seconds - 1.0),
                    100.0 * time_tolerance
                ));
            }
        }
        (s, bs) => failures.push(format!(
            "serving pass present on only one side (fresh: {}, baseline: {})",
            s.is_some(),
            bs.is_some()
        )),
    }
    failures
}

/// Counter-block comparison for the gate: exact equality modulo the
/// `skip`ped (machine-dependent) names; presence must agree.
fn compare_counters(
    failures: &mut Vec<String>,
    pctx: &str,
    what: &str,
    fresh: &Option<Vec<(String, u64)>>,
    baseline: &Option<Vec<(String, u64)>>,
    skip: &[&str],
) {
    let filtered = |v: &[(String, u64)]| -> Vec<(String, u64)> {
        v.iter().filter(|(k, _)| !skip.contains(&k.as_str())).cloned().collect()
    };
    match (fresh, baseline) {
        (None, None) => {}
        (Some(c), Some(bc)) => {
            if filtered(c) != filtered(bc) {
                failures.push(format!("{pctx}: {what} counters changed: {c:?} vs baseline {bc:?}"));
            }
        }
        (c, bc) => failures.push(format!(
            "{pctx}: {what} counter block present on only one side \
             (fresh: {}, baseline: {})",
            c.is_some(),
            bc.is_some()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> SuiteReport {
        SuiteReport {
            schema_version: SCHEMA_VERSION,
            scale: "tiny".into(),
            seed: 2020,
            threads: 4,
            reps: 3,
            epsilons: vec![0.1, 0.05],
            db_tuples: 200,
            db_num_nulls: 47,
            db_digest: "0x75dc0786674255e7".into(),
            families: vec![FamilyReport {
                family: "sales".into(),
                queries: vec![QueryReport {
                    name: "Q".into(),
                    sql: "SELECT …".into(),
                    candidates: 3,
                    uncertain: 2,
                    candidate_seconds: 0.001,
                    points: vec![
                        PointReport {
                            pipeline: "seq".into(),
                            epsilon: 0.1,
                            seconds: 0.5,
                            directions: 200,
                            batch: None,
                            rewrite: None,
                            certainties: vec![1.0, 0.5, 0.25],
                        },
                        PointReport {
                            pipeline: "batch".into(),
                            epsilon: 0.1,
                            seconds: 0.25,
                            directions: 100,
                            batch: Some(vec![("groups".into(), 1)]),
                            rewrite: Some(vec![("factors".into(), 2)]),
                            certainties: vec![1.0, 0.5, 0.25],
                        },
                    ],
                }],
            }],
            serving: Some(ServingReport {
                epsilon: 0.05,
                client_threads: 4,
                passes: 3,
                queries: 36,
                seconds: 0.75,
                cache: vec![("hits".into(), 30), ("misses".into(), 6), ("entries".into(), 6)],
            }),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = tiny_report();
        let text = report.to_json();
        let back = SuiteReport::from_json(&text).expect("parse own output");
        assert_eq!(back, report);
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let report = tiny_report();
        assert_eq!(check_against_baseline(&report, &report, 0.25), Vec::<String>::new());
    }

    #[test]
    fn certainty_drift_fails_the_gate() {
        let baseline = tiny_report();
        let mut fresh = baseline.clone();
        fresh.families[0].queries[0].points[0].certainties[1] = 0.5000001;
        let failures = check_against_baseline(&fresh, &baseline, 0.25);
        assert!(failures.iter().any(|f| f.contains("certainty drift")), "{failures:?}");
    }

    #[test]
    fn slow_run_fails_and_tolerated_run_passes() {
        let baseline = tiny_report();
        let mut fresh = baseline.clone();
        for p in &mut fresh.families[0].queries[0].points {
            p.seconds *= 1.2; // +20% < 25% tolerance
        }
        assert_eq!(check_against_baseline(&fresh, &baseline, 0.25), Vec::<String>::new());
        for p in &mut fresh.families[0].queries[0].points {
            p.seconds *= 1.2; // now +44%
        }
        let failures = check_against_baseline(&fresh, &baseline, 0.25);
        assert!(failures.iter().any(|f| f.contains("wall time regressed")), "{failures:?}");
    }

    #[test]
    fn config_mismatch_fails_fast() {
        let baseline = tiny_report();
        let mut fresh = baseline.clone();
        fresh.seed = 7;
        fresh.db_digest = "0xdead".into();
        let failures = check_against_baseline(&fresh, &baseline, 0.25);
        assert!(failures.iter().any(|f| f.contains("seed")), "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("db.digest")), "{failures:?}");
    }

    #[test]
    fn one_sided_serving_pass_fails_the_gate() {
        let baseline = tiny_report();
        let mut fresh = baseline.clone();
        fresh.serving = None;
        let failures = check_against_baseline(&fresh, &baseline, 0.25);
        assert!(failures.iter().any(|f| f.contains("serving pass present")), "{failures:?}");
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let mut report = tiny_report();
        report.schema_version = SCHEMA_VERSION + 1;
        let text = report.to_json();
        assert!(SuiteReport::from_json(&text).unwrap_err().contains("newer"));
    }
}
