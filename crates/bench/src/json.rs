//! A minimal JSON value type with a writer and a strict parser.
//!
//! The build environment is fully offline (no serde), and the bench
//! suite needs exactly one interchange format: the schema-versioned
//! `BENCH_*.json` perf trajectory that CI diffs against a checked-in
//! baseline. This module is the smallest JSON kernel that supports that
//! round trip:
//!
//! * numbers are written with Rust's shortest-round-trip `Display` for
//!   `f64` (integers stay integral), so `write → parse` reproduces every
//!   stored value **bit for bit** — the property the baseline's
//!   certainty-drift check rests on;
//! * objects preserve insertion order (they are association lists, not
//!   maps), so emitted files are deterministic and diff cleanly;
//! * the parser accepts exactly the constructs the writer emits (RFC
//!   8259 minus unicode escapes beyond `\uXXXX`, with no trailing
//!   garbage), and reports byte offsets on error.

use std::fmt;

/// A JSON value. Objects are ordered association lists.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (integers round-trip exactly up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from a `u64` (exact up to 2⁵³, plenty for the
    /// suite's counters).
    pub fn num_u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline — the
    /// checked-in-baseline format (stable under `git diff`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    debug_assert!(n.is_finite(), "JSON has no NaN/∞");
    // Rust's `Display` for f64 is shortest-round-trip and never uses
    // scientific notation, both of which RFC 8259 parsers accept.
    use fmt::Write;
    write!(out, "{n}").expect("write to String");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (no trailing non-whitespace).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-UTF-8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Basic-plane only: the writer never emits
                            // surrogate pairs (it writes raw UTF-8).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // slicing at char boundaries is safe via chars()).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number characters");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = Json::obj([
            ("name", Json::str("bench")),
            ("n", Json::num_u64(42)),
            ("pi", Json::Num(0.1 + 0.2)),
            ("neg", Json::Num(-1.5e-7)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::num_u64(1), Json::str("two"), Json::Arr(vec![])])),
            ("empty", Json::obj([] as [(&str, Json); 0])),
        ]);
        let text = doc.pretty();
        let back = parse(&text).expect("parse own output");
        assert_eq!(back, doc);
    }

    #[test]
    fn numbers_round_trip_bit_for_bit() {
        for bits in [0.1f64, 1.0 / 3.0, 2f64.powi(-40), 123456789.12345679, 0.0, 1e300, -3.5e-12] {
            let text = Json::Num(bits).pretty();
            let back = parse(&text).expect("number parses");
            assert_eq!(back.as_f64().unwrap().to_bits(), bits.to_bits(), "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" back\\slash tab\t control\u{1} ünïcode";
        let text = Json::str(s).pretty();
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let doc = parse("{\"a\": 3, \"b\": [\"x\"], \"c\": 2.5}").unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(doc.get("c").and_then(Json::as_u64), None, "2.5 is not integral");
        assert_eq!(doc.get("missing"), None);
    }
}
