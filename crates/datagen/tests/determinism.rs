//! Determinism contract of the workload generator: for a fixed
//! [`WorkloadSpec`] the generated database is bit-identical across runs,
//! threads, and (by pinning digests here) hosts and toolchain updates.
//! The CI perf baseline (`crates/bench/baselines/`) compares certainty
//! values bit-for-bit, which is only sound if the underlying data never
//! moves; these pins are the early tripwire.

use std::thread;

use qarith_datagen::sales::sales_database;
use qarith_datagen::{database_digest, QueryFamily, WorkloadScale, WorkloadSpec};

/// The seed every pinned digest below uses (the bench suite's default).
const SEED: u64 = 2020;

/// (scale, exact tuple count, exact numerical-null count, FNV-1a digest)
/// for seed 2020. If a change to the generator is *intentional*, re-pin
/// with `database_digest` and regenerate the bench baseline JSON in the
/// same PR — certainties will have moved too.
const PINS: [(WorkloadScale, usize, usize, u64); 3] = [
    (WorkloadScale::Tiny, 200, 47, 0x75dc0786674255e7),
    (WorkloadScale::Small, 2_000, 254, 0xde9b7def27dc8d3f),
    (WorkloadScale::Medium, 20_000, 1_399, 0x9660838d5dab48d9),
];

#[test]
fn pinned_counts_and_digests() {
    for (scale, tuples, num_nulls, digest) in PINS {
        let db = sales_database(&scale.params(), SEED);
        let stats = db.stats();
        assert_eq!(stats.tuples, tuples, "{} tuple count", scale.name());
        assert_eq!(stats.num_nulls, num_nulls, "{} null count", scale.name());
        assert_eq!(database_digest(&db), digest, "{} digest", scale.name());
    }
}

#[test]
fn spec_expected_tuples_matches_generation() {
    for (scale, tuples, ..) in PINS {
        let spec = WorkloadSpec { scale, family: QueryFamily::Sales, seed: SEED };
        assert_eq!(spec.expected_tuples(), tuples);
        assert_eq!(spec.build().db.stats().tuples, tuples);
    }
}

#[test]
fn generation_is_thread_independent() {
    // Generate the same spec concurrently from several threads and from
    // the main thread; every copy must digest identically. (The
    // generator is a value type seeded per call — this guards against
    // anyone ever threading global state through it.)
    for (scale, _, _, digest) in PINS {
        let handles: Vec<_> = (0..4)
            .map(|_| thread::spawn(move || database_digest(&sales_database(&scale.params(), SEED))))
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("generator thread"), digest, "{}", scale.name());
        }
    }
}

#[test]
fn distinct_seeds_and_scales_disagree() {
    let tiny = WorkloadScale::Tiny.params();
    assert_ne!(
        database_digest(&sales_database(&tiny, SEED)),
        database_digest(&sales_database(&tiny, SEED + 1)),
        "digest must be seed-sensitive"
    );
    let mut digests: Vec<u64> = PINS.iter().map(|p| p.3).collect();
    digests.sort();
    digests.dedup();
    assert_eq!(digests.len(), PINS.len(), "scales must not collide");
}
