//! Deterministic mutation streams over the §9 sales database.
//!
//! The serving layer's write path ([`qarith_types::WriteBatch`],
//! `QueryService::apply`) needs load the same way the read path does:
//! a reproducible stream of batches that exercises every op kind —
//! inserts with fresh marked nulls (an incomplete database *stays*
//! incomplete as it evolves), deletes of generated tuples, updates
//! that resolve a cell or re-null it. [`sales_mutations`] derives such
//! a stream from a generated sales database and a seed: equal
//! `(database, seed, shape)` inputs produce equal batches, so the
//! `serve_bench --mutate` CI gate replays the exact same write
//! workload every run.
//!
//! Every op is constructed to *apply* (never a no-op): inserts mint
//! ids/keys from a fresh range far above anything the generator
//! produced, and deletes/updates consume distinct existing tuples
//! tracked in a shadow working set. Callers can therefore predict the
//! serving counters exactly: applying the stream to the database it
//! was derived from yields `applied == total ops, noops == 0`.

use qarith_types::{Database, NumNullId, Value, WriteBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// First id/key index minted for inserted tuples: far above the serial
/// ids and null ids of any generated scale (the paper scale tops out
/// at 10^5 rows), and comfortably inside `u32` for fresh null ids.
pub const FRESH_ID_BASE: u32 = 1 << 20;

/// Shape of a mutation stream.
#[derive(Clone, Copy, Debug)]
pub struct MutationShape {
    /// Number of batches.
    pub batches: usize,
    /// Ops per batch.
    pub ops_per_batch: usize,
}

impl MutationShape {
    /// Total ops across the stream.
    pub fn total_ops(&self) -> usize {
        self.batches * self.ops_per_batch
    }
}

/// Derives a deterministic stream of write batches against the sales
/// schema from the database they will be applied to.
///
/// The op mix per batch (driven by the seeded RNG): `Orders` inserts
/// with a fresh id and a ~1-in-3 chance of a fresh marked-null
/// quantity, `Orders` deletes of still-present generated tuples, and
/// `Market` updates that replace a row's numerical columns (resolving
/// to concrete values or introducing a fresh null). Deletes and
/// updates draw from a shadow of the evolving relations, so replaying
/// the stream in order against `db` applies every op.
pub fn sales_mutations(db: &Database, seed: u64, shape: MutationShape) -> Vec<WriteBatch> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD31A_57A6);
    // Shadow working sets: the tuples still available to delete/update.
    let mut orders: Vec<Vec<Value>> = db
        .relation("Orders")
        .expect("sales database has Orders")
        .tuples()
        .iter()
        .map(|t| t.values().to_vec())
        .collect();
    let mut market: Vec<Vec<Value>> = db
        .relation("Market")
        .expect("sales database has Market")
        .tuples()
        .iter()
        .map(|t| t.values().to_vec())
        .collect();

    let mut next_fresh = FRESH_ID_BASE;
    let mut batches = Vec::with_capacity(shape.batches);
    for _ in 0..shape.batches {
        let mut batch = WriteBatch::new();
        for _ in 0..shape.ops_per_batch {
            match rng.gen_range(0u32..10) {
                // Insert a fresh order (40%). Fresh id ⇒ never a
                // duplicate under set semantics.
                0..=3 => {
                    let q = if rng.gen_range(0u32..3) == 0 {
                        let id = NumNullId(next_fresh);
                        next_fresh += 1;
                        Value::NumNull(id)
                    } else {
                        Value::num(rng.gen_range(1i64..50))
                    };
                    let id = next_fresh as i64;
                    next_fresh += 1;
                    let values = vec![
                        Value::int(id),
                        Value::int(rng.gen_range(0i64..orders.len().max(1) as i64)),
                        q,
                        Value::num(rng.gen_range(1i64..5)),
                    ];
                    orders.push(values.clone());
                    batch.insert("Orders", values);
                }
                // Delete a still-present order (30%).
                4..=6 if !orders.is_empty() => {
                    let k = rng.gen_range(0..orders.len());
                    batch.delete("Orders", orders.swap_remove(k));
                }
                // Update a market row's numerical columns in place
                // (30%): same segment key, new `rrp`/`dis` — possibly
                // resolving a null, possibly introducing a fresh one.
                _ if !market.is_empty() => {
                    let k = rng.gen_range(0..market.len());
                    let old = market[k].clone();
                    let rrp = if rng.gen_range(0u32..4) == 0 {
                        let id = NumNullId(next_fresh);
                        next_fresh += 1;
                        Value::NumNull(id)
                    } else {
                        Value::num(rng.gen_range(1i64..100))
                    };
                    let new = vec![old[0].clone(), rrp, Value::num(rng.gen_range(1i64..10))];
                    market[k] = new.clone();
                    batch.update("Market", old, new);
                }
                // Exhausted working sets (only reachable on toy
                // databases): fall back to a fresh insert.
                _ => {
                    let id = next_fresh as i64;
                    next_fresh += 1;
                    let values = vec![Value::int(id), Value::int(0), Value::num(1), Value::num(1)];
                    orders.push(values.clone());
                    batch.insert("Orders", values);
                }
            }
        }
        batches.push(batch);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sales::{sales_database, SalesScale};

    const SHAPE: MutationShape = MutationShape { batches: 8, ops_per_batch: 4 };

    #[test]
    fn deterministic_under_seed() {
        let db = sales_database(&SalesScale::tiny(), 2020);
        let a = sales_mutations(&db, 7, SHAPE);
        let b = sales_mutations(&db, 7, SHAPE);
        assert_eq!(a, b);
        let c = sales_mutations(&db, 8, SHAPE);
        assert_ne!(a, c);
    }

    #[test]
    fn every_op_applies_and_none_are_noops() {
        let mut db = sales_database(&SalesScale::tiny(), 2020);
        let stream = sales_mutations(&db, 7, SHAPE);
        assert_eq!(stream.len(), SHAPE.batches);
        let (mut applied, mut noops) = (0, 0);
        for batch in &stream {
            assert_eq!(batch.ops.len(), SHAPE.ops_per_batch);
            let summary = db.apply_batch(batch).expect("stream type-checks");
            applied += summary.applied;
            noops += summary.noops;
        }
        assert_eq!((applied, noops), (SHAPE.total_ops(), 0));
    }

    #[test]
    fn stream_mixes_op_kinds_and_mints_fresh_nulls() {
        let db = sales_database(&SalesScale::tiny(), 2020);
        let stream = sales_mutations(&db, 7, SHAPE);
        let ops: Vec<_> = stream.iter().flat_map(|b| b.ops.iter()).collect();
        let inserts =
            ops.iter().filter(|o| matches!(o, qarith_types::WriteOp::Insert { .. })).count();
        let deletes =
            ops.iter().filter(|o| matches!(o, qarith_types::WriteOp::Delete { .. })).count();
        let updates =
            ops.iter().filter(|o| matches!(o, qarith_types::WriteOp::Update { .. })).count();
        assert!(inserts > 0 && deletes > 0 && updates > 0, "{inserts}/{deletes}/{updates}");
        // Fresh nulls keep the database incomplete as it evolves, and
        // their ids never collide with generated ones.
        let fresh_nulls: Vec<u32> = ops
            .iter()
            .flat_map(|o| match o {
                qarith_types::WriteOp::Insert { values, .. }
                | qarith_types::WriteOp::Delete { values, .. } => values.iter(),
                qarith_types::WriteOp::Update { new, .. } => new.iter(),
            })
            .filter_map(|v| match v {
                Value::NumNull(NumNullId(id)) if *id >= FRESH_ID_BASE => Some(*id),
                _ => None,
            })
            .collect();
        assert!(!fresh_nulls.is_empty(), "stream must introduce fresh marked nulls");
    }

    #[test]
    fn digest_changes_with_every_batch() {
        let mut db = sales_database(&SalesScale::tiny(), 2020);
        let stream = sales_mutations(&db, 7, SHAPE);
        let mut digests = vec![crate::database_digest(&db)];
        for batch in &stream {
            db.apply_batch(batch).expect("applies");
            digests.push(crate::database_digest(&db));
        }
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), SHAPE.batches + 1, "every batch changes the database");
    }
}
