//! Multi-scale, multi-family workloads over the §9 sales schema.
//!
//! The paper evaluates one hand-picked trio of decision-support queries
//! at one scale. Related evaluations ("Querying Incomplete Numerical
//! Data", Console–Libkin–Peterfreund; "Counting Problems over Incomplete
//! Databases", Arenas–Barceló–Monet) sweep *families* of numerical
//! workloads over growing database sizes. This module is the equivalent
//! axis for qarith: a [`WorkloadSpec`] names a scale, a query family,
//! and a seed, and [`WorkloadSpec::build`] deterministically produces
//! the database plus the family's SQL queries.
//!
//! Families:
//!
//! * [`QueryFamily::Sales`] — the three §9 decision-support queries
//!   verbatim ([`crate::sales::paper_queries`]);
//! * [`QueryFamily::RangeMix`] — range/decision-support mixes whose
//!   WHERE clauses combine variable-disjoint range predicates, the shape
//!   the rewrite pipeline's independence decomposition (DESIGN.md
//!   "Rewrite subsystem") factorizes into low-dimensional exact pieces;
//! * [`QueryFamily::Division`] — §9 division-elimination shapes: after
//!   cross-multiplication (`a/b ≥ c ⇝ a ≥ c·b`) their ground formulas
//!   carry `zᵢ·zⱼ` leading monomials, the inputs the spherical exact
//!   evaluator (`qarith-core`'s `exact::sphere3d`) handles without
//!   sampling.
//!
//! Determinism contract: for a fixed spec, the generated database has
//! exactly [`WorkloadSpec::expected_tuples`] tuples and a reproducible
//! [`database_digest`] — independent of the thread, process, or host
//! that generates it. CI's perf baseline (see `crates/bench`) leans on
//! this: certainty values can be compared bit-for-bit across runs.

use qarith_types::Database;

use crate::sales::{paper_queries, sales_database, SalesScale};

/// Named database scales for workload generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadScale {
    /// ~200 tuples — unit tests and the checked-in CI perf baseline.
    Tiny,
    /// ~2K tuples — laptop-quick experiments.
    Small,
    /// ~20K tuples — CI perf jobs with headroom for cache/dedup effects.
    Medium,
    /// ~200K tuples — the paper's §9 scale.
    Paper,
}

impl WorkloadScale {
    /// The scale's generation parameters.
    pub fn params(&self) -> SalesScale {
        match self {
            WorkloadScale::Tiny => SalesScale::tiny(),
            WorkloadScale::Small => SalesScale::small(),
            WorkloadScale::Medium => SalesScale::medium(),
            WorkloadScale::Paper => SalesScale::paper(),
        }
    }

    /// Stable lowercase name (CLI argument and JSON field value).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadScale::Tiny => "tiny",
            WorkloadScale::Small => "small",
            WorkloadScale::Medium => "medium",
            WorkloadScale::Paper => "paper",
        }
    }

    /// Parses a CLI/JSON name produced by [`WorkloadScale::name`].
    pub fn parse(s: &str) -> Option<WorkloadScale> {
        match s {
            "tiny" => Some(WorkloadScale::Tiny),
            "small" => Some(WorkloadScale::Small),
            "medium" => Some(WorkloadScale::Medium),
            "paper" => Some(WorkloadScale::Paper),
            _ => None,
        }
    }

    /// All scales, ascending.
    pub fn all() -> [WorkloadScale; 4] {
        [WorkloadScale::Tiny, WorkloadScale::Small, WorkloadScale::Medium, WorkloadScale::Paper]
    }
}

/// A family of SQL queries over the sales schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryFamily {
    /// The paper's three §9 decision-support queries.
    Sales,
    /// Range/decision-support mixes with variable-disjoint predicates
    /// (independence-decomposition targets).
    RangeMix,
    /// Division-elimination shapes with `zᵢ·zⱼ` leading forms
    /// (`exact::sphere3d` targets).
    Division,
}

impl QueryFamily {
    /// Stable lowercase name (CLI argument and JSON field value).
    pub fn name(&self) -> &'static str {
        match self {
            QueryFamily::Sales => "sales",
            QueryFamily::RangeMix => "range",
            QueryFamily::Division => "division",
        }
    }

    /// Parses a CLI/JSON name produced by [`QueryFamily::name`].
    pub fn parse(s: &str) -> Option<QueryFamily> {
        match s {
            "sales" => Some(QueryFamily::Sales),
            "range" | "range-mix" | "rangemix" => Some(QueryFamily::RangeMix),
            "division" | "div" => Some(QueryFamily::Division),
            _ => None,
        }
    }

    /// All families, in reporting order.
    pub fn all() -> [QueryFamily; 3] {
        [QueryFamily::Sales, QueryFamily::RangeMix, QueryFamily::Division]
    }

    /// The paper sections this family exercises (documentation string,
    /// reproduced in DESIGN.md).
    pub fn paper_sections(&self) -> &'static str {
        match self {
            QueryFamily::Sales => "§9 (Figure 1 queries, verbatim reconstruction)",
            QueryFamily::RangeMix => "§8 asymptotic truth + independence decomposition",
            QueryFamily::Division => "§9 division elimination → monomial leading forms",
        }
    }

    /// The family's named SQL queries, in fixed order.
    pub fn queries(&self) -> Vec<WorkloadQuery> {
        match self {
            QueryFamily::Sales => paper_queries()
                .into_iter()
                .map(|(name, sql)| WorkloadQuery {
                    name: (*name).to_string(),
                    sql: (*sql).to_string(),
                })
                .collect(),
            QueryFamily::RangeMix => RANGE_MIX_QUERIES
                .iter()
                .map(|(name, sql)| WorkloadQuery {
                    name: (*name).to_string(),
                    sql: (*sql).to_string(),
                })
                .collect(),
            QueryFamily::Division => DIVISION_QUERIES
                .iter()
                .map(|(name, sql)| WorkloadQuery {
                    name: (*name).to_string(),
                    sql: (*sql).to_string(),
                })
                .collect(),
        }
    }
}

/// Range/decision-support mixes. Each WHERE clause combines predicates
/// over *disjoint* numerical columns, so ground formulas factor into
/// variable-disjoint components: 1-var range atoms (their thresholds
/// vanish asymptotically, Lemma 8.4) alongside the sales product forms.
/// All families stay inside the executor's conjunctive fragment —
/// disjunction enters ground formulas through multiple derivations per
/// candidate, not through `OR` in the WHERE clause.
const RANGE_MIX_QUERIES: [(&str, &str); 3] = [
    ("Premium Catalog", "SELECT P.id FROM Products P WHERE P.rrp >= 80 AND P.dis >= 0.9 LIMIT 25"),
    (
        "Margin Window",
        "SELECT P.seg FROM Products P, Market M \
         WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp AND M.dis >= 0.6 LIMIT 25",
    ),
    (
        "Bulk Bargain",
        "SELECT O.id FROM Orders O, Products P \
         WHERE P.id = O.pr AND O.q >= 10 AND O.dis <= 1.5 AND P.rrp >= 20 LIMIT 25",
    ),
];

/// Division-elimination shapes. Cross-multiplying `O.dis / O.q` against
/// a product of other attributes yields atoms whose top homogeneous
/// component is a `zᵢ·zⱼ` monomial — exactly the extended leading forms
/// `exact::sphere3d` evaluates by spherical arc/lune arithmetic when a
/// rewritten factor has ≤ 3 live nulls.
const DIVISION_QUERIES: [(&str, &str); 4] = [
    ("Unfair Discount", crate::sales::UNFAIR_DISCOUNT_SQL),
    ("Deep Discount Rate", "SELECT O.id FROM Orders O WHERE O.dis / O.q >= 0.8 LIMIT 25"),
    (
        "Rate Beats Market",
        "SELECT O.id FROM Orders O, Products P, Market M \
         WHERE P.id = O.pr AND P.seg = M.seg AND O.dis / O.q >= 0.9 * M.dis LIMIT 25",
    ),
    ("Effective Price Floor", "SELECT P.id FROM Products P WHERE P.rrp * P.dis >= 50 LIMIT 25"),
];

/// One named SQL query of a workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadQuery {
    /// Display name ("Premium Catalog", …).
    pub name: String,
    /// SQL text against the sales catalog.
    pub sql: String,
}

/// A fully specified workload: scale × family × seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Database scale.
    pub scale: WorkloadScale,
    /// Query family.
    pub family: QueryFamily,
    /// Generation seed (equal seeds ⇒ equal databases, bit for bit).
    pub seed: u64,
}

impl WorkloadSpec {
    /// The exact number of tuples [`WorkloadSpec::build`] generates —
    /// fixed by the scale alone, independent of seed and nulls.
    pub fn expected_tuples(&self) -> usize {
        self.scale.params().total_rows()
    }

    /// Stable display name, e.g. `sales@tiny#2020`.
    pub fn label(&self) -> String {
        format!("{}@{}#{}", self.family.name(), self.scale.name(), self.seed)
    }

    /// Generates the database and instantiates the family's queries.
    pub fn build(&self) -> Workload {
        let db = sales_database(&self.scale.params(), self.seed);
        debug_assert_eq!(db.stats().tuples, self.expected_tuples());
        Workload { spec: *self, queries: self.family.queries(), db }
    }
}

/// A built workload: the generated database plus the family's queries.
pub struct Workload {
    /// The spec this was built from.
    pub spec: WorkloadSpec,
    /// The generated sales database.
    pub db: Database,
    /// The family's queries, in fixed order.
    pub queries: Vec<WorkloadQuery>,
}

/// A stable 64-bit digest of a database's full contents (relation names,
/// schemas, and every tuple in insertion order), via FNV-1a over the
/// display forms. Independent of process, thread, and host — used by the
/// determinism tests and the CI perf baseline to pin generated data.
pub fn database_digest(db: &Database) -> u64 {
    let mut h = qarith_numeric::Fnv1a64::new();
    for rel in db.relations() {
        h.update(rel.schema().name().as_bytes());
        h.update(b"|");
        for col in rel.schema().columns() {
            h.update(format!("{}:{:?};", col.name(), col.sort()).as_bytes());
        }
        for t in rel.tuples() {
            h.update(format!("{t}\n").as_bytes());
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sales::sales_catalog;

    #[test]
    fn names_round_trip() {
        for s in WorkloadScale::all() {
            assert_eq!(WorkloadScale::parse(s.name()), Some(s));
        }
        for f in QueryFamily::all() {
            assert_eq!(QueryFamily::parse(f.name()), Some(f));
        }
        assert_eq!(WorkloadScale::parse("galactic"), None);
        assert_eq!(QueryFamily::parse("mystery"), None);
    }

    #[test]
    fn build_matches_expected_tuples() {
        let spec =
            WorkloadSpec { scale: WorkloadScale::Tiny, family: QueryFamily::RangeMix, seed: 7 };
        let w = spec.build();
        assert_eq!(w.db.stats().tuples, spec.expected_tuples());
        assert_eq!(w.queries.len(), 3);
    }

    #[test]
    fn families_are_nonempty_and_distinct() {
        for f in QueryFamily::all() {
            let qs = f.queries();
            assert!(qs.len() >= 2, "{} needs ≥ 2 queries for a family sweep", f.name());
            let mut names: Vec<_> = qs.iter().map(|q| q.name.clone()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), qs.len(), "duplicate query names in {}", f.name());
        }
    }

    #[test]
    fn all_family_queries_compile_against_the_catalog() {
        let catalog = sales_catalog();
        for f in QueryFamily::all() {
            for q in f.queries() {
                qarith_sql::compile(&q.sql, &catalog)
                    .unwrap_or_else(|e| panic!("{} / {}: {e}", f.name(), q.name));
            }
        }
    }

    #[test]
    fn digest_is_seed_sensitive() {
        let scale = WorkloadScale::Tiny.params();
        let a = database_digest(&sales_database(&scale, 1));
        let b = database_digest(&sales_database(&scale, 1));
        let c = database_digest(&sales_database(&scale, 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
