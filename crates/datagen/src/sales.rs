//! The §9 sales database and decision-support queries.
//!
//! Schema (verbatim from the paper):
//!
//! * `Products(id, seg, rrp, dis)` — product ids, market segment,
//!   recommended retail price, intended discount;
//! * `Orders(id, pr, q, dis)` — possible future orders: product id,
//!   quantity, extra discount (final discount is `dis/q`);
//! * `Market(seg, rrp, dis)` — best competing product per segment.
//!
//! The paper's printed SQL contains obvious typos (`M.id` for a relation
//! declared without an `id` column; a missing operator in the third
//! query). The constants below are the minimal faithful reconstructions;
//! EXPERIMENTS.md documents each deviation.

use qarith_types::{Catalog, Column, Database, RelationSchema};

use crate::generator::{ColumnGen, ColumnSpec, Generator, TableSpec};

/// Scale knobs for the sales database.
#[derive(Clone, Debug)]
pub struct SalesScale {
    /// Rows in `Products`.
    pub products: usize,
    /// Rows in `Orders`.
    pub orders: usize,
    /// Rows in `Market` (one per segment).
    pub markets: usize,
    /// Number of distinct segments used by `Products`.
    pub segments: usize,
    /// Null probability for each numerical column of `Products`/`Orders`.
    pub null_rate: f64,
    /// Null probability for the numerical columns of `Market`. The
    /// paper's narrative has competition data "populated by an
    /// (automated) web extraction algorithm, leading to a high chance of
    /// incomplete data", so this defaults higher than `null_rate`.
    pub market_null_rate: f64,
}

impl SalesScale {
    /// The paper's scale: "about 200K tuples, with null values".
    pub fn paper() -> SalesScale {
        SalesScale {
            products: 100_000,
            orders: 99_000,
            markets: 1_000,
            segments: 1_000,
            null_rate: 0.02,
            market_null_rate: 0.25,
        }
    }

    /// A laptop-friendly scale for examples (~2K tuples).
    pub fn small() -> SalesScale {
        SalesScale {
            products: 1_000,
            orders: 900,
            markets: 100,
            segments: 100,
            null_rate: 0.05,
            market_null_rate: 0.25,
        }
    }

    /// A CI-friendly intermediate scale (~20K tuples) between
    /// [`SalesScale::small`] and the paper's 200K: large enough that
    /// dedup/cache effects dominate noise, small enough for a perf job.
    pub fn medium() -> SalesScale {
        SalesScale {
            products: 10_000,
            orders: 9_500,
            markets: 500,
            segments: 500,
            null_rate: 0.03,
            market_null_rate: 0.25,
        }
    }

    /// A test scale (~200 tuples, higher null rate to exercise nulls).
    pub fn tiny() -> SalesScale {
        SalesScale {
            products: 100,
            orders: 80,
            markets: 20,
            segments: 20,
            null_rate: 0.1,
            market_null_rate: 0.3,
        }
    }

    /// Total rows.
    pub fn total_rows(&self) -> usize {
        self.products + self.orders + self.markets
    }
}

/// The sales catalog (schemas only).
pub fn sales_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add(
        RelationSchema::new(
            "Products",
            vec![Column::base("id"), Column::base("seg"), Column::num("rrp"), Column::num("dis")],
        )
        .unwrap(),
    )
    .unwrap();
    cat.add(
        RelationSchema::new(
            "Orders",
            vec![Column::base("id"), Column::base("pr"), Column::num("q"), Column::num("dis")],
        )
        .unwrap(),
    )
    .unwrap();
    cat.add(
        RelationSchema::new(
            "Market",
            vec![Column::base("seg"), Column::num("rrp"), Column::num("dis")],
        )
        .unwrap(),
    )
    .unwrap();
    cat
}

/// Generates the sales database at a given scale, deterministically.
pub fn sales_database(scale: &SalesScale, seed: u64) -> Database {
    let nr = scale.null_rate;
    let mnr = scale.market_null_rate;
    let specs = [
        TableSpec {
            name: "Products".into(),
            columns: vec![
                ColumnSpec::new("id", ColumnGen::SerialInt { start: 0 }),
                ColumnSpec::new(
                    "seg",
                    ColumnGen::StrPool { prefix: "seg".into(), count: scale.segments },
                ),
                ColumnSpec::nullable(
                    "rrp",
                    ColumnGen::NumDecimal { lo: 1.0, hi: 100.0, scale: 2 },
                    nr,
                ),
                ColumnSpec::nullable(
                    "dis",
                    ColumnGen::NumDecimal { lo: 0.5, hi: 0.95, scale: 2 },
                    nr,
                ),
            ],
            rows: scale.products,
        },
        TableSpec {
            name: "Orders".into(),
            columns: vec![
                ColumnSpec::new("id", ColumnGen::SerialInt { start: 0 }),
                ColumnSpec::new("pr", ColumnGen::IntUniform { lo: 0, hi: scale.products as i64 }),
                ColumnSpec::nullable("q", ColumnGen::NumInt { lo: 1, hi: 50 }, nr),
                ColumnSpec::nullable(
                    "dis",
                    ColumnGen::NumDecimal { lo: 0.05, hi: 5.0, scale: 2 },
                    nr,
                ),
            ],
            rows: scale.orders,
        },
        TableSpec {
            name: "Market".into(),
            columns: vec![
                // One market row per segment; Products draw from the same
                // segment pool, so joins on seg are selective.
                ColumnSpec::new("seg", ColumnGen::StrSerial { prefix: "seg".into() }),
                ColumnSpec::nullable(
                    "rrp",
                    ColumnGen::NumDecimal { lo: 1.0, hi: 100.0, scale: 2 },
                    mnr,
                ),
                ColumnSpec::nullable(
                    "dis",
                    ColumnGen::NumDecimal { lo: 0.5, hi: 0.95, scale: 2 },
                    mnr,
                ),
            ],
            rows: scale.markets,
        },
    ];
    Generator::new(seed).database(&specs)
}

/// §9 "Competitive Advantage": market segments where the company's
/// discounted price undercuts the competition. Verbatim from the paper.
pub const COMPETITIVE_ADVANTAGE_SQL: &str = "SELECT P.seg \
     FROM Products P, Market M \
     WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis \
     LIMIT 25";

/// §9 "Never Knowingly Undersold": products selling below half the best
/// market price. Two reconstructions of the paper's garbled print
/// (`M.id` for a relation with no `id` column): the effective price of a
/// product through one of **its** orders (`P.id = O.pr`; without this
/// join the query is trivially satisfied by whichever order anywhere in
/// the database has the deepest discount) against half the market's
/// discounted price.
pub const NEVER_UNDERSOLD_SQL: &str = "SELECT P.id \
     FROM Products P, Orders O, Market M \
     WHERE P.id = O.pr AND P.seg = M.seg \
       AND P.rrp * P.dis * (O.q / O.dis) <= 0.5 * M.rrp * M.dis \
     LIMIT 25";

/// §9 "Unfair Discount": orders whose discount is at least 60% above the
/// intended campaign discount. (The paper's print drops an operator and
/// references `M.id`; reconstructed per its prose: final order discount
/// is `dis/q`, compared against `1.6 ×` the product's intended discount,
/// with the market joined on the product's segment.)
pub const UNFAIR_DISCOUNT_SQL: &str = "SELECT O.id \
     FROM Products P, Orders O, Market M \
     WHERE P.id = O.pr AND P.seg = M.seg AND O.dis / O.q >= 1.6 * P.dis \
     LIMIT 25";

/// The three §9 queries, named.
pub fn paper_queries() -> [(&'static str, &'static str); 3] {
    [
        ("Competitive Advantage", COMPETITIVE_ADVANTAGE_SQL),
        ("Never Knowingly Undersold", NEVER_UNDERSOLD_SQL),
        ("Unfair Discount", UNFAIR_DISCOUNT_SQL),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_database_shape() {
        let scale = SalesScale::tiny();
        let db = sales_database(&scale, 42);
        let stats = db.stats();
        assert_eq!(stats.relations, 3);
        assert_eq!(stats.tuples, scale.total_rows());
        assert!(stats.num_nulls > 0, "null rate must produce numerical nulls");
        assert_eq!(stats.base_nulls, 0, "sales schema nulls are numerical only");
    }

    #[test]
    fn catalog_matches_generated_schemas() {
        let cat = sales_catalog();
        let db = sales_database(&SalesScale::tiny(), 1);
        for rel in db.relations() {
            let declared = cat.get(rel.schema().name()).expect("declared");
            assert_eq!(declared, rel.schema());
        }
    }

    #[test]
    fn deterministic() {
        let a = sales_database(&SalesScale::tiny(), 9);
        let b = sales_database(&SalesScale::tiny(), 9);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.relation("Products").unwrap().tuples(),
            b.relation("Products").unwrap().tuples()
        );
    }

    #[test]
    fn market_segments_are_unique_keys() {
        let db = sales_database(&SalesScale::tiny(), 5);
        let m = db.relation("Market").unwrap();
        let mut segs: Vec<String> = m.tuples().iter().map(|t| format!("{}", t.get(0))).collect();
        let before = segs.len();
        segs.sort();
        segs.dedup();
        assert_eq!(segs.len(), before);
    }
}
