use qarith_numeric::Rational;
use qarith_types::{
    BaseNullId, Column, Database, NumNullId, Relation, RelationSchema, Sort, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Value generator for one column.
#[derive(Clone, Debug)]
pub enum ColumnGen {
    /// Sequential base-sort integers starting at `start` (surrogate keys).
    SerialInt {
        /// First value.
        start: i64,
    },
    /// Uniform base-sort integer in `[lo, hi)` — e.g. foreign keys into a
    /// serial column.
    IntUniform {
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
    /// Base-sort string drawn uniformly from `prefix0 … prefix{count−1}`
    /// (categorical columns such as market segments).
    StrPool {
        /// Common prefix.
        prefix: String,
        /// Pool size.
        count: usize,
    },
    /// Sequential base-sort strings `prefix0, prefix1, …` (unique keys
    /// such as one market row per segment).
    StrSerial {
        /// Common prefix.
        prefix: String,
    },
    /// Numerical decimal uniform in `[lo, hi]`, rounded to `scale`
    /// fractional digits (exact rationals with denominator `10^scale`).
    NumDecimal {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Fractional digits.
        scale: u32,
    },
    /// Numerical integer uniform in `[lo, hi)`.
    NumInt {
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
}

impl ColumnGen {
    fn sort(&self) -> Sort {
        match self {
            ColumnGen::SerialInt { .. }
            | ColumnGen::IntUniform { .. }
            | ColumnGen::StrPool { .. }
            | ColumnGen::StrSerial { .. } => Sort::Base,
            ColumnGen::NumDecimal { .. } | ColumnGen::NumInt { .. } => Sort::Num,
        }
    }
}

/// One column: name, generator, and null probability.
#[derive(Clone, Debug)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Value generator (determines the sort).
    pub gen: ColumnGen,
    /// Probability that a cell is a fresh marked null instead of a value.
    pub null_rate: f64,
}

impl ColumnSpec {
    /// A never-null column.
    pub fn new(name: &str, gen: ColumnGen) -> ColumnSpec {
        ColumnSpec { name: name.to_string(), gen, null_rate: 0.0 }
    }

    /// A column with the given null probability.
    pub fn nullable(name: &str, gen: ColumnGen, null_rate: f64) -> ColumnSpec {
        ColumnSpec { name: name.to_string(), gen, null_rate }
    }
}

/// One table: name, columns, cardinality.
#[derive(Clone, Debug)]
pub struct TableSpec {
    /// Relation name.
    pub name: String,
    /// Columns.
    pub columns: Vec<ColumnSpec>,
    /// Number of rows to generate.
    pub rows: usize,
}

/// The generator: a seeded RNG plus global null-id allocators (marked
/// nulls are unique across the whole database, as in the model).
pub struct Generator {
    rng: StdRng,
    next_base_null: u32,
    next_num_null: u32,
}

impl Generator {
    /// A generator with the given seed. Equal seeds produce equal
    /// databases.
    pub fn new(seed: u64) -> Generator {
        Generator { rng: StdRng::seed_from_u64(seed), next_base_null: 0, next_num_null: 0 }
    }

    /// Number of numerical nulls allocated so far.
    pub fn num_nulls_allocated(&self) -> u32 {
        self.next_num_null
    }

    /// Generates a full database from table specs.
    pub fn database(&mut self, specs: &[TableSpec]) -> Database {
        let mut db = Database::new();
        for spec in specs {
            let rel = self.table(spec);
            db.add_relation(rel).expect("unique table names in specs");
        }
        db
    }

    /// Generates one relation.
    pub fn table(&mut self, spec: &TableSpec) -> Relation {
        let columns: Vec<Column> = spec
            .columns
            .iter()
            .map(|c| match c.gen.sort() {
                Sort::Base => Column::base(&c.name),
                Sort::Num => Column::num(&c.name),
            })
            .collect();
        let schema = RelationSchema::new(&spec.name, columns).expect("unique column names");
        let mut rel = Relation::empty(schema);
        for row in 0..spec.rows {
            let values: Vec<Value> = spec.columns.iter().map(|c| self.cell(c, row)).collect();
            rel.insert(qarith_types::Tuple::new(values)).expect("generated tuples type-check");
        }
        rel
    }

    fn cell(&mut self, spec: &ColumnSpec, row: usize) -> Value {
        if spec.null_rate > 0.0 && self.rng.gen::<f64>() < spec.null_rate {
            return match spec.gen.sort() {
                Sort::Base => {
                    let id = BaseNullId(self.next_base_null);
                    self.next_base_null += 1;
                    Value::BaseNull(id)
                }
                Sort::Num => {
                    let id = NumNullId(self.next_num_null);
                    self.next_num_null += 1;
                    Value::NumNull(id)
                }
            };
        }
        match &spec.gen {
            ColumnGen::SerialInt { start } => Value::int(start + row as i64),
            ColumnGen::IntUniform { lo, hi } => Value::int(self.rng.gen_range(*lo..*hi)),
            ColumnGen::StrPool { prefix, count } => {
                let k = self.rng.gen_range(0..*count);
                Value::str(&format!("{prefix}{k}"))
            }
            ColumnGen::StrSerial { prefix } => Value::str(&format!("{prefix}{row}")),
            ColumnGen::NumDecimal { lo, hi, scale } => {
                let pow = 10i128.pow(*scale);
                let x: f64 = self.rng.gen_range(*lo..=*hi);
                let scaled = (x * pow as f64).round() as i128;
                Value::Num(Rational::new(scaled, pow))
            }
            ColumnGen::NumInt { lo, hi } => {
                Value::Num(Rational::from_int(self.rng.gen_range(*lo..*hi)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TableSpec {
        TableSpec {
            name: "T".into(),
            columns: vec![
                ColumnSpec::new("id", ColumnGen::SerialInt { start: 0 }),
                ColumnSpec::new("seg", ColumnGen::StrPool { prefix: "s".into(), count: 3 }),
                ColumnSpec::nullable(
                    "price",
                    ColumnGen::NumDecimal { lo: 1.0, hi: 10.0, scale: 2 },
                    0.3,
                ),
            ],
            rows: 200,
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Generator::new(7).table(&spec());
        let b = Generator::new(7).table(&spec());
        assert_eq!(a.tuples(), b.tuples());
        let c = Generator::new(8).table(&spec());
        assert_ne!(a.tuples(), c.tuples());
    }

    #[test]
    fn serial_columns_are_sequential() {
        let rel = Generator::new(1).table(&spec());
        for (i, t) in rel.tuples().iter().enumerate() {
            assert_eq!(t.get(0), &Value::int(i as i64));
        }
    }

    #[test]
    fn null_rate_is_respected_and_ids_unique() {
        let rel = Generator::new(2).table(&spec());
        let nulls: Vec<_> = rel
            .tuples()
            .iter()
            .filter_map(|t| match t.get(2) {
                Value::NumNull(id) => Some(*id),
                _ => None,
            })
            .collect();
        // ~30% of 200 ± noise.
        assert!(nulls.len() > 30 && nulls.len() < 90, "null count {}", nulls.len());
        let mut dedup = nulls.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), nulls.len(), "null ids must be unique");
    }

    #[test]
    fn decimals_have_bounded_denominator() {
        let rel = Generator::new(3).table(&spec());
        for t in rel.tuples() {
            if let Value::Num(r) = t.get(2) {
                assert!(r.denom() <= 100, "scale-2 decimal, got {r}");
                assert!(*r >= Rational::from_int(1) && *r <= Rational::from_int(10));
            }
        }
    }

    #[test]
    fn database_generation_spans_tables() {
        let mut g = Generator::new(4);
        let db = g.database(&[
            spec(),
            TableSpec {
                name: "U".into(),
                columns: vec![ColumnSpec::new("k", ColumnGen::StrSerial { prefix: "k".into() })],
                rows: 10,
            },
        ]);
        assert_eq!(db.relations().len(), 2);
        assert_eq!(db.relation("U").unwrap().len(), 10);
        // StrSerial yields unique keys.
        assert_eq!(db.relation("U").unwrap().tuples()[3].get(0), &Value::str("k3"));
    }

    #[test]
    fn pool_strings_stay_in_pool() {
        let rel = Generator::new(5).table(&spec());
        for t in rel.tuples() {
            if let Value::Base(b) = t.get(1) {
                let s = format!("{b}");
                assert!(s == "\"s0\"" || s == "\"s1\"" || s == "\"s2\"", "unexpected segment {s}");
            }
        }
    }
}
