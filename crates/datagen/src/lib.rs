//! Seeded synthetic data generation (the §9 evaluation's data side).
//!
//! Layering: above `qarith-types`/`qarith-sql`, below `qarith-bench`
//! (whose suite and serving load replay the workloads defined here).
//!
//! The paper's §9 evaluation uses DataFiller ("generate random data from
//! database schema") to build a ~200K-tuple sales database with nulls,
//! then replaces SQL `NULL`s with distinct markers to obtain marked
//! nulls. This crate is the equivalent generator for the qarith data
//! model: declarative per-column value generators with per-column null
//! probabilities, deterministic under a seed, allocating globally-unique
//! marked-null ids.
//!
//! [`sales`] builds the paper's exact schema (`Products`, `Orders`,
//! `Market`) at configurable scales, along with the three §9
//! decision-support queries as SQL text. [`workload`] spans the
//! scale × query-family grid on top of it: a [`workload::WorkloadSpec`]
//! deterministically names a database plus a family of SQL queries, the
//! unit the `bench_suite` driver (crate `qarith-bench`) measures and
//! the CI perf baseline pins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
pub mod mutations;
pub mod sales;
pub mod workload;

pub use generator::{ColumnGen, ColumnSpec, Generator, TableSpec};
pub use workload::{
    database_digest, QueryFamily, Workload, WorkloadQuery, WorkloadScale, WorkloadSpec,
};
