//! The bounded slow-query log: a mutex-guarded ring buffer of
//! structured records for every request whose total time crossed the
//! capture threshold, dumpable as JSON (`GET /slow`).
//!
//! The ring holds the most recent `capacity` records; older ones are
//! evicted FIFO. The mutex (`ring.lock`, declared as the innermost
//! class in `analyze.toml`'s lock hierarchy) is held only for a push
//! or a copy-out — never across service calls or I/O. This module is
//! on the analyzer's request path, so it is written panic-free: no
//! unwraps, no indexing; a poisoned mutex is recovered with
//! `into_inner` (the ring holds plain data, always valid).
//!
//! The JSON encoder is hand-rolled (this crate has zero dependencies):
//! objects with string, finite-float, and integer fields only, with
//! standard escaping for the fingerprint strings.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::{RequestId, Stage};

/// One captured slow query: identity, shape, and the per-stage
/// breakdown. `stage_nanos` is indexed by [`Stage::index`].
#[derive(Clone, Debug, PartialEq)]
pub struct SlowRecord {
    /// The request id minted at service entry.
    pub id: RequestId,
    /// The plan-cache fingerprint of the SQL (empty when the request
    /// failed before fingerprinting).
    pub fingerprint: String,
    /// The ε the service measured under.
    pub epsilon: f64,
    /// Which entry point served the request (`"inproc"` or `"wire"`).
    pub route: &'static str,
    /// Accumulated nanoseconds per stage, in [`Stage::ALL`] order.
    pub stage_nanos: [u64; Stage::COUNT],
    /// End-to-end request nanoseconds.
    pub total_nanos: u64,
}

impl SlowRecord {
    /// The top-level JSON field names of one record, in emission
    /// order — mirrored by the EXPERIMENTS.md slow-log table (enforced
    /// by `tests/stats_docs.rs`).
    pub const JSON_FIELDS: [&'static str; 6] =
        ["request_id", "fingerprint", "epsilon", "route", "stages", "total_nanos"];

    /// The record as one JSON object. Stages with zero accumulated
    /// time are omitted from `stages`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"request_id\":\"{}\"", self.id);
        let _ = write!(out, ",\"fingerprint\":\"{}\"", escape(&self.fingerprint));
        let _ = write!(out, ",\"epsilon\":{}", finite(self.epsilon));
        let _ = write!(out, ",\"route\":\"{}\"", escape(self.route));
        out.push_str(",\"stages\":{");
        let mut first = true;
        for (stage, nanos) in Stage::ALL.iter().zip(self.stage_nanos.iter()) {
            if *nanos == 0 || *stage == Stage::Total {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", stage.name(), nanos);
        }
        out.push('}');
        let _ = write!(out, ",\"total_nanos\":{}}}", self.total_nanos);
        out
    }
}

/// Formats a float for JSON, mapping non-finite values to `null`
/// (JSON has no NaN/Infinity).
fn finite(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// JSON string escaping: quote, backslash, and control characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The bounded ring of [`SlowRecord`]s plus the capture threshold.
#[derive(Debug)]
pub struct SlowLog {
    ring: Mutex<VecDeque<SlowRecord>>,
    capacity: usize,
    threshold_nanos: AtomicU64,
}

impl SlowLog {
    /// An empty ring retaining at most `capacity` records (minimum 1),
    /// with capture disabled (threshold 0).
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            threshold_nanos: AtomicU64::new(0),
        }
    }

    /// Sets the capture threshold in nanoseconds (0 disables capture).
    pub fn set_threshold(&self, nanos: u64) {
        self.threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The current capture threshold in nanoseconds.
    pub fn threshold(&self) -> u64 {
        self.threshold_nanos.load(Ordering::Relaxed)
    }

    /// Recovers the ring guard even if a holder panicked: the ring is
    /// plain data, valid at every point the lock can be observed.
    fn guard(&self) -> MutexGuard<'_, VecDeque<SlowRecord>> {
        match self.ring.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends a record, evicting the oldest beyond capacity.
    pub fn push(&self, record: SlowRecord) {
        let mut ring = self.guard();
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// A copy of the retained records, oldest first.
    pub fn records(&self) -> Vec<SlowRecord> {
        self.guard().iter().cloned().collect()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring as a JSON array, oldest record first.
    pub fn to_json(&self) -> String {
        let records = self.records();
        let mut out = String::from("[");
        for (i, record) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&record.to_json());
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, total: u64) -> SlowRecord {
        let mut stage_nanos = [0; Stage::COUNT];
        if let Some(cell) = stage_nanos.get_mut(Stage::Measure.index()) {
            *cell = total / 2;
        }
        SlowRecord {
            id: RequestId { epoch: 16, seq },
            fingerprint: format!("fp-\"{seq}\""),
            epsilon: 0.05,
            route: "test",
            stage_nanos,
            total_nanos: total,
        }
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let log = SlowLog::new(2);
        for seq in 1..=3 {
            log.push(record(seq, 1_000 * seq));
        }
        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records.first().map(|r| r.id.seq), Some(2));
        assert_eq!(records.last().map(|r| r.id.seq), Some(3));
    }

    #[test]
    fn json_dump_has_every_documented_field_and_escapes() {
        let log = SlowLog::new(4);
        log.push(record(1, 5_000));
        let json = log.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        for field in SlowRecord::JSON_FIELDS {
            assert!(json.contains(&format!("\"{field}\":")), "{field} in {json}");
        }
        assert!(json.contains("\"request_id\":\"10-1\""));
        assert!(json.contains("fp-\\\"1\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"measure\":2500"));
        assert!(!json.contains("\"total\":"), "total is a field, not a stage");
    }

    #[test]
    fn empty_ring_dumps_an_empty_array() {
        assert_eq!(SlowLog::new(1).to_json(), "[]");
    }
}
