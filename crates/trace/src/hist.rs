//! The log-bucketed latency histogram: fixed ~2× bucket boundaries
//! from 1 µs to ~67 s, atomic per-bucket accumulation, exact merge.
//!
//! Boundaries are `1000 · 2^i` nanoseconds for `i = 0..27` — 1 µs,
//! 2 µs, 4 µs, …, ≈67.1 s — plus one overflow (`+Inf`) bucket. Fixed
//! boundaries make merge *exact*: two histograms (from two shards, two
//! processes, or two scrapes) merge by adding bucket counts, with no
//! re-bucketing error. The ~2× spacing bounds the quantile estimation
//! error at one octave, which is the resolution latency dashboards
//! operate at anyway.
//!
//! Recording is a relaxed `fetch_add` on one bucket plus one on the
//! nanosecond sum — no locks anywhere on the hot path. A
//! [`HistogramSnapshot`] derives its count from the bucket counts it
//! read, so the Prometheus invariant `_count == +Inf cumulative
//! bucket` holds by construction even when a scrape races recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of finite buckets (`1000 · 2^i` ns for `i = 0..FINITE_BUCKETS`).
pub const FINITE_BUCKETS: usize = 27;

/// Total bucket count: the finite buckets plus the overflow (`+Inf`)
/// bucket.
pub const BUCKETS: usize = FINITE_BUCKETS + 1;

/// Upper bound (inclusive, in nanoseconds) of finite bucket `i`, or
/// `None` for the overflow bucket (`i >= FINITE_BUCKETS`).
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i < FINITE_BUCKETS {
        Some(1_000u64 << i)
    } else {
        None
    }
}

/// The bucket a duration of `nanos` lands in: the smallest `i` with
/// `nanos <= bucket_bound(i)`, or the overflow bucket when the value
/// exceeds every finite bound. `0` lands in bucket 0.
pub fn bucket_index(nanos: u64) -> usize {
    if nanos <= 1_000 {
        return 0;
    }
    // nanos <= 1000·2^i  ⟺  ceil(nanos/1000) <= 2^i, so the bucket is
    // the bit length of ceil(nanos/1000) - 1.
    let micros_ceil = nanos.div_ceil(1_000);
    let i = (64 - (micros_ceil - 1).leading_zeros()) as usize;
    if i < FINITE_BUCKETS {
        i
    } else {
        FINITE_BUCKETS
    }
}

/// A mergeable latency histogram with atomic per-bucket counts.
///
/// There is no separate count cell: the observation count *is* the sum
/// of the bucket counts, so snapshots are internally consistent by
/// construction (see module docs).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation of `nanos`. Lock-free: one relaxed
    /// `fetch_add` per cell.
    pub fn record(&self, nanos: u64) {
        if let Some(bucket) = self.buckets.get(bucket_index(nanos)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Merges a snapshot into this histogram — exact, since both sides
    /// share the fixed boundaries.
    pub fn absorb(&self, snapshot: &HistogramSnapshot) {
        for (bucket, count) in self.buckets.iter().zip(snapshot.buckets.iter()) {
            bucket.fetch_add(*count, Ordering::Relaxed);
        }
        self.sum_nanos.fetch_add(snapshot.sum_nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and nanosecond sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets, sum_nanos: self.sum_nanos.load(Ordering::Relaxed) }
    }
}

/// An owned copy of a [`Histogram`]'s state: plain integers, safe to
/// merge, compare, serialize, and estimate quantiles from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`BUCKETS` cells; the last is the
    /// overflow bucket).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded durations, in nanoseconds.
    pub sum_nanos: u64,
}

impl HistogramSnapshot {
    /// Total number of observations (the sum of the bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Merges `other` into `self` — exact (shared fixed boundaries).
    /// The nanosecond sum wraps on overflow, matching the wrapping
    /// `fetch_add` semantics of live [`Histogram`] accumulation
    /// (2⁶⁴ ns ≈ 584 years of recorded time).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.sum_nanos = self.sum_nanos.wrapping_add(other.sum_nanos);
    }

    /// Cumulative view for Prometheus rendering: `(upper bound in
    /// nanoseconds — `None` for `+Inf`, cumulative count)` per bucket.
    pub fn cumulative(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        let mut seen = 0u64;
        self.buckets.iter().enumerate().map(move |(i, count)| {
            seen += count;
            (bucket_bound(i), seen)
        })
    }

    /// Nearest-rank quantile estimate in nanoseconds, resolved to the
    /// upper bound of the bucket holding the rank (so the estimate
    /// over-reports by at most one ~2× bucket). Observations in the
    /// overflow bucket clamp to the largest finite bound, as Prometheus
    /// `histogram_quantile` does. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = {
            let r = (q * count as f64).ceil();
            if r < 1.0 {
                1
            } else if r >= count as f64 {
                count
            } else {
                r as u64
            }
        };
        let top = 1_000u64 << (FINITE_BUCKETS - 1);
        for (bound, seen) in self.cumulative() {
            if seen >= rank {
                return bound.unwrap_or(top);
            }
        }
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_and_cover_the_spec_range() {
        // 1 µs at the bottom, ~67.1 s at the top (the smallest
        // power-of-two scale covering the issue's "1 µs to ~60 s").
        assert_eq!(bucket_bound(0), Some(1_000));
        assert_eq!(bucket_bound(FINITE_BUCKETS - 1), Some(67_108_864_000));
        assert_eq!(bucket_bound(FINITE_BUCKETS), None);
        for i in 1..FINITE_BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
    }

    #[test]
    fn boundary_values_land_in_their_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1_000), 0);
        assert_eq!(bucket_index(1_001), 1);
        assert_eq!(bucket_index(2_000), 1);
        assert_eq!(bucket_index(2_001), 2);
        assert_eq!(bucket_index(67_108_864_000), FINITE_BUCKETS - 1);
        assert_eq!(bucket_index(67_108_864_001), FINITE_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn record_snapshot_and_merge_are_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        for nanos in [0, 999, 1_000, 1_500, 1_000_000, u64::MAX] {
            a.record(nanos);
        }
        b.record(2_500);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 7);

        let union = Histogram::new();
        for nanos in [0, 999, 1_000, 1_500, 1_000_000, u64::MAX, 2_500] {
            union.record(nanos);
        }
        assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn cumulative_counts_reach_the_total() {
        let h = Histogram::new();
        for nanos in [10, 5_000, 9_000_000, 80_000_000_000] {
            h.record(nanos);
        }
        let snap = h.snapshot();
        let last = snap.cumulative().last().expect("buckets");
        assert_eq!(last, (None, snap.count()));
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0, "empty histogram");
        for _ in 0..99 {
            h.record(1_500); // bucket 1, bound 2 µs
        }
        h.record(5_000_000); // bucket 13, bound ~8.2 ms
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 2_000);
        assert_eq!(snap.quantile(0.95), 2_000);
        assert_eq!(snap.quantile(1.0), 8_192_000);

        let over = Histogram::new();
        over.record(u64::MAX);
        assert_eq!(over.snapshot().quantile(0.99), 67_108_864_000, "overflow clamps to top");
    }
}
