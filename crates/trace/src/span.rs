//! The tracer: request-id minting, RAII span guards, and the flush
//! path from a finished request into the stage histograms and the
//! slow-query log.
//!
//! Flow: [`Tracer::begin`] mints a [`RequestTrace`] (request id + start
//! instant); the serving layers open [`RequestTrace::span`] guards
//! around each [`Stage`] (or call [`StageSink::record_stage`] from
//! `qarith-core`'s traced pipeline hooks); [`Tracer::finish`] folds the
//! per-stage durations into the tracer's histograms and, when the total
//! crosses the slow threshold, pushes a structured record onto the
//! [`SlowLog`].
//!
//! Per-request accumulation is plain `&mut` arithmetic on the
//! [`RequestTrace`] — no shared state, no synchronization. Only
//! `finish` touches the shared histograms, with one relaxed atomic add
//! per cell. All clock reads (`Instant`, and `SystemTime` for the
//! service epoch) live in this module, inside the `clock_allowed`
//! carve-out `analyze.toml` declares for this crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::slowlog::{SlowLog, SlowRecord};
use crate::{RequestId, Stage, StageSink};

/// Converts a duration since `start` to saturating nanoseconds.
fn nanos_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The per-service trace aggregator: mints request ids, owns one
/// [`Histogram`] per [`Stage`], and the slow-query log.
#[derive(Debug)]
pub struct Tracer {
    epoch: u64,
    seq: AtomicU64,
    stages: [Histogram; Stage::COUNT],
    slow: SlowLog,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// Default slow-log ring capacity (records retained).
    pub const DEFAULT_SLOW_CAPACITY: usize = 128;

    /// A tracer whose epoch is the current unix time in seconds.
    pub fn new() -> Tracer {
        let epoch = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
        Tracer::with_epoch(epoch)
    }

    /// A tracer with a caller-chosen epoch (deterministic tests).
    pub fn with_epoch(epoch: u64) -> Tracer {
        Tracer {
            epoch,
            seq: AtomicU64::new(0),
            stages: Default::default(),
            slow: SlowLog::new(Tracer::DEFAULT_SLOW_CAPACITY),
        }
    }

    /// The service epoch baked into every minted [`RequestId`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the slow-query capture threshold in nanoseconds; 0
    /// disables capture entirely.
    pub fn set_slow_threshold(&self, nanos: u64) {
        self.slow.set_threshold(nanos);
    }

    /// The current slow-query capture threshold in nanoseconds (0 =
    /// disabled).
    pub fn slow_threshold(&self) -> u64 {
        self.slow.threshold()
    }

    /// Mints the next request id and starts its trace clock.
    pub fn begin(&self) -> RequestTrace {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        RequestTrace {
            id: RequestId { epoch: self.epoch, seq },
            start: Instant::now(),
            nanos: [0; Stage::COUNT],
        }
    }

    /// An RAII guard recording directly into this tracer's histogram
    /// for `stage` on drop — for timings outside any single request
    /// (e.g. maintenance work).
    pub fn span(&self, stage: Stage) -> TracerSpan<'_> {
        TracerSpan { tracer: self, stage, start: Instant::now() }
    }

    /// Finishes a request: folds every non-zero stage duration plus
    /// the end-to-end total into the histograms, and captures a
    /// [`SlowRecord`] when the total crosses the threshold. Returns the
    /// total in nanoseconds.
    pub fn finish(
        &self,
        trace: &RequestTrace,
        fingerprint: &str,
        epsilon: f64,
        route: &'static str,
    ) -> u64 {
        let total = trace.elapsed_nanos();
        for stage in Stage::ALL {
            let nanos = trace.stage_nanos(stage);
            if nanos > 0 {
                self.record(stage, nanos);
            }
        }
        self.record(Stage::Total, total);
        let threshold = self.slow.threshold();
        if threshold > 0 && total >= threshold {
            self.slow.push(SlowRecord {
                id: trace.id,
                fingerprint: fingerprint.to_string(),
                epsilon,
                route,
                stage_nanos: trace.nanos,
                total_nanos: total,
            });
        }
        total
    }

    /// Adds one observation to the histogram of `stage`.
    pub fn record(&self, stage: Stage, nanos: u64) {
        if let Some(h) = self.stages.get(stage.index()) {
            h.record(nanos);
        }
    }

    /// A snapshot of every stage histogram, in [`Stage::ALL`] order.
    pub fn latency_stats(&self) -> LatencyStats {
        LatencyStats {
            stages: Stage::ALL
                .iter()
                .map(|&s| {
                    (s, self.stages.get(s.index()).map(Histogram::snapshot).unwrap_or_default())
                })
                .collect(),
        }
    }

    /// The slow-query records currently retained, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowRecord> {
        self.slow.records()
    }

    /// The slow-query log as a JSON array (the `GET /slow` body).
    pub fn slow_json(&self) -> String {
        self.slow.to_json()
    }
}

/// A per-request trace: the minted [`RequestId`], the request start
/// instant, and the accumulated per-stage nanoseconds. Plain `&mut`
/// state — cheap to create, no locks.
#[derive(Debug)]
pub struct RequestTrace {
    id: RequestId,
    start: Instant,
    nanos: [u64; Stage::COUNT],
}

impl RequestTrace {
    /// The request id minted by [`Tracer::begin`].
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Adds `nanos` to the running duration of `stage`.
    pub fn add(&mut self, stage: Stage, nanos: u64) {
        if let Some(cell) = self.nanos.get_mut(stage.index()) {
            *cell = cell.saturating_add(nanos);
        }
    }

    /// The accumulated duration of `stage` so far, in nanoseconds.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.nanos.get(stage.index()).copied().unwrap_or(0)
    }

    /// Nanoseconds elapsed since [`Tracer::begin`].
    pub fn elapsed_nanos(&self) -> u64 {
        nanos_since(self.start)
    }

    /// An RAII guard adding its elapsed time to `stage` when dropped.
    pub fn span(&mut self, stage: Stage) -> Span<'_> {
        Span { trace: self, stage, start: Instant::now() }
    }
}

impl StageSink for RequestTrace {
    fn record_stage(&mut self, stage: Stage, nanos: u64) {
        self.add(stage, nanos);
    }
}

/// RAII guard from [`RequestTrace::span`]: adds the elapsed time to
/// its stage on drop (including on early `return` / `?`).
#[derive(Debug)]
pub struct Span<'a> {
    trace: &'a mut RequestTrace,
    stage: Stage,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = nanos_since(self.start);
        self.trace.add(self.stage, nanos);
    }
}

/// RAII guard from [`Tracer::span`]: records straight into the
/// tracer's histogram for its stage on drop.
#[derive(Debug)]
pub struct TracerSpan<'a> {
    tracer: &'a Tracer,
    stage: Stage,
    start: Instant,
}

impl Drop for TracerSpan<'_> {
    fn drop(&mut self) {
        self.tracer.record(self.stage, nanos_since(self.start));
    }
}

/// A snapshot of every stage histogram, in [`Stage::ALL`] order — the
/// `QueryService::latency_stats()` return type, rendered by `/metrics`
/// and embedded in schema-v4 BENCH documents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyStats {
    /// One `(stage, snapshot)` pair per stage, in [`Stage::ALL`] order.
    pub stages: Vec<(Stage, HistogramSnapshot)>,
}

impl LatencyStats {
    /// The snapshot for one stage (empty if absent, which cannot
    /// happen for tracer-produced values).
    pub fn stage(&self, stage: Stage) -> HistogramSnapshot {
        self.stages.iter().find(|(s, _)| *s == stage).map(|(_, snap)| *snap).unwrap_or_default()
    }

    /// p50/p95/p99 summaries for every stage, in [`Stage::ALL`] order.
    pub fn summaries(&self) -> Vec<StageSummary> {
        self.stages
            .iter()
            .map(|(stage, snap)| StageSummary {
                stage: *stage,
                count: snap.count(),
                p50_nanos: snap.quantile(0.50),
                p95_nanos: snap.quantile(0.95),
                p99_nanos: snap.quantile(0.99),
            })
            .collect()
    }
}

/// One stage's quantile summary (nanoseconds, bucket-resolved).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSummary {
    /// The stage summarized.
    pub stage: Stage,
    /// Observation count.
    pub count: u64,
    /// Median estimate, in nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile estimate, in nanoseconds.
    pub p95_nanos: u64,
    /// 99th-percentile estimate, in nanoseconds.
    pub p99_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_sequential_within_the_epoch() {
        let tracer = Tracer::with_epoch(7);
        let a = tracer.begin();
        let b = tracer.begin();
        assert_eq!(a.id(), RequestId { epoch: 7, seq: 1 });
        assert_eq!(b.id(), RequestId { epoch: 7, seq: 2 });
    }

    #[test]
    fn spans_accumulate_and_finish_flushes_to_histograms() {
        let tracer = Tracer::with_epoch(1);
        let mut trace = tracer.begin();
        {
            let _guard = trace.span(Stage::Fingerprint);
        }
        trace.add(Stage::Measure, 5_000_000);
        assert!(trace.stage_nanos(Stage::Fingerprint) > 0, "guard recorded on drop");
        let total = tracer.finish(&trace, "fp", 0.05, "test");
        assert!(total > 0);

        let stats = tracer.latency_stats();
        assert_eq!(stats.stages.len(), Stage::COUNT);
        assert_eq!(stats.stage(Stage::Measure).count(), 1);
        assert_eq!(stats.stage(Stage::Total).count(), 1);
        assert_eq!(stats.stage(Stage::AdmissionWait).count(), 0, "untouched stages stay empty");
        let summaries = stats.summaries();
        assert_eq!(summaries.len(), Stage::COUNT);
        let measure =
            summaries.iter().find(|s| s.stage == Stage::Measure).expect("measure summarized");
        assert_eq!(measure.count, 1);
        assert_eq!(measure.p99_nanos, 8_192_000, "5 ms lands under the ~8.2 ms bound");
    }

    #[test]
    fn slow_log_captures_only_over_threshold() {
        let tracer = Tracer::with_epoch(2);
        let trace = tracer.begin();
        tracer.finish(&trace, "fast", 0.1, "test");
        assert!(tracer.slow_queries().is_empty(), "threshold 0 disables capture");

        tracer.set_slow_threshold(1); // 1 ns: everything is slow
        let mut trace = tracer.begin();
        trace.add(Stage::Measure, 123);
        std::thread::sleep(std::time::Duration::from_millis(1));
        tracer.finish(&trace, "slow", 0.1, "test");
        let records = tracer.slow_queries();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fingerprint, "slow");
        assert_eq!(records[0].route, "test");
        assert_eq!(records[0].stage_nanos[Stage::Measure.index()], 123);
        assert!(records[0].total_nanos >= 1_000_000);
    }

    #[test]
    fn stage_sink_records_through_the_trait_object() {
        let tracer = Tracer::with_epoch(3);
        let mut trace = tracer.begin();
        {
            let sink: &mut dyn StageSink = &mut trace;
            sink.record_stage(Stage::NuLookup, 10);
            sink.record_stage(Stage::NuLookup, 32);
        }
        assert_eq!(trace.stage_nanos(Stage::NuLookup), 42);
    }
}
