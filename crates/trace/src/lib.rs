//! Request tracing for the qarith serving stack: request ids,
//! per-stage latency histograms, and a bounded slow-query log.
//!
//! The serving path (`qarith-serve`, `qarith-net`) is **bit-pinned**:
//! every measured ν must be a deterministic function of the group key
//! and the [`MeasureOptions`] fingerprint, independent of thread count,
//! wall-clock, or load. That contract makes observability awkward —
//! timing a request *requires* reading clocks, the one thing the
//! determinism policy bans from pinned code. This crate is the
//! designated home for that tension:
//!
//! * **All clock reads live here** (or behind reviewed pragmas at the
//!   instrumentation sites in `qarith-core`). `analyze.toml` lists
//!   `crates/trace/src` under both `bit_pinned` *and* `clock_allowed`:
//!   the structural determinism lints (hash iteration) still apply,
//!   only the clock-source lint is carved out — visibly, in policy,
//!   not by exempting the crate wholesale.
//! * **Trace state is write-only from pinned code.** The analyzer's
//!   `trace-flow` lint forbids bit-pinned modules outside the carve-out
//!   from calling any of the read-back methods ([`Tracer::latency_stats`],
//!   [`HistogramSnapshot::quantile`], …), so a recorded duration can
//!   never flow back into a measurement input.
//!
//! What the crate provides:
//!
//! * [`Stage`] — the canonical request stages (admission wait through
//!   frame encode), each backed by one histogram family on `/metrics`.
//! * [`RequestId`] — service epoch + atomic sequence number, minted at
//!   service entry and threaded into reply frames and slow-log records.
//! * [`Histogram`] — log-bucketed (~2× bounds, 1 µs … ~67 s),
//!   atomic-per-bucket, exactly mergeable; [`HistogramSnapshot`] adds
//!   quantile estimation against bucket upper bounds.
//! * [`Tracer`] / [`RequestTrace`] / [`Span`] — RAII span guards that
//!   accumulate per-stage durations into a per-request record, flushed
//!   to the histograms (and, over a threshold, the slow-query log) by
//!   [`Tracer::finish`].
//! * [`SlowLog`] / [`SlowRecord`] — a mutex-guarded ring buffer of
//!   structured slow-query records, dumpable as JSON (`GET /slow`).
//!
//! Everything is `std`-only; the crate has zero dependencies.
//!
//! [`MeasureOptions`]: https://docs.rs/qarith-core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod hist;
pub mod slowlog;
pub mod span;

pub use hist::{bucket_bound, bucket_index, Histogram, HistogramSnapshot, BUCKETS, FINITE_BUCKETS};
pub use slowlog::{SlowLog, SlowRecord};
pub use span::{LatencyStats, RequestTrace, Span, StageSummary, Tracer, TracerSpan};

/// The canonical per-request stages, in pipeline order. Each stage is
/// one histogram family on `/metrics` (`qarith_stage_<name>_seconds`)
/// and one column of the slow-query log's per-stage breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Time queued at the admission gate before a permit was granted.
    AdmissionWait,
    /// SQL canonicalization into the plan-cache fingerprint.
    Fingerprint,
    /// Plan-cache probe and (on hit) LRU refresh, on either lock mode.
    PlanLookup,
    /// Grounding and batch preparation: parse/lower, candidate
    /// generation, canonicalization, interning, dedup, key building.
    Prepare,
    /// ν-cache consultation for every group key in the plan.
    NuLookup,
    /// The measurement fan-out proper, including cache publication.
    Measure,
    /// Rehydrating measured groups back onto per-candidate answers.
    Rehydrate,
    /// Wire path only: decoding the request frame payload.
    FrameDecode,
    /// Wire path only: encoding the reply frame payload.
    FrameEncode,
    /// Write path only: building and publishing the next epoch
    /// snapshot (clone, op application, digest, pointer swap).
    WriteApply,
    /// Write path only: delta-aware ν-cache and plan invalidation
    /// after an epoch swap.
    Invalidate,
    /// End-to-end request time from `begin` to `finish`.
    Total,
}

impl Stage {
    /// Number of stages ([`Stage::ALL`] length).
    pub const COUNT: usize = 12;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::AdmissionWait,
        Stage::Fingerprint,
        Stage::PlanLookup,
        Stage::Prepare,
        Stage::NuLookup,
        Stage::Measure,
        Stage::Rehydrate,
        Stage::FrameDecode,
        Stage::FrameEncode,
        Stage::WriteApply,
        Stage::Invalidate,
        Stage::Total,
    ];

    /// The stage's snake_case name, as used in metric family names and
    /// slow-log JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::AdmissionWait => "admission_wait",
            Stage::Fingerprint => "fingerprint",
            Stage::PlanLookup => "plan_lookup",
            Stage::Prepare => "prepare",
            Stage::NuLookup => "nu_lookup",
            Stage::Measure => "measure",
            Stage::Rehydrate => "rehydrate",
            Stage::FrameDecode => "frame_decode",
            Stage::FrameEncode => "frame_encode",
            Stage::WriteApply => "write_apply",
            Stage::Invalidate => "invalidate",
            Stage::Total => "total",
        }
    }

    /// A one-line description, used in `# HELP` lines and the README
    /// stage glossary.
    pub fn what(self) -> &'static str {
        match self {
            Stage::AdmissionWait => "time queued at the admission gate before a permit",
            Stage::Fingerprint => "SQL canonicalization into the plan-cache fingerprint",
            Stage::PlanLookup => "plan-cache probe and LRU refresh",
            Stage::Prepare => "grounding and batch preparation (parse, candidates, dedup, keys)",
            Stage::NuLookup => "nu-cache consultation for every group in the plan",
            Stage::Measure => "the measurement fan-out, including cache publication",
            Stage::Rehydrate => "rehydrating measured groups onto per-candidate answers",
            Stage::FrameDecode => "wire request frame decode",
            Stage::FrameEncode => "wire reply frame encode",
            Stage::WriteApply => "building and publishing the next epoch snapshot",
            Stage::Invalidate => "delta-aware nu-cache and plan invalidation after an epoch swap",
            Stage::Total => "end-to-end request time",
        }
    }

    /// The stage's index into [`Stage::ALL`]-ordered arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A request identity: the tracer's service epoch (unix seconds at
/// construction) plus a per-tracer atomic sequence number. Minted by
/// [`Tracer::begin`] at service entry, threaded into wire reply frames
/// (`rid=`) and slow-log records. Unique within a service process and
/// distinguishable across restarts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RequestId {
    /// The tracer's service epoch (unix seconds at construction).
    pub epoch: u64,
    /// Sequence number within the epoch, starting at 1.
    pub seq: u64,
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}-{}", self.epoch, self.seq)
    }
}

impl RequestId {
    /// Parses the `epoch-seq` form produced by [`Display`](fmt::Display)
    /// (hex epoch, decimal sequence), as carried in reply frames.
    pub fn parse(s: &str) -> Option<RequestId> {
        let (epoch, seq) = s.split_once('-')?;
        Some(RequestId { epoch: u64::from_str_radix(epoch, 16).ok()?, seq: seq.parse().ok()? })
    }
}

/// A sink for per-stage durations. `qarith-core`'s traced pipeline
/// entry points accept `Option<&mut dyn StageSink>` so the core crate
/// records stage timings without depending on the full tracer surface;
/// [`RequestTrace`] is the canonical implementation.
pub trait StageSink {
    /// Adds `nanos` to the running duration of `stage`.
    fn record_stage(&mut self, stage: Stage, nanos: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_index_matches_all_order() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
    }

    #[test]
    fn stage_names_are_unique_snake_case() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
        for name in names {
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{name}");
        }
    }

    #[test]
    fn request_id_round_trips_through_display() {
        let id = RequestId { epoch: 0x689a_bcde, seq: 42 };
        assert_eq!(id.to_string(), "689abcde-42");
        assert_eq!(RequestId::parse("689abcde-42"), Some(id));
        assert_eq!(RequestId::parse("nope"), None);
        assert_eq!(RequestId::parse("12-x"), None);
    }
}
