//! Property tests for the histogram kernel: merge is exactly the
//! union, bucket boundaries are monotone, cumulative counts are
//! non-decreasing and reach the total, and boundary values land in the
//! right bucket.

use proptest::prelude::*;
use qarith_trace::{bucket_bound, bucket_index, Histogram, HistogramSnapshot, FINITE_BUCKETS};

/// Durations spread across the full bucket scale: raw u64s plus exact
/// boundary values and their neighbors.
fn durations() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..5_000,           // around the bottom buckets
            0u64..100_000_000_000, // across the finite scale
            Just(0u64),
            Just(u64::MAX),
            (0usize..FINITE_BUCKETS).prop_map(|i| 1_000u64 << i), // exact bounds
            (0usize..FINITE_BUCKETS).prop_map(|i| (1_000u64 << i) + 1),
        ],
        0..64,
    )
}

fn accumulate(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for v in values {
        h.record(*v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge(a, b) is bit-identical to accumulating the union of the
    /// two observation streams into one histogram.
    #[test]
    fn merge_equals_accumulating_the_union(a in durations(), b in durations()) {
        let mut merged = accumulate(&a);
        merged.merge(&accumulate(&b));

        let mut union = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(merged, accumulate(&union));
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
    }

    /// `Histogram::absorb` agrees with snapshot-level merge.
    #[test]
    fn absorb_agrees_with_snapshot_merge(a in durations(), b in durations()) {
        let h = Histogram::new();
        for v in &a {
            h.record(*v);
        }
        h.absorb(&accumulate(&b));

        let mut expected = accumulate(&a);
        expected.merge(&accumulate(&b));
        prop_assert_eq!(h.snapshot(), expected);
    }

    /// Cumulative counts are non-decreasing and end at the total.
    #[test]
    fn cumulative_counts_are_monotone(values in durations()) {
        let snap = accumulate(&values);
        let mut prev = 0u64;
        let mut last = 0u64;
        for (_, cum) in snap.cumulative() {
            prop_assert!(cum >= prev, "cumulative dipped: {cum} < {prev}");
            prev = cum;
            last = cum;
        }
        prop_assert_eq!(last, values.len() as u64);
        prop_assert_eq!(snap.count(), values.len() as u64);
    }

    /// Every value lands in the bucket whose bound first covers it:
    /// v ≤ bound(i) and (i = 0 or v > bound(i−1)).
    #[test]
    fn values_land_in_the_covering_bucket(v in prop_oneof![
        0u64..10_000,
        0u64..u64::MAX,
        Just(u64::MAX),
        (0usize..FINITE_BUCKETS).prop_map(|i| 1_000u64 << i),
    ]) {
        let i = bucket_index(v);
        match bucket_bound(i) {
            Some(bound) => {
                prop_assert!(v <= bound, "{v} above its bucket bound {bound}");
                if i > 0 {
                    let below = bucket_bound(i - 1).expect("finite predecessor");
                    prop_assert!(v > below, "{v} should have landed in bucket {}", i - 1);
                }
            }
            None => {
                // Overflow bucket: above every finite bound.
                let top = bucket_bound(FINITE_BUCKETS - 1).expect("top finite bound");
                prop_assert!(v > top, "{v} should fit a finite bucket");
            }
        }
    }
}

/// Deterministic spot-checks the properties above rely on: exact
/// powers sit inside (not above) their bucket, and the extremes pin
/// to the first and overflow buckets.
#[test]
fn boundary_spot_checks() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
    for i in 0..FINITE_BUCKETS {
        let bound = bucket_bound(i).expect("finite bound");
        assert_eq!(bucket_index(bound), i, "exact power 1000*2^{i} in its own bucket");
        assert_eq!(bucket_index(bound + 1), i + 1, "one past the bound spills over");
    }
    // Monotone bounds, ~2× apart.
    for i in 1..FINITE_BUCKETS {
        assert_eq!(bucket_bound(i), bucket_bound(i - 1).map(|b| b * 2));
    }
}
