//! Pass 3: independence decomposition of top-level connectives.
//!
//! **Why the product rule is exact.** `ν(φ)` is the probability that a
//! direction `a`, uniform on the unit sphere, asymptotically satisfies
//! `φ` (Lemma 8.3). Sample `a` as a normalized standard Gaussian
//! `g/‖g‖`. The Lemma 8.4 limit truth is *scale-invariant*: every
//! homogeneous component scales by a positive power of the scale factor,
//! so no component's sign — hence no atom's and no formula's limit
//! truth — changes along a ray. For a factor `φᵢ` over a variable set
//! `Vᵢ`, the limit truth at `a` therefore depends only on the
//! *direction* of the sub-vector `g|_{Vᵢ}` (the normalization by the
//! global `‖g‖` is just such a positive rescaling). When the `Vᵢ` are
//! pairwise disjoint, the sub-vectors `g|_{Vᵢ}` are independent
//! Gaussians, so their directions are independent (and each is uniform
//! on its own sub-sphere). Hence for variable-disjoint `φ, ψ`:
//!
//! `ν(φ ∧ ψ) = P[φ limit-holds ∧ ψ limit-holds] = ν(φ)·ν(ψ)`,
//!
//! and inductively over all factors. Each factor can be measured on its
//! own `|Vᵢ|`-dimensional sphere — the same partial-vector projection
//! argument the paper's §9 uses for whole formulas.
//!
//! **The dual rule for disjunctions.** The same independence applied to
//! the complements gives, for variable-disjoint `φ, ψ`:
//!
//! `ν(φ ∨ ψ) = 1 − P[¬φ ∧ ¬ψ] = 1 − (1 − ν(φ))·(1 − ν(ψ))`.
//!
//! This matters in practice: the CQ executor emits one disjunct per
//! derivation, so per-candidate ground formulas are `Or`-rooted, and
//! derivations through unrelated nulls produce variable-disjoint
//! disjuncts.

use std::collections::HashMap;

use qarith_constraints::{QfFormula, Var};

/// How a [`Decomposition`]'s factor measures combine back into `ν`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Combination {
    /// Conjunction factors: `ν = ∏ᵢ νᵢ`.
    Product,
    /// Disjunction factors: `ν = 1 − ∏ᵢ (1 − νᵢ)`.
    DualProduct,
}

/// The result of splitting a formula along variable-disjoint components
/// of its top-level connective.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The combination rule matching the root connective.
    pub combination: Combination,
    /// Variable-disjoint factors. Empty iff the input was a constant; a
    /// single factor means no decomposition applied (then the
    /// combination is trivially the identity either way).
    pub factors: Vec<QfFormula>,
}

/// Splits a formula into variable-disjoint factors: the connected
/// components of the part–variable incidence graph of a top-level `And`
/// or `Or` (parts sharing a variable end up in the same factor), with
/// the matching combination rule. Leaves are a single factor; constants
/// have none. Factor order is deterministic — by first part
/// occurrence — and each factor keeps its parts in input order.
pub fn decompose(phi: &QfFormula) -> Decomposition {
    let (parts, combination) = match phi {
        QfFormula::True | QfFormula::False => {
            return Decomposition { combination: Combination::Product, factors: Vec::new() }
        }
        QfFormula::And(parts) => (parts, Combination::Product),
        QfFormula::Or(parts) => (parts, Combination::DualProduct),
        other => {
            return Decomposition {
                combination: Combination::Product,
                factors: vec![other.clone()],
            }
        }
    };

    // Union-find over part indices, merged through shared variables.
    let mut parent: Vec<usize> = (0..parts.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]]; // path halving
            i = parent[i];
        }
        i
    }
    let mut owner: HashMap<Var, usize> = HashMap::new();
    for (i, p) in parts.iter().enumerate() {
        for v in p.vars() {
            match owner.get(&v) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    // Attach to the smaller root so component order
                    // follows first occurrence.
                    parent[ri.max(rj)] = ri.min(rj);
                }
                None => {
                    owner.insert(v, i);
                }
            }
        }
    }

    // Group parts by root, in first-occurrence order.
    let mut slot_of_root: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<Vec<QfFormula>> = Vec::new();
    for (i, p) in parts.iter().enumerate() {
        let root = find(&mut parent, i);
        let slot = *slot_of_root.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[slot].push(p.clone());
    }
    let rebuild = match combination {
        Combination::Product => QfFormula::and,
        Combination::DualProduct => QfFormula::or,
    };
    Decomposition { combination, factors: groups.into_iter().map(rebuild).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial};
    use qarith_numeric::Rational;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    #[test]
    fn splits_disjoint_components_in_order() {
        // Components: {z0, z2} (linked through conjunct 3), {z1}, {z3}.
        let p0 = atom(z(0), ConstraintOp::Gt);
        let p1 = atom(z(1), ConstraintOp::Lt);
        let p2 = atom(z(2), ConstraintOp::Ge);
        let p3 = atom(z(0) - z(2), ConstraintOp::Lt);
        let p4 = atom(z(3), ConstraintOp::Le);
        let f = QfFormula::and([p0.clone(), p1.clone(), p2.clone(), p3.clone(), p4.clone()]);
        let d = decompose(&f);
        assert_eq!(d.combination, Combination::Product);
        assert_eq!(d.factors.len(), 3);
        assert_eq!(d.factors[0], QfFormula::and([p0, p2, p3]));
        assert_eq!(d.factors[1], p1);
        assert_eq!(d.factors[2], p4);
        // Variable sets are pairwise disjoint.
        for i in 0..d.factors.len() {
            for j in i + 1..d.factors.len() {
                assert!(d.factors[i].vars().is_disjoint(&d.factors[j].vars()));
            }
        }
    }

    #[test]
    fn disjunctions_decompose_dually() {
        // (z0 < 0 ∧ z1 > 0) ∨ (z2 ≥ 0): disjoint disjuncts.
        let left = QfFormula::and([atom(z(0), ConstraintOp::Lt), atom(z(1), ConstraintOp::Gt)]);
        let right = atom(z(2), ConstraintOp::Ge);
        let f = QfFormula::or([left.clone(), right.clone()]);
        let d = decompose(&f);
        assert_eq!(d.combination, Combination::DualProduct);
        assert_eq!(d.factors, vec![left, right]);
        // Disjuncts sharing a variable stay together.
        let g = QfFormula::or([
            atom(z(0) - z(1), ConstraintOp::Lt),
            atom(z(1) - z(2), ConstraintOp::Lt),
        ]);
        let d = decompose(&g);
        assert_eq!(d.factors.len(), 1);
        assert_eq!(d.factors[0], g);
    }

    #[test]
    fn connected_conjunctions_stay_whole() {
        let f = QfFormula::and([
            atom(z(0) - z(1), ConstraintOp::Lt),
            atom(z(1) - z(2), ConstraintOp::Lt),
        ]);
        let d = decompose(&f);
        assert_eq!(d.factors.len(), 1);
        assert_eq!(d.factors[0], f);
    }

    #[test]
    fn non_connectives_and_constants() {
        let a = atom(z(2) - Polynomial::constant(Rational::from_int(7)), ConstraintOp::Gt);
        let d = decompose(&a);
        assert_eq!(d.factors, vec![a.clone()]);
        assert!(decompose(&QfFormula::True).factors.is_empty());
        assert!(decompose(&QfFormula::False).factors.is_empty());
    }

    #[test]
    fn connective_of_factors_is_the_input() {
        let f = QfFormula::and([
            atom(z(0), ConstraintOp::Gt),
            atom(z(1), ConstraintOp::Gt),
            atom(z(2), ConstraintOp::Gt),
        ]);
        let d = decompose(&f);
        assert_eq!(d.factors.len(), 3);
        assert_eq!(QfFormula::and(d.factors), f);
        let g = QfFormula::or([atom(z(0), ConstraintOp::Gt), atom(z(1), ConstraintOp::Gt)]);
        let d = decompose(&g);
        assert_eq!(d.factors.len(), 2);
        assert_eq!(QfFormula::or(d.factors), g);
    }
}
