//! Pass configuration for the rewrite pipeline.

/// How `qarith-core`'s decomposed measurement splits the error budget
/// across factors that still need sampling (exactly-evaluated factors
/// consume no budget either way — they contribute zero error).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FactorBudget {
    /// Rejoin all sampled factors into one conjunction and sample it
    /// once with the **full** ε: the exact factors multiply in error-free,
    /// so `|ν̂ᵣ·∏νₑ − νᵣ·∏νₑ| ≤ ε` already. This never draws more
    /// directions than the unrewritten run and the joint formula is no
    /// larger than the original — the default.
    #[default]
    Residual,
    /// Sample each of the `k` remaining factors independently with an
    /// `ε/k` additive budget (and `δ/k` failure probability, by the
    /// union bound). For `[0, 1]`-valued factors the product telescopes:
    /// `|∏ν̂ᵢ − ∏νᵢ| ≤ Σ|ν̂ᵢ − νᵢ| ≤ Σεᵢ = ε`. Draws `k·⌈(k/ε)²⌉`
    /// directions in the worst case — useful when the factors' direction
    /// spaces are so much smaller that per-direction work dominates, and
    /// as the literal product-rule estimator the soundness suite pins.
    Split,
}

/// Which rewrite passes run, and how. Folded into
/// `MeasureOptions::fingerprint` by `qarith-core`: any field here can
/// change the bits of an estimate, so two configurations never share
/// ν-cache entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RewriteOptions {
    /// Master switch. When `false` the engine runs the historical
    /// pipeline (the frozen `ae_simplified` behavior on the `Auto` and
    /// `ExactOnly` routes, formulas measured whole) and produces
    /// bit-identical estimates to releases without this crate.
    pub enabled: bool,
    /// Pass 1: constant-sign folding of trivially-decidable atoms via
    /// exact ℚ bound propagation. (The measure-zero equality /
    /// disequality elimination always runs; this flag controls only the
    /// stronger interval analysis.)
    pub fold: bool,
    /// Pass 2: Boolean normalization — child dedup, complement
    /// annihilation, absorption.
    pub normalize: bool,
    /// Pass 3: independence decomposition of top-level conjunctions
    /// into variable-disjoint factors.
    pub decompose: bool,
    /// Error-budget policy for sampled factors (see [`FactorBudget`]).
    pub budget: FactorBudget,
    /// Fixpoint cap for the simplification loop. Rarely more than two
    /// iterations are needed; the cap guards against pathological
    /// ping-ponging ever being introduced.
    pub max_passes: usize,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            enabled: false,
            fold: true,
            normalize: true,
            decompose: true,
            budget: FactorBudget::Residual,
            max_passes: 8,
        }
    }
}

impl RewriteOptions {
    /// All passes enabled — the configuration benchmarks and the smoke
    /// suites run.
    pub fn full() -> RewriteOptions {
        RewriteOptions { enabled: true, ..RewriteOptions::default() }
    }

    /// Only the measure-zero equality/disequality elimination — the
    /// configuration that reproduces the deprecated
    /// `QfFormula::ae_simplified` bit for bit.
    pub fn ae_only() -> RewriteOptions {
        RewriteOptions {
            enabled: true,
            fold: false,
            normalize: false,
            decompose: false,
            ..RewriteOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_but_fully_configured() {
        let d = RewriteOptions::default();
        assert!(!d.enabled);
        assert!(d.fold && d.normalize && d.decompose);
        assert_eq!(d.budget, FactorBudget::Residual);
        assert!(RewriteOptions::full().enabled);
        let ae = RewriteOptions::ae_only();
        assert!(ae.enabled && !ae.fold && !ae.normalize && !ae.decompose);
    }
}
