//! # qarith-rewrite — ν-preserving formula rewriting
//!
//! Layering: above `qarith-constraints`, below `qarith-core` (whose
//! `decompose` executor measures the outcomes produced here). Paper
//! touchpoints: Lemma 8.4 (almost-everywhere constant limit signs) and
//! the independence of variable-disjoint direction events behind the
//! §8 measure.
//!
//! The Theorem 8.1 sampling loop pays `ε⁻²` directions per formula with
//! `O(|φ|)` work per direction, even when the ground formula (the
//! Proposition 5.3 output) is bloated with trivially-decidable atoms or
//! splits into variable-disjoint components. This crate makes each
//! formula *cheaper and lower-dimensional* before measurement, without
//! changing its measure `ν`:
//!
//! 1. **Trivial-atom elimination** ([`Rewriter::simplify`], pass `fold`) —
//!    constant folding through exact ℚ interval/bound propagation
//!    (`qarith_constraints::asymptotic::constant_limit_sign`): atoms
//!    whose limit sign is constant over (almost) all directions collapse
//!    to `True`/`False`, which the smart constructors absorb through
//!    `And`/`Or`. The measure-zero equality/disequality elimination of
//!    the historical `QfFormula::ae_simplified` is the weak special case
//!    ([`ae_simplify`], bit-identical to the now-deprecated shim).
//! 2. **Boolean normalization** ([`Rewriter::simplify`], pass `normalize`) —
//!    flattening (inherited from the smart constructors), child
//!    deduplication, complement annihilation (`α ∧ ¬α ⇝ false`), and
//!    absorption (`α ∧ (α ∨ β) ⇝ α`). These are pointwise Boolean
//!    identities, valid at every direction, not just almost everywhere.
//! 3. **Independence decomposition** ([`decompose`]) — a top-level
//!    conjunction splits into variable-disjoint factors by connected
//!    components of the atom–variable incidence graph. Under the uniform
//!    direction measure the factors' asymptotic events are independent
//!    (see the module docs of [`decompose`]), so
//!    `ν(φ₁ ∧ … ∧ φ_k) = ∏ᵢ ν(φᵢ)` — each factor can be measured
//!    separately, in its own (much smaller) direction space, and small
//!    factors come within reach of the exact evaluators.
//!
//! Every pass preserves `ν` exactly: passes 2–3 preserve the limit
//! truth at *every* direction, pass 1 at almost every direction (a null
//! set cannot change a probability). What rewriting does **not**
//! preserve is the bit pattern of a Monte-Carlo estimate — the sampled
//! formula, its dimension, and the sample budget all change — which is
//! why `qarith-core` folds the [`RewriteOptions`] into the options
//! fingerprint and flags rewritten estimates in their provenance.
//!
//! [`Rewriter`] packages the passes; `qarith-core`'s `CertaintyEngine`
//! runs them (behind `MeasureOptions::rewrite`) ahead of
//! canonicalization, so the ν-cache keys pick up the rewritten form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompose;
mod options;
mod simplify;

pub use decompose::{decompose, Combination, Decomposition};
pub use options::{FactorBudget, RewriteOptions};
pub use simplify::ae_simplify;

use qarith_constraints::QfFormula;

/// The pass pipeline, configured by [`RewriteOptions`].
#[derive(Clone, Copy, Debug)]
pub struct Rewriter {
    options: RewriteOptions,
}

/// The result of running the full pipeline on a formula.
#[derive(Clone, Debug)]
pub struct RewriteOutcome {
    /// The simplified formula (NNF; `True`/`False` only at the root).
    pub formula: QfFormula,
    /// Variable-disjoint factors of [`RewriteOutcome::formula`] with
    /// their combination rule (product for `And` roots, complement
    /// product for `Or` roots). No factors iff the formula collapsed to
    /// a constant; a single factor means no decomposition applied.
    pub decomposition: Decomposition,
    /// AST size of the input.
    pub size_before: usize,
    /// AST size of the simplified formula.
    pub size_after: usize,
    /// Distinct variables in the input.
    pub dim_before: usize,
    /// Distinct variables after simplification (= the sum of the factor
    /// dimensions: factors partition the surviving variables).
    pub dim_after: usize,
}

impl Rewriter {
    /// A rewriter with the given pass configuration.
    pub fn new(options: RewriteOptions) -> Rewriter {
        Rewriter { options }
    }

    /// The configured options.
    pub fn options(&self) -> &RewriteOptions {
        &self.options
    }

    /// Runs the simplification passes (1–2) to a fixpoint, without
    /// decomposing. The result is in NNF and has the same `ν` as the
    /// input. Idempotent: `simplify(simplify(φ)) == simplify(φ)`.
    pub fn simplify(&self, phi: &QfFormula) -> QfFormula {
        let mut cur = simplify::simplify_atoms(&phi.nnf(), self.options.fold);
        if !self.options.normalize {
            return cur;
        }
        // Normalization is bottom-up, so a single pass handles nested
        // opportunities; the fixpoint loop covers the rare cascades where
        // an absorption at one level exposes a new one above it.
        for _ in 0..self.options.max_passes.max(1) {
            let next = simplify::normalize_node(&cur);
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    /// Runs the full pipeline: simplification plus (when enabled)
    /// independence decomposition of the top-level connective.
    pub fn rewrite(&self, phi: &QfFormula) -> RewriteOutcome {
        let formula = self.simplify(phi);
        let decomposition = if self.options.decompose {
            decompose(&formula)
        } else {
            Decomposition {
                combination: Combination::Product,
                factors: match &formula {
                    QfFormula::True | QfFormula::False => Vec::new(),
                    other => vec![other.clone()],
                },
            }
        };
        let dim_after = decomposition.factors.iter().map(|f| f.vars().len()).sum();
        RewriteOutcome {
            size_before: phi.size(),
            size_after: formula.size(),
            dim_before: phi.vars().len(),
            dim_after,
            formula,
            decomposition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};
    use qarith_numeric::Rational;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn c(n: i64) -> Polynomial {
        Polynomial::constant(Rational::from_int(n))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    fn full() -> Rewriter {
        Rewriter::new(RewriteOptions::full())
    }

    #[test]
    fn trivial_atoms_fold_away() {
        // (z0² + z1² > 0) ∧ (z2 < 0): the first conjunct is a.e. true.
        let f = QfFormula::and([
            atom(z(0) * z(0) + z(1) * z(1), ConstraintOp::Gt),
            atom(z(2), ConstraintOp::Lt),
        ]);
        let out = full().rewrite(&f);
        assert_eq!(out.formula, atom(z(2), ConstraintOp::Lt));
        assert_eq!(out.dim_before, 3);
        assert_eq!(out.dim_after, 1);
        // An a.e.-false atom collapses a conjunction entirely.
        let g = QfFormula::and([
            atom(c(-1) * z(0) * z(0) - c(3), ConstraintOp::Ge),
            atom(z(1), ConstraintOp::Lt),
        ]);
        assert_eq!(full().rewrite(&g).formula, QfFormula::False);
    }

    #[test]
    fn normalization_dedups_absorbs_annihilates() {
        let a = atom(z(0), ConstraintOp::Lt);
        let b = atom(z(1), ConstraintOp::Gt);
        // α ∧ α ⇝ α.
        assert_eq!(full().simplify(&QfFormula::and([a.clone(), a.clone()])), a);
        // α ∧ (α ∨ β) ⇝ α.
        let f = QfFormula::and([a.clone(), QfFormula::or([a.clone(), b.clone()])]);
        assert_eq!(full().simplify(&f), a);
        // α ∨ (α ∧ β) ⇝ α.
        let f = QfFormula::or([a.clone(), QfFormula::and([a.clone(), b.clone()])]);
        assert_eq!(full().simplify(&f), a);
        // α ∧ ¬α ⇝ false; α ∨ ¬α ⇝ true (complement ops).
        let na = atom(z(0), ConstraintOp::Ge);
        assert_eq!(full().simplify(&QfFormula::and([a.clone(), na.clone()])), QfFormula::False);
        assert_eq!(full().simplify(&QfFormula::or([a.clone(), na])), QfFormula::True);
    }

    #[test]
    fn simplify_is_idempotent() {
        let f = QfFormula::and([
            QfFormula::or([atom(z(0), ConstraintOp::Lt), atom(z(1), ConstraintOp::Gt)]),
            atom(z(0), ConstraintOp::Lt),
            atom(z(2) - z(3), ConstraintOp::Eq).negated(),
        ]);
        let once = full().simplify(&f);
        assert_eq!(full().simplify(&once), once);
    }

    #[test]
    fn rewrite_decomposes_disjoint_conjunctions() {
        // (z0 < z1) ∧ (z2 > 0) ∧ (z1 ≥ 0): components {z0, z1} and {z2}.
        let f = QfFormula::and([
            atom(z(0) - z(1), ConstraintOp::Lt),
            atom(z(2), ConstraintOp::Gt),
            atom(z(1), ConstraintOp::Ge),
        ]);
        let out = full().rewrite(&f);
        let factors = &out.decomposition.factors;
        assert_eq!(factors.len(), 2);
        assert_eq!(
            factors[0],
            QfFormula::and([atom(z(0) - z(1), ConstraintOp::Lt), atom(z(1), ConstraintOp::Ge),])
        );
        assert_eq!(factors[1], atom(z(2), ConstraintOp::Gt));
        assert_eq!(out.dim_after, 3);
    }

    #[test]
    fn constants_produce_no_factors() {
        let t = full()
            .rewrite(&QfFormula::or([atom(z(0), ConstraintOp::Lt), atom(z(0), ConstraintOp::Ge)]));
        assert_eq!(t.formula, QfFormula::True);
        assert!(t.decomposition.factors.is_empty());
        assert_eq!(t.dim_after, 0);
    }

    #[test]
    fn legacy_ae_configuration_matches_the_frozen_shim() {
        let eq = atom(z(0) - z(1), ConstraintOp::Eq);
        let f = QfFormula::and([
            QfFormula::or([eq.clone(), atom(z(0), ConstraintOp::Lt)]),
            eq.negated(),
            atom(z(2) * z(2) - z(3), ConstraintOp::Le),
        ]);
        #[allow(deprecated)]
        let shim = f.ae_simplified();
        assert_eq!(ae_simplify(&f), shim);
        assert_eq!(Rewriter::new(RewriteOptions::ae_only()).simplify(&f), shim);
    }
}
