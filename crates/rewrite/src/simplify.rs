//! Passes 1–2: trivial-atom elimination and Boolean normalization.

use std::collections::HashSet;

use qarith_constraints::asymptotic::constant_limit_truth;
use qarith_constraints::QfFormula;

/// The measure-zero simplification alone: NNF, then every surviving
/// equality atom becomes `false` and every disequality `true` (for a
/// polynomial that is not identically zero, the directions along which
/// it is eventually zero form a null set — see Lemma 8.3 and the module
/// docs of `qarith_constraints::asymptotic`).
///
/// Bit-identical to the deprecated `QfFormula::ae_simplified`: same
/// traversal, same smart constructors, so callers migrating from the
/// shim observe no change at all.
pub fn ae_simplify(phi: &QfFormula) -> QfFormula {
    simplify_atoms(&phi.nnf(), false)
}

/// Per-atom folding over an NNF formula. With `fold` the exact ℚ
/// interval analysis decides atoms whose limit sign is constant over
/// almost all directions; the equality/disequality null-set rule always
/// applies. Constants propagate through the smart constructors.
pub(crate) fn simplify_atoms(f: &QfFormula, fold: bool) -> QfFormula {
    match f {
        QfFormula::True => QfFormula::True,
        QfFormula::False => QfFormula::False,
        QfFormula::Atom(a) => {
            if fold {
                if let Some(truth) = constant_limit_truth(a) {
                    return if truth { QfFormula::True } else { QfFormula::False };
                }
            }
            match a.op() {
                qarith_constraints::ConstraintOp::Eq => QfFormula::False,
                qarith_constraints::ConstraintOp::Ne => QfFormula::True,
                _ => QfFormula::Atom(a.clone()),
            }
        }
        QfFormula::Not(_) => unreachable!("runs on NNF"),
        QfFormula::And(parts) => QfFormula::and(parts.iter().map(|p| simplify_atoms(p, fold))),
        QfFormula::Or(parts) => QfFormula::or(parts.iter().map(|p| simplify_atoms(p, fold))),
    }
}

/// One bottom-up normalization pass: per connective, deduplicate
/// children (first occurrence wins, order otherwise preserved —
/// determinism matters for reproducible estimates), annihilate
/// complementary atom pairs, and apply absorption. All three are
/// pointwise Boolean identities: the rewritten formula has the same
/// truth value at every point and every direction.
pub(crate) fn normalize_node(f: &QfFormula) -> QfFormula {
    match f {
        QfFormula::True | QfFormula::False | QfFormula::Atom(_) => f.clone(),
        // NNF input has no Not nodes; stay total anyway.
        QfFormula::Not(inner) => normalize_node(inner).negated(),
        QfFormula::And(parts) => {
            rebuild(parts.iter().map(normalize_node), /* conjunction = */ true)
        }
        QfFormula::Or(parts) => rebuild(parts.iter().map(normalize_node), false),
    }
}

/// Shared And/Or rebuilder. For a conjunction: `α ∧ α ⇝ α`,
/// `α ∧ ¬α ⇝ false`, `α ∧ (α ∨ β) ⇝ α`; the disjunction rules are dual.
fn rebuild(children: impl Iterator<Item = QfFormula>, conjunction: bool) -> QfFormula {
    // Flattening and constant folding via the smart constructor.
    let flat = if conjunction { QfFormula::and(children) } else { QfFormula::or(children) };
    let parts = match &flat {
        QfFormula::And(parts) if conjunction => parts,
        QfFormula::Or(parts) if !conjunction => parts,
        _ => return flat,
    };

    // Deduplicate, keeping first-occurrence order.
    let mut seen: HashSet<&QfFormula> = HashSet::with_capacity(parts.len());
    let mut kept: Vec<&QfFormula> = Vec::with_capacity(parts.len());
    for p in parts {
        if seen.insert(p) {
            kept.push(p);
        }
    }

    // Complement annihilation on atoms: `p ⋈ 0` against `p ¬⋈ 0`.
    for p in &kept {
        if let QfFormula::Atom(a) = p {
            if seen.contains(&QfFormula::Atom(a.negated())) {
                return if conjunction { QfFormula::False } else { QfFormula::True };
            }
        }
    }

    // Absorption: a dual-connective child containing a sibling as one of
    // its own children is implied by (resp. implies) that sibling.
    let absorbed = |p: &&QfFormula| match p {
        QfFormula::Or(qs) if conjunction => qs.iter().any(|q| seen.contains(q)),
        QfFormula::And(qs) if !conjunction => qs.iter().any(|q| seen.contains(q)),
        _ => false,
    };
    let survivors: Vec<QfFormula> =
        kept.iter().filter(|p| !absorbed(p)).map(|p| (*p).clone()).collect();

    if conjunction {
        QfFormula::and(survivors)
    } else {
        QfFormula::or(survivors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_constraints::{Atom, ConstraintOp, Polynomial, Var};

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    #[test]
    fn ae_simplify_semantics() {
        let eq = atom(z(0) - z(1), ConstraintOp::Eq);
        let f = QfFormula::or([eq.clone(), atom(z(0), ConstraintOp::Lt)]);
        assert_eq!(ae_simplify(&f), atom(z(0), ConstraintOp::Lt));
        assert_eq!(ae_simplify(&eq), QfFormula::False);
        assert_eq!(ae_simplify(&eq.negated()), QfFormula::True);
    }

    #[test]
    fn fold_decides_even_power_atoms() {
        let f = atom(z(0) * z(0) + z(1) * z(1), ConstraintOp::Ge);
        assert_eq!(simplify_atoms(&f.nnf(), true), QfFormula::True);
        // Without fold the atom survives (it is neither Eq nor Ne).
        assert_eq!(simplify_atoms(&f.nnf(), false), f);
    }

    #[test]
    fn nested_absorption_resolves_in_one_bottom_up_pass() {
        let a = atom(z(0), ConstraintOp::Lt);
        let b = atom(z(1), ConstraintOp::Gt);
        // α ∧ (α ∨ (α ∧ β)): inner Or absorbs to α, outer And dedups.
        let f = QfFormula::And(vec![
            a.clone(),
            QfFormula::Or(vec![a.clone(), QfFormula::And(vec![a.clone(), b])]),
        ]);
        assert_eq!(normalize_node(&f), a);
    }

    #[test]
    fn annihilation_is_dual() {
        let a = atom(z(0) - z(1), ConstraintOp::Le);
        let na = atom(z(0) - z(1), ConstraintOp::Gt);
        assert_eq!(normalize_node(&QfFormula::And(vec![a.clone(), na.clone()])), QfFormula::False);
        assert_eq!(normalize_node(&QfFormula::Or(vec![a, na])), QfFormula::True);
    }
}
