//! Relational evaluation substrate (§2, Propositions 5.2/5.3, and the
//! §9 executor role).
//!
//! Layering: above `qarith-query`/`qarith-types`/`qarith-constraints`,
//! below `qarith-core` (which measures the formulas this crate
//! produces) and `qarith-serve` (which executes prepared candidate
//! sets). This crate is the bridge between queries/databases and the
//! real-valued constraint formulas that the measure machinery
//! consumes:
//!
//! * [`naive`] — active-domain evaluation of arbitrary FO(+,·,<) queries
//!   over databases, treating marked nulls as fresh distinct constants
//!   (the *naive evaluation* of §2, which is also evaluation proper on
//!   complete databases). Used by the zero-one law and as the test oracle
//!   for everything else.
//! * [`ground`] — the translation of Proposition 5.3: given a query `q`, a
//!   database `D`, and a candidate tuple `(a,s)`, produce a
//!   quantifier-free formula `φ(z̄)` over ⟨ℝ,+,·,<⟩ — one variable `z_i`
//!   per numerical null `⊤_i` — such that `ℝ ⊨ φ(z̄)` iff
//!   `v_z(a,s) ∈ q(v_z(D))`. Base nulls are handled by the bijective
//!   valuation of Proposition 5.2 (marked nulls already *are* fresh
//!   distinct constants under value equality, so no rewriting is needed).
//! * [`cq`] — a join-based executor for conjunctive queries that produces
//!   candidate answers together with their ground formulas *without* the
//!   exponential quantifier expansion: output tuples come from hash joins
//!   over the base columns, and numerical conditions involving nulls
//!   become residual constraint atoms (one conjunction per derivation,
//!   disjoined per candidate). This is the path the §9 experiments use —
//!   it plays the role Postgres played for the paper's authors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cq;
mod domain;
mod env;
mod error;
pub mod ground;
pub mod naive;

pub use domain::ActiveDomain;
pub use env::{term_to_polynomial, Bound, Env};
pub use error::EngineError;
