//! Naive (active-domain) evaluation of FO(+,·,<) queries.
//!
//! Marked nulls are treated as *fresh distinct constants* — the "naive
//! evaluation" of §2 of the paper, which on complete databases coincides
//! with ordinary evaluation. For generic queries (no interpreted numerical
//! operations) the zero-one law says naive answers are exactly the tuples
//! with μ = 1, so this module doubles as the fast path of the measure
//! pipeline and as the test oracle for grounding (evaluate on `v(D)` for
//! concrete valuations `v` and compare with `φ(v(z̄))`).
//!
//! Comparisons (`<`, `≤`, …) whose operands are not fully determined by
//! constants have no naive semantics and raise
//! [`EngineError::NullComparison`]; equalities between *atomic* values
//! (constants or nulls) follow the fresh-constant reading.

use qarith_constraints::Polynomial;
use qarith_numeric::Rational;
use qarith_query::{Arg, CompareOp, Formula, Query, TypedVar};
use qarith_types::{Database, NumNullId, Relation, Sort, Tuple, Value};

use crate::domain::ActiveDomain;
use crate::env::{base_term_value, null_var, term_to_polynomial, Bound, Env};
use crate::error::EngineError;

/// The result of reading a numerical polynomial as a naive value.
enum AtomicNum {
    /// A determined rational.
    Const(Rational),
    /// Exactly the null `⊤_i` (the polynomial `z_i`).
    Null(NumNullId),
    /// Anything else (arithmetic over nulls) — no naive semantics.
    Symbolic,
}

fn classify(p: &Polynomial) -> AtomicNum {
    if let Some(c) = p.as_constant() {
        return AtomicNum::Const(c);
    }
    // Is p exactly one variable with coefficient 1?
    let mut terms = p.terms();
    if let (Some((m, c)), None) = (terms.next(), terms.next()) {
        if *c == Rational::ONE && m.degree() == 1 {
            let (v, _) = m.factors()[0];
            return AtomicNum::Null(NumNullId(v.0));
        }
    }
    AtomicNum::Symbolic
}

/// Naive equality between two numerical polynomials: decided when both are
/// constants or both are atomic (fresh-constant semantics for nulls);
/// errors otherwise.
fn naive_num_eq(
    p: &Polynomial,
    q: &Polynomial,
    display: impl Fn() -> String,
) -> Result<bool, EngineError> {
    match (classify(p), classify(q)) {
        (AtomicNum::Const(a), AtomicNum::Const(b)) => Ok(a == b),
        (AtomicNum::Null(a), AtomicNum::Null(b)) => Ok(a == b),
        (AtomicNum::Const(_), AtomicNum::Null(_)) | (AtomicNum::Null(_), AtomicNum::Const(_)) => {
            Ok(false)
        }
        _ => {
            if p == q {
                // Structurally identical symbolic terms are equal under
                // every interpretation.
                Ok(true)
            } else {
                Err(EngineError::NullComparison { comparison: display() })
            }
        }
    }
}

/// Evaluates the body of a (validated) query under an environment.
pub fn holds(
    f: &Formula,
    db: &Database,
    dom: &ActiveDomain,
    env: &mut Env,
) -> Result<bool, EngineError> {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Rel { relation, args } => {
            let rel = db
                .relation(relation)
                .ok_or_else(|| EngineError::UnknownRelation { relation: relation.to_string() })?;
            rel_match(rel, args, env)
        }
        Formula::BaseEq(l, r) => Ok(base_term_value(l, env)? == base_term_value(r, env)?),
        Formula::Cmp(l, op, r) => {
            let pl = term_to_polynomial(l, env)?;
            let pr = term_to_polynomial(r, env)?;
            let display = || format!("{pl} {op} {pr}");
            match op {
                CompareOp::Eq => naive_num_eq(&pl, &pr, display),
                CompareOp::Ne => naive_num_eq(&pl, &pr, display).map(|b| !b),
                _ => match (classify(&pl), classify(&pr)) {
                    (AtomicNum::Const(a), AtomicNum::Const(b)) => Ok(op.holds(&a, &b)),
                    _ => Err(EngineError::NullComparison { comparison: display() }),
                },
            }
        }
        Formula::Not(inner) => Ok(!holds(inner, db, dom, env)?),
        Formula::And(parts) => {
            for p in parts {
                if !holds(p, db, dom, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(parts) => {
            for p in parts {
                if holds(p, db, dom, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Exists(vars, body) => quantify(vars, body, db, dom, env, false),
        Formula::Forall(vars, body) => quantify(vars, body, db, dom, env, true),
    }
}

fn quantify(
    vars: &[TypedVar],
    body: &Formula,
    db: &Database,
    dom: &ActiveDomain,
    env: &mut Env,
    universal: bool,
) -> Result<bool, EngineError> {
    match vars.split_first() {
        None => holds(body, db, dom, env),
        Some((v, rest)) => {
            let domain: &[Value] = match v.sort {
                Sort::Base => dom.base(),
                Sort::Num => dom.num(),
            };
            for value in domain {
                env.insert(v.name.clone(), Bound::from_value(value));
                let sub = quantify(rest, body, db, dom, env, universal)?;
                env.remove(&v.name);
                if sub != universal {
                    // ∃: a witness suffices; ∀: a counterexample refutes.
                    return Ok(!universal);
                }
            }
            Ok(universal)
        }
    }
}

fn rel_match(rel: &Relation, args: &[Arg], env: &Env) -> Result<bool, EngineError> {
    // Pre-evaluate the arguments once.
    enum Evaled {
        Base(Value),
        Num(Polynomial),
    }
    let mut evaled = Vec::with_capacity(args.len());
    for a in args {
        evaled.push(match a {
            Arg::Base(t) => Evaled::Base(base_term_value(t, env)?),
            Arg::Num(t) => Evaled::Num(term_to_polynomial(t, env)?),
        });
    }
    'tuples: for t in rel.tuples() {
        for (i, e) in evaled.iter().enumerate() {
            let cell = t.get(i);
            let matched = match e {
                Evaled::Base(v) => v == cell,
                Evaled::Num(p) => {
                    let pv = match cell {
                        Value::Num(r) => Polynomial::constant(*r),
                        Value::NumNull(id) => Polynomial::var(null_var(*id)),
                        other => panic!("sort-checked column holds {other}"),
                    };
                    naive_num_eq(p, &pv, || format!("{p} = {pv}"))?
                }
            };
            if !matched {
                continue 'tuples;
            }
        }
        return Ok(true);
    }
    Ok(false)
}

/// Naive answers of `query` on `db`: every assignment of active-domain
/// values to the free variables that satisfies the body. For a Boolean
/// query the result is either `[()]` (true) or `[]` (false).
pub fn evaluate(query: &Query, db: &Database) -> Result<Vec<Tuple>, EngineError> {
    let dom = ActiveDomain::collect(db, query, &[]);
    let mut env = Env::new();
    let mut out = Vec::new();
    enumerate_free(query.free_vars(), query, db, &dom, &mut env, &mut Vec::new(), &mut out)?;
    Ok(out)
}

fn enumerate_free(
    vars: &[TypedVar],
    query: &Query,
    db: &Database,
    dom: &ActiveDomain,
    env: &mut Env,
    prefix: &mut Vec<Value>,
    out: &mut Vec<Tuple>,
) -> Result<(), EngineError> {
    match vars.split_first() {
        None => {
            if holds(query.body(), db, dom, env)? {
                out.push(Tuple::new(prefix.clone()));
            }
            Ok(())
        }
        Some((v, rest)) => {
            let domain: &[Value] = match v.sort {
                Sort::Base => dom.base(),
                Sort::Num => dom.num(),
            };
            for value in domain {
                env.insert(v.name.clone(), Bound::from_value(value));
                prefix.push(value.clone());
                enumerate_free(rest, query, db, dom, env, prefix, out)?;
                prefix.pop();
                env.remove(&v.name);
            }
            Ok(())
        }
    }
}

/// Checks whether a specific candidate tuple is a naive answer:
/// binds the free variables to the candidate's values and evaluates.
pub fn holds_for_candidate(
    query: &Query,
    db: &Database,
    candidate: &Tuple,
) -> Result<bool, EngineError> {
    if candidate.arity() != query.arity() {
        return Err(EngineError::CandidateArity {
            expected: query.arity(),
            actual: candidate.arity(),
        });
    }
    let mut env = Env::new();
    for (i, v) in query.free_vars().iter().enumerate() {
        let value = candidate.get(i);
        if value.sort() != v.sort {
            return Err(EngineError::CandidateSort { position: i, expected: v.sort });
        }
        env.insert(v.name.clone(), Bound::from_value(value));
    }
    let dom = ActiveDomain::collect(db, query, candidate.values());
    holds(query.body(), db, &dom, &mut env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_query::{BaseTerm, NumTerm};
    use qarith_types::{BaseNullId, Column, RelationSchema};

    fn db_r(tuples: Vec<Vec<Value>>) -> Database {
        let mut db = Database::new();
        let schema = RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap();
        let mut r = Relation::empty(schema);
        for t in tuples {
            r.insert_values(t).unwrap();
        }
        db.add_relation(r).unwrap();
        db
    }

    fn q_select_all(db: &Database) -> Query {
        Query::new(
            vec![TypedVar::base("a"), TypedVar::num("x")],
            Formula::rel("R", vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))]),
            &db.catalog(),
        )
        .unwrap()
    }

    #[test]
    fn identity_query_returns_tuples_with_nulls() {
        // §2: on R = {(1, ⊥)}, returning R yields (1, ⊥) (Lipski
        // semantics), not ∅.
        let db = db_r(vec![vec![Value::int(1), Value::NumNull(NumNullId(0))]]);
        let q = q_select_all(&db);
        let answers = evaluate(&q, &db).unwrap();
        assert_eq!(answers, vec![Tuple::new(vec![Value::int(1), Value::NumNull(NumNullId(0))])]);
    }

    #[test]
    fn selection_with_comparison_on_constants() {
        let db =
            db_r(vec![vec![Value::int(1), Value::num(5)], vec![Value::int(2), Value::num(15)]]);
        let q = Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::cmp(NumTerm::var("x"), CompareOp::Gt, NumTerm::int(10)),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap();
        let answers = evaluate(&q, &db).unwrap();
        assert_eq!(answers, vec![Tuple::new(vec![Value::int(2)])]);
    }

    #[test]
    fn comparison_on_null_errors() {
        let db = db_r(vec![vec![Value::int(1), Value::NumNull(NumNullId(0))]]);
        let q = Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::cmp(NumTerm::var("x"), CompareOp::Gt, NumTerm::int(10)),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap();
        assert!(matches!(evaluate(&q, &db), Err(EngineError::NullComparison { .. })));
    }

    #[test]
    fn null_equality_follows_fresh_constant_semantics() {
        // R = {(1, ⊤0), (2, ⊤0), (3, ⊤1)}; q(a,b) = ∃x R(a,x) ∧ R(b,x) ∧ ¬a=b
        let db = db_r(vec![
            vec![Value::int(1), Value::NumNull(NumNullId(0))],
            vec![Value::int(2), Value::NumNull(NumNullId(0))],
            vec![Value::int(3), Value::NumNull(NumNullId(1))],
        ]);
        let q = Query::new(
            vec![TypedVar::base("a"), TypedVar::base("b")],
            Formula::exists(
                vec![TypedVar::num("x")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::var("b")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::not(Formula::base_eq(BaseTerm::var("a"), BaseTerm::var("b"))),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap();
        let mut answers = evaluate(&q, &db).unwrap();
        answers.sort();
        // Only ids 1 and 2 share the same null ⊤0; ⊤1 matches nothing else.
        assert_eq!(
            answers,
            vec![
                Tuple::new(vec![Value::int(1), Value::int(2)]),
                Tuple::new(vec![Value::int(2), Value::int(1)]),
            ]
        );
    }

    #[test]
    fn universal_quantification() {
        // ∀x:num R("all", x)? On a db where "all" pairs with every num value.
        let db = db_r(vec![
            vec![Value::str("all"), Value::num(1)],
            vec![Value::str("all"), Value::num(2)],
            vec![Value::str("some"), Value::num(1)],
        ]);
        let q_all = Query::boolean(
            Formula::forall(
                vec![TypedVar::num("x")],
                Formula::rel(
                    "R",
                    vec![Arg::Base(BaseTerm::str("all")), Arg::Num(NumTerm::var("x"))],
                ),
            ),
            &db.catalog(),
        )
        .unwrap();
        assert_eq!(evaluate(&q_all, &db).unwrap().len(), 1);
        let q_some = Query::boolean(
            Formula::forall(
                vec![TypedVar::num("x")],
                Formula::rel(
                    "R",
                    vec![Arg::Base(BaseTerm::str("some")), Arg::Num(NumTerm::var("x"))],
                ),
            ),
            &db.catalog(),
        )
        .unwrap();
        assert!(evaluate(&q_some, &db).unwrap().is_empty());
    }

    #[test]
    fn candidate_check_matches_enumeration() {
        let db = db_r(vec![
            vec![Value::int(1), Value::num(5)],
            vec![Value::BaseNull(BaseNullId(0)), Value::num(7)],
        ]);
        let q = q_select_all(&db);
        let answers = evaluate(&q, &db).unwrap();
        for t in &answers {
            assert!(holds_for_candidate(&q, &db, t).unwrap());
        }
        let non_answer = Tuple::new(vec![Value::int(1), Value::num(7)]);
        assert!(!holds_for_candidate(&q, &db, &non_answer).unwrap());
        // Base null in a candidate works (fresh-constant semantics).
        let null_answer = Tuple::new(vec![Value::BaseNull(BaseNullId(0)), Value::num(7)]);
        assert!(holds_for_candidate(&q, &db, &null_answer).unwrap());
    }

    #[test]
    fn candidate_shape_is_checked() {
        let db = db_r(vec![vec![Value::int(1), Value::num(5)]]);
        let q = q_select_all(&db);
        assert!(matches!(
            holds_for_candidate(&q, &db, &Tuple::new(vec![Value::int(1)])),
            Err(EngineError::CandidateArity { .. })
        ));
        assert!(matches!(
            holds_for_candidate(&q, &db, &Tuple::new(vec![Value::num(1), Value::num(5)])),
            Err(EngineError::CandidateSort { position: 0, .. })
        ));
    }

    #[test]
    fn arithmetic_on_complete_data_works() {
        // x·x > 20 with x from data.
        let db = db_r(vec![vec![Value::int(1), Value::num(4)], vec![Value::int(2), Value::num(5)]]);
        let q = Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::cmp(
                        NumTerm::var("x").mul(NumTerm::var("x")),
                        CompareOp::Gt,
                        NumTerm::int(20),
                    ),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap();
        assert_eq!(evaluate(&q, &db).unwrap(), vec![Tuple::new(vec![Value::int(2)])]);
    }
}
