//! Join-based executor for conjunctive queries over incomplete databases.
//!
//! For a CQ `q(x̄) = ∃ȳ (R₁ ∧ … ∧ R_k ∧ eqs ∧ cmps)` the executor
//! enumerates join homomorphisms with hash indexes on base-sort columns
//! (base nulls join as fresh constants, per Proposition 5.2) and turns
//! every numerical condition that is not decided by constants into a
//! *residual* constraint atom over the null variables `z̄`. Each completed
//! homomorphism yields one output row: a candidate tuple plus the
//! conjunction of its residual atoms. The ground formula of a candidate is
//! the disjunction of its rows' conjunctions — exactly the
//! Proposition 5.3 formula, produced join-first instead of via
//! active-domain expansion.
//!
//! This module plays the role PostgreSQL played in the paper's §9
//! experiments: producing candidate answers and "a compact representation
//! of the formulae φ_{q,D,a,s}". [`CqOptions::limit`] mirrors the
//! `LIMIT n` clause of the paper's decision-support queries (stop after
//! `n` derivation rows); [`CqOptions::exhaustive`] instead scans all
//! derivations so that the per-candidate formula is complete (the mode
//! used when cross-checking against [`crate::ground`]).

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use qarith_constraints::{Atom, ConstraintOp, Polynomial, QfFormula};
use qarith_numeric::Rational;
use qarith_query::{Arg, BaseTerm, CompareOp, Formula, Ident, NumTerm, Query, TypedVar};
use qarith_types::{Database, Sort, Tuple, Value};

use crate::domain::ActiveDomain;
use crate::env::{null_var, term_to_polynomial, Bound, Env};
use crate::error::EngineError;
use crate::ground::constraint_op;

/// Execution options.
#[derive(Clone, Debug)]
pub struct CqOptions {
    /// Stop after this many derivation rows — SQL `LIMIT` semantics, as in
    /// the paper's queries (`LIMIT 25`). `None` scans everything.
    pub limit: Option<usize>,
    /// When `true`, `limit` counts *distinct candidates* instead of
    /// derivation rows. Nested-loop execution emits rows grouped by the
    /// outer relation, so row-counting LIMIT can return a single
    /// candidate 25 times; candidate-counting gives the analyst 25
    /// distinct results, which is what the paper's experiment analyzes.
    pub count_candidates: bool,
    /// When `true`, ignore `limit` while *collecting* derivations and only
    /// apply it to the number of distinct candidates, so each reported
    /// candidate carries its complete formula.
    pub exhaustive: bool,
    /// Cap on recorded derivations per candidate (guards against
    /// pathological fan-out; exceeding it sets
    /// [`CandidateAnswer::truncated`]).
    pub max_derivations_per_candidate: usize,
}

impl Default for CqOptions {
    fn default() -> Self {
        CqOptions {
            limit: None,
            count_candidates: false,
            exhaustive: true,
            max_derivations_per_candidate: 4096,
        }
    }
}

impl CqOptions {
    /// Paper-style options: `LIMIT n`, first-rows semantics.
    pub fn with_limit(n: usize) -> CqOptions {
        CqOptions { limit: Some(n), exhaustive: false, ..CqOptions::default() }
    }

    /// `LIMIT n` counting distinct candidates (see
    /// [`CqOptions::count_candidates`]).
    pub fn with_candidate_limit(n: usize) -> CqOptions {
        CqOptions {
            limit: Some(n),
            exhaustive: false,
            count_candidates: true,
            ..CqOptions::default()
        }
    }

    /// Options for an optional statement-level `LIMIT` — the one helper
    /// that carries a lowered SQL statement's limit into execution.
    /// `Some(n)` gives candidate-counting `LIMIT n` (the analyst sees `n`
    /// *distinct* results, as in the paper's §9 experiment); `None` scans
    /// exhaustively.
    pub fn for_limit(limit: Option<usize>) -> CqOptions {
        match limit {
            Some(n) => CqOptions::with_candidate_limit(n),
            None => CqOptions::default(),
        }
    }
}

/// One candidate answer with its ground formula.
#[derive(Clone, Debug)]
pub struct CandidateAnswer {
    /// The candidate tuple (values for the query head).
    pub tuple: Tuple,
    /// `φ(z̄)` — disjunction over the recorded derivations.
    ///
    /// `Arc`-shared: downstream batch plans, caches, and rehydrated
    /// answers all reference the same immutable tree instead of deep-
    /// cloning it per candidate (formula trees dominate candidate size
    /// on real workloads).
    pub formula: Arc<QfFormula>,
    /// Number of derivations recorded (0 when `certain`, whose formula
    /// collapses to `true`).
    pub derivations: usize,
    /// `true` iff some derivation had no residual constraints: the
    /// candidate is an answer under *every* valuation (μ = 1).
    pub certain: bool,
    /// `true` iff the per-candidate derivation cap was hit (the formula
    /// is then a sound under-approximation: μ(reported) ≤ μ(true)).
    pub truncated: bool,
}

/// The flattened body of a conjunctive query.
struct CqBody {
    rel_atoms: Vec<(Ident, Vec<Arg>)>,
    base_eqs: Vec<(BaseTerm, BaseTerm)>,
    cmps: Vec<(NumTerm, CompareOp, NumTerm)>,
    binders: Vec<TypedVar>,
}

fn decompose(f: &Formula, body: &mut CqBody) -> Result<(), EngineError> {
    match f {
        Formula::True => Ok(()),
        Formula::False => Err(EngineError::NotConjunctive { construct: "false" }),
        Formula::Rel { relation, args } => {
            body.rel_atoms.push((relation.clone(), args.clone()));
            Ok(())
        }
        Formula::BaseEq(l, r) => {
            body.base_eqs.push((l.clone(), r.clone()));
            Ok(())
        }
        Formula::Cmp(l, op, r) => {
            body.cmps.push((l.clone(), *op, r.clone()));
            Ok(())
        }
        Formula::And(parts) => {
            for p in parts {
                decompose(p, body)?;
            }
            Ok(())
        }
        Formula::Exists(vars, inner) => {
            body.binders.extend(vars.iter().cloned());
            decompose(inner, body)
        }
        Formula::Not(_) => Err(EngineError::NotConjunctive { construct: "negation" }),
        Formula::Or(_) => Err(EngineError::NotConjunctive { construct: "disjunction" }),
        Formula::Forall(..) => {
            Err(EngineError::NotConjunctive { construct: "universal quantification" })
        }
    }
}

/// A join-plan entry: one relation atom with a hash index on the base
/// columns that are bound when this atom is probed.
struct PlannedAtom<'a> {
    args: Vec<Arg>,
    key_cols: Vec<usize>,
    index: HashMap<Vec<Value>, Vec<u32>>,
    tuples: &'a [Tuple],
    all: Vec<u32>,
}

/// A numerical comparison filter with its variable support, applied as
/// soon as all variables are bound. (Base equalities never reach the
/// filter stage — they are absorbed by the [`Unifier`].)
struct PlannedFilter {
    lhs: NumTerm,
    op: CompareOp,
    rhs: NumTerm,
    vars: HashSet<Ident>,
}

/// Union-find over base terms, used to turn top-level equality filters
/// (`P.seg = M.seg`) into *shared variables*, so that equi-joins probe
/// hash indexes instead of filtering cross products. This is what makes
/// the 200K-tuple §9 workloads run in milliseconds: without it a
/// three-table query with equality predicates enumerates the full cross
/// product.
struct Unifier {
    map: HashMap<Ident, BaseTerm>,
}

impl Unifier {
    fn new() -> Unifier {
        Unifier { map: HashMap::new() }
    }

    /// Follows the substitution chain to the representative term.
    fn resolve(&self, t: &BaseTerm) -> BaseTerm {
        let mut cur = t.clone();
        loop {
            match &cur {
                BaseTerm::Var(x) => match self.map.get(x) {
                    Some(next) => cur = next.clone(),
                    None => return cur,
                },
                BaseTerm::Const(_) => return cur,
            }
        }
    }

    /// Merges the classes of `a` and `b`. Returns `false` if this equates
    /// two distinct constants (the query is unsatisfiable).
    fn union(&mut self, a: &BaseTerm, b: &BaseTerm) -> bool {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        if ra == rb {
            return true;
        }
        match (&ra, &rb) {
            (BaseTerm::Var(x), _) => {
                self.map.insert(x.clone(), rb);
                true
            }
            (_, BaseTerm::Var(y)) => {
                self.map.insert(y.clone(), ra);
                true
            }
            (BaseTerm::Const(_), BaseTerm::Const(_)) => false,
        }
    }
}

/// How a head (free) variable obtains its output value after
/// unification.
enum HeadBinding {
    /// Unified with a constant.
    Const(Value),
    /// Read from the environment under the canonical name.
    Var(Ident),
}

/// Executes a conjunctive query, returning candidates with ground
/// formulas, in first-derivation order.
pub fn execute(
    query: &Query,
    db: &Database,
    opts: &CqOptions,
) -> Result<Vec<CandidateAnswer>, EngineError> {
    let mut body = CqBody {
        rel_atoms: Vec::new(),
        base_eqs: Vec::new(),
        cmps: Vec::new(),
        binders: Vec::new(),
    };
    decompose(query.body(), &mut body)?;

    // Absorb top-level base equalities into shared variables. An
    // inconsistent constant equation makes the query unsatisfiable.
    let mut uni = Unifier::new();
    for (l, r) in &body.base_eqs {
        if !uni.union(l, r) {
            return Ok(Vec::new());
        }
    }
    body.base_eqs.clear();
    for (_, args) in &mut body.rel_atoms {
        for a in args.iter_mut() {
            if let Arg::Base(t) = a {
                *a = Arg::Base(uni.resolve(t));
            }
        }
    }

    let plan = plan_join(&body, db)?;

    let mut filters: Vec<PlannedFilter> = Vec::new();
    for (l, op, r) in &body.cmps {
        let mut vars = HashSet::new();
        l.visit_vars(&mut |x| {
            vars.insert(x.clone());
        });
        r.visit_vars(&mut |x| {
            vars.insert(x.clone());
        });
        filters.push(PlannedFilter { lhs: l.clone(), op: *op, rhs: r.clone(), vars });
    }

    // Head bindings resolve through the unifier.
    let head: Vec<HeadBinding> = query
        .free_vars()
        .iter()
        .map(|v| match v.sort {
            Sort::Base => match uni.resolve(&BaseTerm::Var(v.name.clone())) {
                BaseTerm::Const(c) => HeadBinding::Const(Value::Base(c)),
                BaseTerm::Var(x) => HeadBinding::Var(x),
            },
            Sort::Num => HeadBinding::Var(v.name.clone()),
        })
        .collect();

    // Variables not covered by any relation atom fall back to
    // active-domain enumeration (rare; needed for completeness). After
    // unification only canonical representatives need enumeration.
    let covered = covered_vars(&plan);
    let mut seen_uncovered: HashSet<Ident> = HashSet::new();
    let mut uncovered: Vec<TypedVar> = Vec::new();
    for v in query.free_vars().iter().chain(body.binders.iter()) {
        match v.sort {
            Sort::Base => match uni.resolve(&BaseTerm::Var(v.name.clone())) {
                BaseTerm::Const(_) => {}
                BaseTerm::Var(c) => {
                    if !covered.contains(&c) && seen_uncovered.insert(c.clone()) {
                        uncovered.push(TypedVar { name: c, sort: Sort::Base });
                    }
                }
            },
            Sort::Num => {
                if !covered.contains(&v.name) && seen_uncovered.insert(v.name.clone()) {
                    uncovered.push(v.clone());
                }
            }
        }
    }
    let dom = if uncovered.is_empty() { None } else { Some(ActiveDomain::collect(db, query, &[])) };

    let mut exec = Executor {
        plan: &plan,
        filters: &filters,
        applied: vec![false; filters.len()],
        head: &head,
        uncovered: &uncovered,
        dom: dom.as_ref(),
        opts,
        env: Env::new(),
        residuals: Vec::new(),
        rows_emitted: 0,
        order: Vec::new(),
        candidates: HashMap::new(),
        done: false,
    };
    exec.join(0)?;

    let Executor { order, mut candidates, .. } = exec;
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        if let Some(max) = opts.limit {
            if out.len() >= max {
                break;
            }
        }
        let state = candidates.remove(&key).expect("candidate recorded");
        let certain = state.certain;
        let derivations = state.disjuncts.len();
        let formula =
            Arc::new(if certain { QfFormula::True } else { QfFormula::or(state.disjuncts) });
        out.push(CandidateAnswer {
            tuple: key,
            formula,
            derivations,
            certain,
            truncated: state.truncated,
        });
    }
    Ok(out)
}

fn plan_join<'a>(body: &CqBody, db: &'a Database) -> Result<Vec<PlannedAtom<'a>>, EngineError> {
    let mut remaining: Vec<(Ident, Vec<Arg>)> = body.rel_atoms.clone();
    let mut bound: HashSet<Ident> = HashSet::new();
    let mut plan = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // Greedy: the atom with the most bound base arguments, ties broken
        // by smaller relation.
        let mut best = 0usize;
        let mut best_score: Option<(usize, usize)> = None;
        for (i, (rel, args)) in remaining.iter().enumerate() {
            let relation = db
                .relation(rel)
                .ok_or_else(|| EngineError::UnknownRelation { relation: rel.to_string() })?;
            let keys = args
                .iter()
                .filter(|a| match a {
                    Arg::Base(BaseTerm::Const(_)) => true,
                    Arg::Base(BaseTerm::Var(x)) => bound.contains(x),
                    Arg::Num(_) => false,
                })
                .count();
            let candidate_score = (keys, relation.len());
            let better = match best_score {
                None => true,
                Some((bk, bl)) => keys > bk || (keys == bk && relation.len() < bl),
            };
            if better {
                best_score = Some(candidate_score);
                best = i;
            }
        }
        let (rel, args) = remaining.remove(best);
        let relation = db
            .relation(&rel)
            .ok_or_else(|| EngineError::UnknownRelation { relation: rel.to_string() })?;
        let key_cols: Vec<usize> = args
            .iter()
            .enumerate()
            .filter(|(_, a)| match a {
                Arg::Base(BaseTerm::Const(_)) => true,
                Arg::Base(BaseTerm::Var(x)) => bound.contains(x),
                Arg::Num(_) => false,
            })
            .map(|(i, _)| i)
            .collect();

        let mut index: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        let mut all = Vec::with_capacity(relation.len());
        for (i, t) in relation.tuples().iter().enumerate() {
            all.push(i as u32);
            if !key_cols.is_empty() {
                let key: Vec<Value> = key_cols.iter().map(|&c| t.get(c).clone()).collect();
                index.entry(key).or_default().push(i as u32);
            }
        }

        for a in &args {
            match a {
                Arg::Base(BaseTerm::Var(x)) => {
                    bound.insert(x.clone());
                }
                Arg::Num(t) => t.visit_vars(&mut |x| {
                    bound.insert(x.clone());
                }),
                _ => {}
            }
        }
        plan.push(PlannedAtom { args, key_cols, index, tuples: relation.tuples(), all });
    }
    Ok(plan)
}

fn covered_vars(plan: &[PlannedAtom<'_>]) -> HashSet<Ident> {
    let mut out = HashSet::new();
    for p in plan {
        for a in &p.args {
            match a {
                Arg::Base(BaseTerm::Var(x)) => {
                    out.insert(x.clone());
                }
                // Only *bare* numerical variables get bound by matching a
                // relation column; arithmetic inside a relation argument
                // constrains, it does not bind.
                Arg::Num(NumTerm::Var(x)) => {
                    out.insert(x.clone());
                }
                _ => {}
            }
        }
    }
    out
}

/// Per-candidate accumulation.
struct CandidateState {
    disjuncts: Vec<QfFormula>,
    seen: HashSet<QfFormula>,
    certain: bool,
    truncated: bool,
}

struct Executor<'a> {
    plan: &'a [PlannedAtom<'a>],
    filters: &'a [PlannedFilter],
    applied: Vec<bool>,
    head: &'a [HeadBinding],
    uncovered: &'a [TypedVar],
    dom: Option<&'a ActiveDomain>,
    opts: &'a CqOptions,
    env: Env,
    residuals: Vec<Atom>,
    rows_emitted: usize,
    order: Vec<Tuple>,
    candidates: HashMap<Tuple, CandidateState>,
    done: bool,
}

impl<'a> Executor<'a> {
    fn join(&mut self, depth: usize) -> Result<(), EngineError> {
        if self.done {
            return Ok(());
        }
        if depth == self.plan.len() {
            return self.enumerate_uncovered(0);
        }
        let atom = &self.plan[depth];
        let ids: Vec<u32> = if atom.key_cols.is_empty() {
            atom.all.clone()
        } else {
            let mut key = Vec::with_capacity(atom.key_cols.len());
            for &c in &atom.key_cols {
                match &atom.args[c] {
                    Arg::Base(BaseTerm::Const(v)) => key.push(Value::Base(v.clone())),
                    Arg::Base(BaseTerm::Var(x)) => match self.env.get(x) {
                        Some(Bound::Base(v)) => key.push(v.clone()),
                        _ => return Err(EngineError::UnboundVariable { var: x.to_string() }),
                    },
                    Arg::Num(_) => unreachable!("numerical columns are never keys"),
                }
            }
            match atom.index.get(&key) {
                Some(v) => v.clone(),
                None => return Ok(()),
            }
        };
        for id in ids {
            if self.done {
                break;
            }
            self.try_tuple(depth, id as usize)?;
        }
        Ok(())
    }

    fn try_tuple(&mut self, depth: usize, id: usize) -> Result<(), EngineError> {
        let atom = &self.plan[depth];
        let tuple = &atom.tuples[id];

        let mut bound_here: Vec<Ident> = Vec::new();
        let residual_mark = self.residuals.len();
        let mut applied_here: Vec<usize> = Vec::new();
        let mut ok = true;

        for (col, arg) in atom.args.iter().enumerate() {
            let cell = tuple.get(col);
            match arg {
                Arg::Base(BaseTerm::Const(v)) => {
                    if Value::Base(v.clone()) != *cell {
                        ok = false;
                        break;
                    }
                }
                Arg::Base(BaseTerm::Var(x)) => match self.env.get(x) {
                    Some(Bound::Base(v)) => {
                        if v != cell {
                            ok = false;
                            break;
                        }
                    }
                    Some(Bound::Num(_)) => unreachable!("sort-checked"),
                    None => {
                        self.env.insert(x.clone(), Bound::Base(cell.clone()));
                        bound_here.push(x.clone());
                    }
                },
                Arg::Num(NumTerm::Var(x)) if !self.env.contains_key(x) => {
                    self.env.insert(x.clone(), Bound::from_num_value(cell));
                    bound_here.push(x.clone());
                }
                Arg::Num(t) => {
                    let p = term_to_polynomial(t, &self.env)?;
                    let pv = match cell {
                        Value::Num(r) => Polynomial::constant(*r),
                        Value::NumNull(nid) => Polynomial::var(null_var(*nid)),
                        other => panic!("sort-checked numerical column holds {other}"),
                    };
                    let diff = p.checked_sub(&pv)?;
                    match diff.as_constant() {
                        Some(c) if c.is_zero() => {}
                        Some(_) => {
                            ok = false;
                            break;
                        }
                        None => self.residuals.push(Atom::new(diff, ConstraintOp::Eq)),
                    }
                }
            }
        }

        if ok {
            ok = self.apply_ready_filters(&mut applied_here)?;
        }
        if ok {
            self.join(depth + 1)?;
        }

        // Backtrack.
        self.residuals.truncate(residual_mark);
        for i in applied_here {
            self.applied[i] = false;
        }
        for x in bound_here {
            self.env.remove(&x);
        }
        Ok(())
    }

    /// Applies every not-yet-applied filter whose variables are all bound.
    /// Returns `false` if a filter is definitely violated. Residual atoms
    /// are pushed; `applied_here` records indices for backtracking.
    fn apply_ready_filters(&mut self, applied_here: &mut Vec<usize>) -> Result<bool, EngineError> {
        for i in 0..self.filters.len() {
            if self.applied[i] {
                continue;
            }
            let pf = &self.filters[i];
            if !pf.vars.iter().all(|x| self.env.contains_key(x)) {
                continue;
            }
            let p = term_to_polynomial(&pf.lhs, &self.env)?
                .checked_sub(&term_to_polynomial(&pf.rhs, &self.env)?)?;
            let a = Atom::new(p, constraint_op(pf.op));
            match a.as_constant() {
                Some(true) => {}
                Some(false) => return Ok(false),
                None => self.residuals.push(a),
            }
            self.applied[i] = true;
            applied_here.push(i);
        }
        Ok(true)
    }

    fn enumerate_uncovered(&mut self, i: usize) -> Result<(), EngineError> {
        if i == self.uncovered.len() {
            // All filters must be applied now (all variables bound).
            let mut applied_here = Vec::new();
            let residual_mark = self.residuals.len();
            let ok = self.apply_ready_filters(&mut applied_here)?;
            if ok {
                self.emit_row()?;
            }
            self.residuals.truncate(residual_mark);
            for idx in applied_here {
                self.applied[idx] = false;
            }
            return Ok(());
        }
        let v = self.uncovered[i].clone();
        let dom = self.dom.expect("uncovered variables imply a domain");
        let values: Vec<Value> = match v.sort {
            Sort::Base => dom.base().to_vec(),
            Sort::Num => dom.num().to_vec(),
        };
        for value in values {
            if self.done {
                break;
            }
            self.env.insert(v.name.clone(), Bound::from_value(&value));
            self.enumerate_uncovered(i + 1)?;
            self.env.remove(&v.name);
        }
        Ok(())
    }

    fn emit_row(&mut self) -> Result<(), EngineError> {
        // Build the candidate tuple.
        let mut values = Vec::with_capacity(self.head.len());
        for hb in self.head {
            let value = match hb {
                HeadBinding::Const(v) => v.clone(),
                HeadBinding::Var(name) => match self.env.get(name) {
                    Some(Bound::Base(val)) => val.clone(),
                    Some(Bound::Num(p)) => poly_to_value(p).ok_or_else(|| {
                        EngineError::NullComparison { comparison: format!("head value {p}") }
                    })?,
                    None => return Err(EngineError::UnboundVariable { var: name.to_string() }),
                },
            };
            values.push(value);
        }
        let tuple = Tuple::new(values);

        let conj = QfFormula::and(self.residuals.iter().cloned().map(QfFormula::atom));
        let state = match self.candidates.entry(tuple.clone()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                self.order.push(tuple);
                e.insert(CandidateState {
                    disjuncts: Vec::new(),
                    seen: HashSet::new(),
                    certain: false,
                    truncated: false,
                })
            }
        };
        if conj == QfFormula::True {
            state.certain = true;
        } else if !state.certain {
            if state.disjuncts.len() >= self.opts.max_derivations_per_candidate {
                state.truncated = true;
            } else if state.seen.insert(conj.clone()) {
                state.disjuncts.push(conj);
            }
        }

        self.rows_emitted += 1;
        if !self.opts.exhaustive {
            if let Some(limit) = self.opts.limit {
                let reached = if self.opts.count_candidates {
                    self.order.len() >= limit
                } else {
                    self.rows_emitted >= limit
                };
                if reached {
                    self.done = true;
                }
            }
        }
        Ok(())
    }
}

/// Converts a head polynomial back into a value: constants and single null
/// variables only (free variables are bound via relation columns or domain
/// enumeration, so this always succeeds for validated queries).
fn poly_to_value(p: &Polynomial) -> Option<Value> {
    if let Some(c) = p.as_constant() {
        return Some(Value::Num(c));
    }
    let mut terms = p.terms();
    if let (Some((m, c)), None) = (terms.next(), terms.next()) {
        if *c == Rational::ONE && m.degree() == 1 {
            let (v, _) = m.factors()[0];
            return Some(Value::NumNull(qarith_types::NumNullId(v.0)));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_numeric::Rational;
    use qarith_types::{Column, NumNullId, Relation, RelationSchema};

    fn sales_db() -> Database {
        let mut db = Database::new();
        let products = RelationSchema::new(
            "Products",
            vec![Column::base("id"), Column::base("seg"), Column::num("rrp"), Column::num("dis")],
        )
        .unwrap();
        let mut p = Relation::empty(products);
        p.insert_values(vec![
            Value::int(1),
            Value::str("toys"),
            Value::num(10),
            Value::decimal("0.8"),
        ])
        .unwrap();
        p.insert_values(vec![
            Value::int(2),
            Value::str("toys"),
            Value::NumNull(NumNullId(0)),
            Value::decimal("0.7"),
        ])
        .unwrap();
        p.insert_values(vec![
            Value::int(3),
            Value::str("games"),
            Value::num(30),
            Value::decimal("0.9"),
        ])
        .unwrap();
        db.add_relation(p).unwrap();

        let market = RelationSchema::new(
            "Market",
            vec![Column::base("seg"), Column::num("rrp"), Column::num("dis")],
        )
        .unwrap();
        let mut m = Relation::empty(market);
        m.insert_values(vec![Value::str("toys"), Value::num(9), Value::num(1)]).unwrap();
        m.insert_values(vec![Value::str("games"), Value::NumNull(NumNullId(1)), Value::num(1)])
            .unwrap();
        db.add_relation(m).unwrap();
        db
    }

    /// The "Competitive Advantage" shape: segments where our discounted
    /// price undercuts the market.
    fn advantage_query(db: &Database) -> Query {
        Query::new(
            vec![TypedVar::base("seg")],
            Formula::exists(
                vec![
                    TypedVar::base("id"),
                    TypedVar::num("rrp"),
                    TypedVar::num("dis"),
                    TypedVar::num("mrrp"),
                    TypedVar::num("mdis"),
                ],
                Formula::and(vec![
                    Formula::rel(
                        "Products",
                        vec![
                            Arg::Base(BaseTerm::var("id")),
                            Arg::Base(BaseTerm::var("seg")),
                            Arg::Num(NumTerm::var("rrp")),
                            Arg::Num(NumTerm::var("dis")),
                        ],
                    ),
                    Formula::rel(
                        "Market",
                        vec![
                            Arg::Base(BaseTerm::var("seg")),
                            Arg::Num(NumTerm::var("mrrp")),
                            Arg::Num(NumTerm::var("mdis")),
                        ],
                    ),
                    Formula::cmp(
                        NumTerm::var("rrp").mul(NumTerm::var("dis")),
                        CompareOp::Le,
                        NumTerm::var("mrrp").mul(NumTerm::var("mdis")),
                    ),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap()
    }

    #[test]
    fn residual_constraints_and_certainty() {
        let db = sales_db();
        let q = advantage_query(&db);
        let answers = execute(&q, &db, &CqOptions::default()).unwrap();
        assert_eq!(answers.len(), 2);

        // "toys": product 1 gives 10·0.8 = 8 ≤ 9·1 = 9 with no nulls —
        // certain. (Product 2 contributes a null-dependent derivation, but
        // one certain derivation suffices.)
        let toys = answers.iter().find(|a| a.tuple.get(0) == &Value::str("toys")).unwrap();
        assert!(toys.certain, "toys should be certain");
        assert_eq!(*toys.formula, QfFormula::True);

        // "games": 30·0.9 = 27 ≤ z1·1 — a genuine residual constraint.
        let games = answers.iter().find(|a| a.tuple.get(0) == &Value::str("games")).unwrap();
        assert!(!games.certain);
        assert_eq!(games.derivations, 1);
        // z1 ≥ 27 ⇒ satisfied at 30, violated at 20. The formula is over
        // Var(1) (null ⊤1), so index 1 of the point vector matters.
        assert!(games.formula.eval_f64(&[0.0, 30.0]));
        assert!(!games.formula.eval_f64(&[0.0, 20.0]));
    }

    #[test]
    fn cq_matches_ground_on_every_candidate() {
        let db = sales_db();
        let q = advantage_query(&db);
        let answers = execute(&q, &db, &CqOptions::default()).unwrap();
        for ans in &answers {
            let phi = crate::ground::ground(&q, &db, &ans.tuple).unwrap();
            // Compare semantics at a grid of valuations of (z0, z1).
            for z0 in [-5.0, 0.0, 8.0, 12.0, 27.0, 30.0] {
                for z1 in [-5.0, 0.0, 20.0, 27.0, 30.0] {
                    let pt = [z0, z1];
                    assert_eq!(
                        ans.formula.eval_f64(&pt),
                        phi.eval_f64(&pt),
                        "candidate {:?} at {pt:?}",
                        ans.tuple
                    );
                }
            }
        }
    }

    #[test]
    fn limit_semantics_stop_early() {
        let db = sales_db();
        let q = advantage_query(&db);
        let answers = execute(&q, &db, &CqOptions::with_limit(1)).unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn non_conjunctive_rejected() {
        let db = sales_db();
        let q = Query::boolean(
            Formula::not(Formula::rel(
                "Market",
                vec![
                    Arg::Base(BaseTerm::str("toys")),
                    Arg::Num(NumTerm::int(1)),
                    Arg::Num(NumTerm::int(1)),
                ],
            )),
            &db.catalog(),
        )
        .unwrap();
        assert!(matches!(
            execute(&q, &db, &CqOptions::default()),
            Err(EngineError::NotConjunctive { .. })
        ));
    }

    #[test]
    fn repeated_variable_joins_within_atom() {
        // R(a, x, x): the second x occurrence becomes an equality residual
        // when cells differ symbolically, or a crisp check on constants.
        let mut db = Database::new();
        let schema =
            RelationSchema::new("R", vec![Column::base("a"), Column::num("x"), Column::num("y")])
                .unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![Value::int(1), Value::num(3), Value::num(3)]).unwrap();
        r.insert_values(vec![Value::int(2), Value::num(3), Value::num(4)]).unwrap();
        r.insert_values(vec![Value::int(3), Value::num(5), Value::NumNull(NumNullId(0))]).unwrap();
        db.add_relation(r).unwrap();
        let q = Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x")],
                Formula::rel(
                    "R",
                    vec![
                        Arg::Base(BaseTerm::var("a")),
                        Arg::Num(NumTerm::var("x")),
                        Arg::Num(NumTerm::var("x")),
                    ],
                ),
            ),
            &db.catalog(),
        )
        .unwrap();
        let answers = execute(&q, &db, &CqOptions::default()).unwrap();
        // Tuple 1: 3 = 3 certain. Tuple 2: 3 ≠ 4 pruned. Tuple 3: residual
        // 5 = ⊤0.
        assert_eq!(answers.len(), 2);
        let a1 = answers.iter().find(|a| a.tuple.get(0) == &Value::int(1)).unwrap();
        assert!(a1.certain);
        let a3 = answers.iter().find(|a| a.tuple.get(0) == &Value::int(3)).unwrap();
        assert!(!a3.certain);
        assert!(a3.formula.eval_f64(&[5.0]));
        assert!(!a3.formula.eval_f64(&[4.0]));
    }

    #[test]
    fn head_nulls_surface_in_candidates() {
        // q(x) = ∃a R(a, x): the null ⊤0 appears as a candidate value.
        let mut db = Database::new();
        let schema = RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![Value::int(1), Value::NumNull(NumNullId(0))]).unwrap();
        r.insert_values(vec![Value::int(2), Value::num(9)]).unwrap();
        db.add_relation(r).unwrap();
        let q = Query::new(
            vec![TypedVar::num("x")],
            Formula::exists(
                vec![TypedVar::base("a")],
                Formula::rel("R", vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))]),
            ),
            &db.catalog(),
        )
        .unwrap();
        let answers = execute(&q, &db, &CqOptions::default()).unwrap();
        let tuples: Vec<&Value> = answers.iter().map(|a| a.tuple.get(0)).collect();
        assert!(tuples.contains(&&Value::NumNull(NumNullId(0))));
        assert!(tuples.contains(&&Value::num(9)));
        assert!(answers.iter().all(|a| a.certain));
    }

    #[test]
    fn uncovered_variable_enumerates_domain() {
        // q() = ∃x:num R(1, x) ∧ y < x with y not in any relation atom …
        // Actually bind y through nothing: ∃y (y < 3). y ranges over the
        // numerical active domain {3, 9}; 3 < 3 fails, 9 < 3 fails … then
        // the answer is empty. With ∃y (y < 9): y = 3 works — certain.
        let mut db = Database::new();
        let schema = RelationSchema::new("R", vec![Column::num("x")]).unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![Value::num(3)]).unwrap();
        r.insert_values(vec![Value::num(9)]).unwrap();
        db.add_relation(r).unwrap();
        let mk = |bound: i64| {
            Query::boolean(
                Formula::exists(
                    vec![TypedVar::num("y")],
                    Formula::cmp(NumTerm::var("y"), CompareOp::Lt, NumTerm::int(bound)),
                ),
                &db.catalog(),
            )
            .unwrap()
        };
        let sat = execute(&mk(9), &db, &CqOptions::default()).unwrap();
        assert_eq!(sat.len(), 1);
        assert!(sat[0].certain);
        let unsat = execute(&mk(3), &db, &CqOptions::default()).unwrap();
        assert!(unsat.is_empty());
    }

    #[test]
    fn derivation_cap_marks_truncation() {
        // Many derivations for one candidate: R has n rows ⇒ n disjuncts.
        let mut db = Database::new();
        let schema = RelationSchema::new("R", vec![Column::num("x")]).unwrap();
        let mut r = Relation::empty(schema);
        for i in 0..10 {
            r.insert_values(vec![Value::NumNull(NumNullId(i))]).unwrap();
        }
        db.add_relation(r).unwrap();
        let q = Query::boolean(
            Formula::exists(
                vec![TypedVar::num("x")],
                Formula::and(vec![
                    Formula::rel("R", vec![Arg::Num(NumTerm::var("x"))]),
                    Formula::cmp(NumTerm::var("x"), CompareOp::Gt, NumTerm::int(0)),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap();
        let opts = CqOptions { max_derivations_per_candidate: 3, ..CqOptions::default() };
        let answers = execute(&q, &db, &opts).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers[0].truncated);
        assert_eq!(answers[0].derivations, 3);

        let full = execute(&q, &db, &CqOptions::default()).unwrap();
        assert!(!full[0].truncated);
        assert_eq!(full[0].derivations, 10);
    }

    #[test]
    fn constant_rational_check() {
        // Rational arithmetic in filters: 0.7 · 10 = 7 exactly.
        let db = sales_db();
        let q = Query::boolean(
            Formula::cmp(
                NumTerm::decimal("0.7").mul(NumTerm::int(10)),
                CompareOp::Eq,
                NumTerm::int(7),
            ),
            &db.catalog(),
        )
        .unwrap();
        let answers = execute(&q, &db, &CqOptions::default()).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers[0].certain);
        assert_eq!(answers[0].tuple, Tuple::new(vec![]));
        let _ = Rational::ONE; // silence unused import in some cfgs
    }
}

#[cfg(test)]
mod unification_tests {
    use super::*;
    use qarith_types::{Column, NumNullId, Relation, RelationSchema};

    /// R(a: base, x: num), S(b: base, y: num), joined by the *filter*
    /// a = b (distinct variables) — the shape the SQL lowering produces.
    fn two_table_db() -> Database {
        let mut db = Database::new();
        let r = RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap();
        let mut rel = Relation::empty(r);
        rel.insert_values(vec![Value::int(1), Value::num(10)]).unwrap();
        rel.insert_values(vec![Value::int(2), Value::NumNull(NumNullId(0))]).unwrap();
        rel.insert_values(vec![Value::int(3), Value::num(30)]).unwrap();
        db.add_relation(rel).unwrap();
        let s = RelationSchema::new("S", vec![Column::base("b"), Column::num("y")]).unwrap();
        let mut rel = Relation::empty(s);
        rel.insert_values(vec![Value::int(1), Value::num(5)]).unwrap();
        rel.insert_values(vec![Value::int(2), Value::num(7)]).unwrap();
        db.add_relation(rel).unwrap();
        db
    }

    fn equi_join_query(db: &Database) -> Query {
        // q(a) = ∃x,b,y R(a,x) ∧ S(b,y) ∧ a = b ∧ x > y.
        Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x"), TypedVar::base("b"), TypedVar::num("y")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::rel(
                        "S",
                        vec![Arg::Base(BaseTerm::var("b")), Arg::Num(NumTerm::var("y"))],
                    ),
                    Formula::base_eq(BaseTerm::var("a"), BaseTerm::var("b")),
                    Formula::cmp(NumTerm::var("x"), CompareOp::Gt, NumTerm::var("y")),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap()
    }

    #[test]
    fn equality_filters_become_join_keys() {
        let db = two_table_db();
        let q = equi_join_query(&db);
        let answers = execute(&q, &db, &CqOptions::default()).unwrap();
        // a=1: 10 > 5 certain. a=2: ⊤0 > 7 residual. a=3: no S row.
        assert_eq!(answers.len(), 2);
        let a1 = answers.iter().find(|a| a.tuple.get(0) == &Value::int(1)).unwrap();
        assert!(a1.certain);
        let a2 = answers.iter().find(|a| a.tuple.get(0) == &Value::int(2)).unwrap();
        assert!(!a2.certain);
        assert!(a2.formula.eval_f64(&[8.0]));
        assert!(!a2.formula.eval_f64(&[6.0]));
    }

    #[test]
    fn unified_head_variable_resolves_through_alias() {
        // Head selects b, which is unified with a: output must carry the
        // value bound through R's column.
        let db = two_table_db();
        let q = Query::new(
            vec![TypedVar::base("b")],
            Formula::exists(
                vec![TypedVar::num("x"), TypedVar::base("a"), TypedVar::num("y")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::rel(
                        "S",
                        vec![Arg::Base(BaseTerm::var("b")), Arg::Num(NumTerm::var("y"))],
                    ),
                    Formula::base_eq(BaseTerm::var("a"), BaseTerm::var("b")),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap();
        let mut got: Vec<Value> = execute(&q, &db, &CqOptions::default())
            .unwrap()
            .into_iter()
            .map(|a| a.tuple.get(0).clone())
            .collect();
        got.sort();
        assert_eq!(got, vec![Value::int(1), Value::int(2)]);
    }

    #[test]
    fn unification_with_constants() {
        // a = 2 pins the variable; the candidate carries the constant.
        let db = two_table_db();
        let q = Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::base_eq(BaseTerm::var("a"), BaseTerm::int(2)),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap();
        let answers = execute(&q, &db, &CqOptions::default()).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].tuple.get(0), &Value::int(2));
    }

    #[test]
    fn contradictory_constant_equalities_yield_nothing() {
        let db = two_table_db();
        let q = Query::boolean(Formula::base_eq(BaseTerm::int(1), BaseTerm::int(2)), &db.catalog())
            .unwrap();
        assert!(execute(&q, &db, &CqOptions::default()).unwrap().is_empty());
        // And a consistent constant equality is a no-op.
        let q = Query::boolean(Formula::base_eq(BaseTerm::int(1), BaseTerm::int(1)), &db.catalog())
            .unwrap();
        assert_eq!(execute(&q, &db, &CqOptions::default()).unwrap().len(), 1);
    }

    #[test]
    fn candidate_counting_limit() {
        let db = two_table_db();
        let q = equi_join_query(&db);
        let one = execute(&q, &db, &CqOptions::with_candidate_limit(1)).unwrap();
        assert_eq!(one.len(), 1);
        let many = execute(&q, &db, &CqOptions::with_candidate_limit(10)).unwrap();
        assert_eq!(many.len(), 2, "limit above candidate count returns all");
    }
}
