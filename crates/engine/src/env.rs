use std::collections::HashMap;

use qarith_constraints::{Polynomial, Var};
use qarith_query::{BaseTerm, Ident, NumTerm};
use qarith_types::{NumNullId, Value};

use crate::error::EngineError;

/// A variable binding during evaluation/grounding.
///
/// Base variables bind to [`Value`]s of the base sort (constants or base
/// nulls — under the bijective valuation of Proposition 5.2 a base null
/// simply *is* a fresh constant, and [`Value`] equality implements exactly
/// that semantics). Numerical variables bind to [`Polynomial`]s over the
/// null variables `z_i`: a rational constant binds as a constant
/// polynomial, the null `⊤_i` binds as the variable `z_i`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Bound {
    /// A base-sort binding.
    Base(Value),
    /// A numerical binding, symbolic over the null variables.
    Num(Polynomial),
}

impl Bound {
    /// Converts a numerical database value into its symbolic form.
    pub fn from_num_value(v: &Value) -> Bound {
        match v {
            Value::Num(r) => Bound::Num(Polynomial::constant(*r)),
            Value::NumNull(id) => Bound::Num(Polynomial::var(null_var(*id))),
            other => panic!("not a numerical value: {other}"),
        }
    }

    /// Converts any database value into a binding.
    pub fn from_value(v: &Value) -> Bound {
        match v {
            Value::Base(_) | Value::BaseNull(_) => Bound::Base(v.clone()),
            _ => Bound::from_num_value(v),
        }
    }
}

/// The formula variable standing for the numerical null `⊤_i`
/// (Proposition 5.3 associates `z_i` with `⊤_i`).
pub fn null_var(id: NumNullId) -> Var {
    Var(id.0)
}

/// An evaluation environment: variable name → binding.
pub type Env = HashMap<Ident, Bound>;

/// Evaluates a base term to a value under `env`.
pub fn base_term_value(t: &BaseTerm, env: &Env) -> Result<Value, EngineError> {
    match t {
        BaseTerm::Const(c) => Ok(Value::Base(c.clone())),
        BaseTerm::Var(x) => match env.get(x) {
            Some(Bound::Base(v)) => Ok(v.clone()),
            _ => Err(EngineError::UnboundVariable { var: x.to_string() }),
        },
    }
}

/// Symbolically evaluates a numerical term to a polynomial over the null
/// variables `z̄` under `env` — the term-level core of the Proposition 5.3
/// translation.
pub fn term_to_polynomial(t: &NumTerm, env: &Env) -> Result<Polynomial, EngineError> {
    Ok(match t {
        NumTerm::Const(r) => Polynomial::constant(*r),
        NumTerm::Var(x) => match env.get(x) {
            Some(Bound::Num(p)) => p.clone(),
            _ => return Err(EngineError::UnboundVariable { var: x.to_string() }),
        },
        NumTerm::Add(a, b) => {
            term_to_polynomial(a, env)?.checked_add(&term_to_polynomial(b, env)?)?
        }
        NumTerm::Sub(a, b) => {
            term_to_polynomial(a, env)?.checked_sub(&term_to_polynomial(b, env)?)?
        }
        NumTerm::Mul(a, b) => {
            term_to_polynomial(a, env)?.checked_mul(&term_to_polynomial(b, env)?)?
        }
        NumTerm::Neg(a) => term_to_polynomial(a, env)?.negated(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_numeric::Rational;
    use std::sync::Arc;

    fn env_with(name: &str, b: Bound) -> Env {
        let mut e = Env::new();
        e.insert(Arc::from(name), b);
        e
    }

    #[test]
    fn null_var_mapping() {
        assert_eq!(null_var(NumNullId(7)), Var(7));
    }

    #[test]
    fn base_term_evaluation() {
        let env = env_with("x", Bound::Base(Value::str("a")));
        assert_eq!(base_term_value(&BaseTerm::var("x"), &env).unwrap(), Value::str("a"));
        assert_eq!(base_term_value(&BaseTerm::int(3), &env).unwrap(), Value::int(3));
        assert!(base_term_value(&BaseTerm::var("y"), &env).is_err());
    }

    #[test]
    fn symbolic_term_evaluation() {
        // y bound to ⊤2: 0.7·y − 3 becomes 7/10·z2 − 3.
        let env = env_with("y", Bound::from_num_value(&Value::NumNull(NumNullId(2))));
        let t = NumTerm::decimal("0.7").mul(NumTerm::var("y")).sub(NumTerm::int(3));
        let p = term_to_polynomial(&t, &env).unwrap();
        let expected = Polynomial::constant(Rational::new(7, 10))
            .checked_mul(&Polynomial::var(Var(2)))
            .unwrap()
            .checked_sub(&Polynomial::constant(Rational::from_int(3)))
            .unwrap();
        assert_eq!(p, expected);
    }

    #[test]
    fn constant_bindings_fold() {
        let env = env_with("y", Bound::from_num_value(&Value::num(4)));
        let t = NumTerm::var("y").mul(NumTerm::var("y")).add(NumTerm::int(1));
        let p = term_to_polynomial(&t, &env).unwrap();
        assert_eq!(p.as_constant(), Some(Rational::from_int(17)));
    }

    #[test]
    fn num_binding_from_value() {
        assert_eq!(
            Bound::from_value(&Value::num(2)),
            Bound::Num(Polynomial::constant(Rational::from_int(2)))
        );
        assert_eq!(
            Bound::from_value(&Value::NumNull(NumNullId(0))),
            Bound::Num(Polynomial::var(Var(0)))
        );
        assert_eq!(Bound::from_value(&Value::int(1)), Bound::Base(Value::int(1)));
    }
}
