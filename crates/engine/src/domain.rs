use std::collections::BTreeSet;

use qarith_query::{Arg, Formula, NumTerm, Query};
use qarith_types::{Database, Value};

/// The active domain over which quantifiers range (§3 semantics: "a
/// witness is found among elements of `C_base(D)` / `C_num(D)`", extended
/// with the constants of the query and of the candidate tuple, and — for
/// grounding per Proposition 5.3 — with the numerical *nulls* of `D`).
///
/// Both domains are kept as ordered, deduplicated vectors of [`Value`]s so
/// that evaluation is deterministic.
#[derive(Clone, Debug)]
pub struct ActiveDomain {
    base: Vec<Value>,
    num: Vec<Value>,
}

impl ActiveDomain {
    /// Collects the active domain of `db` extended with the constants
    /// mentioned by `query` and the values of `extra` (typically the
    /// candidate tuple).
    pub fn collect(db: &Database, query: &Query, extra: &[Value]) -> ActiveDomain {
        let mut base: BTreeSet<Value> = BTreeSet::new();
        let mut num: BTreeSet<Value> = BTreeSet::new();

        for (_, tuple) in db.iter_tuples() {
            for v in tuple.values() {
                match v {
                    Value::Base(_) | Value::BaseNull(_) => {
                        base.insert(v.clone());
                    }
                    Value::Num(_) | Value::NumNull(_) => {
                        num.insert(v.clone());
                    }
                }
            }
        }

        Self::collect_query_constants(query.body(), &mut base, &mut num);

        for v in extra {
            match v {
                Value::Base(_) | Value::BaseNull(_) => {
                    base.insert(v.clone());
                }
                Value::Num(_) | Value::NumNull(_) => {
                    num.insert(v.clone());
                }
            }
        }

        ActiveDomain { base: base.into_iter().collect(), num: num.into_iter().collect() }
    }

    fn collect_query_constants(f: &Formula, base: &mut BTreeSet<Value>, num: &mut BTreeSet<Value>) {
        let mut add_num_term = |t: &NumTerm| {
            // Collect constants from terms recursively.
            fn walk(t: &NumTerm, num: &mut BTreeSet<Value>) {
                match t {
                    NumTerm::Const(r) => {
                        num.insert(Value::Num(*r));
                    }
                    NumTerm::Var(_) => {}
                    NumTerm::Add(a, b) | NumTerm::Sub(a, b) | NumTerm::Mul(a, b) => {
                        walk(a, num);
                        walk(b, num);
                    }
                    NumTerm::Neg(a) => walk(a, num),
                }
            }
            walk(t, num);
        };
        match f {
            Formula::True | Formula::False => {}
            Formula::Rel { args, .. } => {
                for a in args {
                    match a {
                        Arg::Base(qarith_query::BaseTerm::Const(c)) => {
                            base.insert(Value::Base(c.clone()));
                        }
                        Arg::Base(_) => {}
                        Arg::Num(t) => add_num_term(t),
                    }
                }
            }
            Formula::BaseEq(l, r) => {
                for t in [l, r] {
                    if let qarith_query::BaseTerm::Const(c) = t {
                        base.insert(Value::Base(c.clone()));
                    }
                }
            }
            Formula::Cmp(l, _, r) => {
                add_num_term(l);
                add_num_term(r);
            }
            Formula::Not(inner) => Self::collect_query_constants(inner, base, num),
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts {
                    Self::collect_query_constants(p, base, num);
                }
            }
            Formula::Exists(_, body) | Formula::Forall(_, body) => {
                Self::collect_query_constants(body, base, num);
            }
        }
    }

    /// Base-sort domain elements (constants and base nulls).
    pub fn base(&self) -> &[Value] {
        &self.base
    }

    /// Numerical domain elements (constants and numerical nulls).
    pub fn num(&self) -> &[Value] {
        &self.num
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_query::{CompareOp, TypedVar};
    use qarith_types::{Column, Relation, RelationSchema};

    fn small_db() -> Database {
        let mut db = Database::new();
        let schema = RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![Value::str("u"), Value::num(3)]).unwrap();
        r.insert_values(vec![
            Value::BaseNull(qarith_types::BaseNullId(0)),
            Value::NumNull(qarith_types::NumNullId(0)),
        ])
        .unwrap();
        db.add_relation(r).unwrap();
        db
    }

    #[test]
    fn domain_includes_db_values_query_constants_and_extras() {
        let db = small_db();
        let q = Query::new(
            vec![TypedVar::num("y")],
            Formula::cmp(NumTerm::var("y"), CompareOp::Lt, NumTerm::decimal("2.5")),
            &db.catalog(),
        )
        .unwrap();
        let dom = ActiveDomain::collect(&db, &q, &[Value::num(99)]);
        assert!(dom.base().contains(&Value::str("u")));
        assert!(dom.base().contains(&Value::BaseNull(qarith_types::BaseNullId(0))));
        assert!(dom.num().contains(&Value::num(3)));
        assert!(dom.num().contains(&Value::NumNull(qarith_types::NumNullId(0))));
        assert!(dom.num().contains(&Value::decimal("2.5")));
        assert!(dom.num().contains(&Value::num(99)));
        assert_eq!(dom.base().len(), 2);
        assert_eq!(dom.num().len(), 4);
    }

    #[test]
    fn domains_are_deduplicated_and_sorted() {
        let db = small_db();
        let q = Query::boolean(
            Formula::cmp(NumTerm::int(3), CompareOp::Eq, NumTerm::int(3)),
            &db.catalog(),
        )
        .unwrap();
        let dom = ActiveDomain::collect(&db, &q, &[Value::num(3), Value::num(3)]);
        let count = dom.num().iter().filter(|v| **v == Value::num(3)).count();
        assert_eq!(count, 1);
    }
}
