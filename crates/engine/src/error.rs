use std::fmt;

use qarith_constraints::FormulaError;
use qarith_numeric::NumericError;
use qarith_types::Sort;

/// Errors produced during evaluation and grounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A query references a relation the database does not store.
    UnknownRelation {
        /// Missing relation name.
        relation: String,
    },
    /// A variable occurrence had no binding (only reachable with queries
    /// that bypassed validation).
    UnboundVariable {
        /// The variable.
        var: String,
    },
    /// Naive evaluation hit an order/arithmetic comparison whose operands
    /// involve nulls. Such comparisons have no naive semantics — this is
    /// exactly why the paper introduces the measure μ; callers should use
    /// the grounding + measure pipeline instead.
    NullComparison {
        /// Display form of the offending comparison.
        comparison: String,
    },
    /// The candidate tuple does not match the query head's arity.
    CandidateArity {
        /// Declared number of free variables.
        expected: usize,
        /// Candidate width.
        actual: usize,
    },
    /// The candidate tuple's value sorts do not match the query head.
    CandidateSort {
        /// Position in the head.
        position: usize,
        /// Declared sort.
        expected: Sort,
    },
    /// The CQ executor was handed a query outside the ∃,∧-fragment.
    NotConjunctive {
        /// The connective that broke conjunctivity.
        construct: &'static str,
    },
    /// Exact arithmetic overflowed.
    Numeric(NumericError),
    /// Formula manipulation failed (e.g. DNF blowup in the CQ path).
    Formula(FormulaError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRelation { relation } => {
                write!(f, "database has no relation {relation}")
            }
            EngineError::UnboundVariable { var } => write!(f, "unbound variable {var}"),
            EngineError::NullComparison { comparison } => write!(
                f,
                "naive evaluation cannot decide {comparison} (operands involve nulls); \
                 use the certainty-measure pipeline"
            ),
            EngineError::CandidateArity { expected, actual } => {
                write!(f, "candidate has width {actual}, query head has {expected}")
            }
            EngineError::CandidateSort { position, expected } => {
                write!(f, "candidate component {position} should have sort {expected}")
            }
            EngineError::NotConjunctive { construct } => write!(
                f,
                "the conjunctive-query executor cannot handle {construct}; \
                 use the generic grounding path"
            ),
            EngineError::Numeric(e) => write!(f, "numeric error: {e}"),
            EngineError::Formula(e) => write!(f, "formula error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<NumericError> for EngineError {
    fn from(e: NumericError) -> Self {
        EngineError::Numeric(e)
    }
}

impl From<FormulaError> for EngineError {
    fn from(e: FormulaError) -> Self {
        EngineError::Formula(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let e: EngineError = NumericError::DivisionByZero.into();
        assert!(e.to_string().contains("division by zero"));
        let e = EngineError::NullComparison { comparison: "⊤1 < 3".into() };
        assert!(e.to_string().contains("⊤1 < 3"));
    }
}
