//! The grounding translation of Proposition 5.3.
//!
//! Given a query `q(x̄,ȳ)`, a database `D`, and a candidate tuple `(a,s)`,
//! [`ground`] constructs a quantifier-free formula `φ(z̄)` over
//! ⟨ℝ,+,·,<⟩ — with one variable `z_i` per numerical null `⊤_i` of `D` —
//! such that for every assignment `z̄ ↦ v̄` of reals:
//!
//! > `ℝ ⊨ φ(v̄)`  iff  `v_z(a,s) ∈ q(v_z(D))`,
//!
//! where `v_z` interprets `⊤_i` as `v_i`. Then `μ(q, D, (a,s)) = ν(φ)`
//! (Theorem 5.4), and the measure machinery takes over.
//!
//! The construction follows the paper literally:
//!
//! * base nulls are *fresh distinct constants* (Proposition 5.2's
//!   bijective valuation) — marked-null value equality already implements
//!   this, so no database rewriting is required;
//! * quantifiers over base variables become finite connectives over the
//!   base active domain; quantifiers over numerical variables become
//!   finite connectives over `C_num(D) ∪ N_num(D)` (plus query/candidate
//!   constants);
//! * a relation atom `R(c̄, ū)` becomes the disjunction, over the tuples
//!   of `R^D`, of conjunctions of coordinate-wise equalities (base
//!   equalities are decided eagerly; numerical ones become polynomial
//!   atoms);
//! * numerical comparisons `t ⋈ t′` become polynomial atoms
//!   `p_t − p_{t′} ⋈ 0`.
//!
//! The output size is polynomial in `|D|` for a fixed query — but
//! exponential in the number of quantifiers (data complexity is the
//! paper's yardstick, and the query is fixed there). The conjunctive
//! executor in [`crate::cq`] avoids the expansion for CQs.

use qarith_constraints::{Atom, ConstraintOp, Polynomial, QfFormula};
use qarith_query::{Arg, CompareOp, Formula, Query, TypedVar};
use qarith_types::{Database, Sort, Tuple, Value};

use crate::domain::ActiveDomain;
use crate::env::{base_term_value, null_var, term_to_polynomial, Bound, Env};
use crate::error::EngineError;

/// Maps the query-language comparison to the constraint-language operator.
pub fn constraint_op(op: CompareOp) -> ConstraintOp {
    match op {
        CompareOp::Lt => ConstraintOp::Lt,
        CompareOp::Le => ConstraintOp::Le,
        CompareOp::Eq => ConstraintOp::Eq,
        CompareOp::Ne => ConstraintOp::Ne,
        CompareOp::Gt => ConstraintOp::Gt,
        CompareOp::Ge => ConstraintOp::Ge,
    }
}

/// Grounds `query` on `db` for `candidate`, producing `φ(z̄)`.
///
/// The candidate must match the query head in arity and sorts; its base
/// components may be constants or base nulls of `D`, its numerical
/// components rationals or numerical nulls of `D` (the paper's tuples
/// "over `C(D) ∪ N(D)`").
pub fn ground(query: &Query, db: &Database, candidate: &Tuple) -> Result<QfFormula, EngineError> {
    if candidate.arity() != query.arity() {
        return Err(EngineError::CandidateArity {
            expected: query.arity(),
            actual: candidate.arity(),
        });
    }
    let mut env = Env::new();
    for (i, v) in query.free_vars().iter().enumerate() {
        let value = candidate.get(i);
        if value.sort() != v.sort {
            return Err(EngineError::CandidateSort { position: i, expected: v.sort });
        }
        env.insert(v.name.clone(), Bound::from_value(value));
    }
    let dom = ActiveDomain::collect(db, query, candidate.values());
    translate(query.body(), db, &dom, &mut env)
}

fn translate(
    f: &Formula,
    db: &Database,
    dom: &ActiveDomain,
    env: &mut Env,
) -> Result<QfFormula, EngineError> {
    Ok(match f {
        Formula::True => QfFormula::True,
        Formula::False => QfFormula::False,
        Formula::BaseEq(l, r) => {
            // Base equality is crisp under the fresh-constant reading of
            // base nulls: decide now.
            if base_term_value(l, env)? == base_term_value(r, env)? {
                QfFormula::True
            } else {
                QfFormula::False
            }
        }
        Formula::Cmp(l, op, r) => {
            let p = term_to_polynomial(l, env)?.checked_sub(&term_to_polynomial(r, env)?)?;
            QfFormula::atom(Atom::new(p, constraint_op(*op)))
        }
        Formula::Rel { relation, args } => {
            let rel = db
                .relation(relation)
                .ok_or_else(|| EngineError::UnknownRelation { relation: relation.to_string() })?;
            // Pre-evaluate arguments.
            enum Evaled {
                Base(Value),
                Num(Polynomial),
            }
            let mut evaled = Vec::with_capacity(args.len());
            for a in args {
                evaled.push(match a {
                    Arg::Base(t) => Evaled::Base(base_term_value(t, env)?),
                    Arg::Num(t) => Evaled::Num(term_to_polynomial(t, env)?),
                });
            }
            let mut disjuncts = Vec::new();
            'tuples: for t in rel.tuples() {
                let mut conj = Vec::new();
                for (i, e) in evaled.iter().enumerate() {
                    let cell = t.get(i);
                    match e {
                        Evaled::Base(v) => {
                            if v != cell {
                                continue 'tuples; // this tuple cannot match
                            }
                        }
                        Evaled::Num(p) => {
                            let pv = cell_poly(cell);
                            let diff = p.checked_sub(&pv)?;
                            match diff.as_constant() {
                                Some(c) if c.is_zero() => {}
                                Some(_) => continue 'tuples,
                                None => {
                                    conj.push(QfFormula::atom(Atom::new(diff, ConstraintOp::Eq)));
                                }
                            }
                        }
                    }
                }
                disjuncts.push(QfFormula::and(conj));
            }
            QfFormula::or(disjuncts)
        }
        Formula::Not(inner) => translate(inner, db, dom, env)?.negated(),
        Formula::And(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                let g = translate(p, db, dom, env)?;
                if g == QfFormula::False {
                    return Ok(QfFormula::False);
                }
                out.push(g);
            }
            QfFormula::and(out)
        }
        Formula::Or(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                let g = translate(p, db, dom, env)?;
                if g == QfFormula::True {
                    return Ok(QfFormula::True);
                }
                out.push(g);
            }
            QfFormula::or(out)
        }
        Formula::Exists(vars, body) => expand(vars, body, db, dom, env, false)?,
        Formula::Forall(vars, body) => expand(vars, body, db, dom, env, true)?,
    })
}

fn expand(
    vars: &[TypedVar],
    body: &Formula,
    db: &Database,
    dom: &ActiveDomain,
    env: &mut Env,
    universal: bool,
) -> Result<QfFormula, EngineError> {
    match vars.split_first() {
        None => translate(body, db, dom, env),
        Some((v, rest)) => {
            let domain: &[Value] = match v.sort {
                Sort::Base => dom.base(),
                Sort::Num => dom.num(),
            };
            let mut parts = Vec::with_capacity(domain.len());
            for value in domain {
                env.insert(v.name.clone(), Bound::from_value(value));
                let sub = expand(rest, body, db, dom, env, universal)?;
                env.remove(&v.name);
                // Early exit on absorbing elements.
                if universal && sub == QfFormula::False {
                    return Ok(QfFormula::False);
                }
                if !universal && sub == QfFormula::True {
                    return Ok(QfFormula::True);
                }
                parts.push(sub);
            }
            Ok(if universal { QfFormula::and(parts) } else { QfFormula::or(parts) })
        }
    }
}

/// A numerical cell as a polynomial: `c` ↦ the constant `c`, `⊤_i` ↦ `z_i`.
fn cell_poly(cell: &Value) -> Polynomial {
    match cell {
        Value::Num(r) => Polynomial::constant(*r),
        Value::NumNull(id) => Polynomial::var(null_var(*id)),
        other => panic!("sort-checked numerical column holds {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_numeric::Rational;
    use qarith_query::{BaseTerm, NumTerm};
    use qarith_types::{BaseNullId, Column, NumNullId, Relation, RelationSchema};

    /// R(a: base, x: num) with the given rows.
    fn db_r(tuples: Vec<Vec<Value>>) -> Database {
        let mut db = Database::new();
        let schema = RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap();
        let mut r = Relation::empty(schema);
        for t in tuples {
            r.insert_values(t).unwrap();
        }
        db.add_relation(r).unwrap();
        db
    }

    #[test]
    fn boolean_query_with_one_null() {
        // q = ∃x R("k", x) ∧ x > 5, D = {R("k", ⊤0)} ⇒ φ = z0 − 5 > 0.
        let db = db_r(vec![vec![Value::str("k"), Value::NumNull(NumNullId(0))]]);
        let q = Query::boolean(
            Formula::exists(
                vec![TypedVar::num("x")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::str("k")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::cmp(NumTerm::var("x"), CompareOp::Gt, NumTerm::int(5)),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap();
        let phi = ground(&q, &db, &Tuple::new(vec![])).unwrap();
        // φ must hold exactly for z0 > 5.
        assert!(phi.eval_f64(&[6.0]));
        assert!(!phi.eval_f64(&[4.0]));
        assert!(!phi.eval_f64(&[5.0]));
    }

    #[test]
    fn grounding_agrees_with_evaluation_under_valuations() {
        // Cross-check Prop 5.3: ℝ ⊨ φ(v̄) iff v(a,s) ∈ q(v(D)).
        let db = db_r(vec![
            vec![Value::str("k"), Value::NumNull(NumNullId(0))],
            vec![Value::str("k"), Value::num(7)],
            vec![Value::str("m"), Value::NumNull(NumNullId(1))],
        ]);
        // q(a) = ∃x,y R(a,x) ∧ R(a,y) ∧ x < y  (needs two distinct rows per a
        // or a null interpretable two ways — exercises equality + order).
        let q = Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x"), TypedVar::num("y")],
                Formula::and(vec![
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::var("a")), Arg::Num(NumTerm::var("y"))],
                    ),
                    Formula::cmp(NumTerm::var("x"), CompareOp::Lt, NumTerm::var("y")),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap();
        let candidate = Tuple::new(vec![Value::str("k")]);
        let phi = ground(&q, &db, &candidate).unwrap();

        for (v0, v1) in [(3i64, 0i64), (7, 0), (9, 0), (7, 7), (0, 5)] {
            // Evaluate φ at (v0, v1).
            let sat = phi.eval_rational(&[Rational::from_int(v0), Rational::from_int(v1)]).unwrap();
            // Evaluate q on v(D) with the valuation ⊤0 ↦ v0, ⊤1 ↦ v1.
            let val = qarith_types::Valuation::new()
                .with_num(NumNullId(0), v0)
                .with_num(NumNullId(1), v1);
            let vdb = db.complete(&val).unwrap();
            let naive_sat = crate::naive::holds_for_candidate(&q, &vdb, &candidate).unwrap();
            assert_eq!(sat, naive_sat, "valuation ⊤0={v0}, ⊤1={v1}");
        }
    }

    #[test]
    fn base_nulls_are_fresh_constants() {
        // Excluded(⊥0): q = ∃i Excluded(i) ∧ ¬(i = "id2"): true because
        // ⊥0 is a fresh constant ≠ "id2" under the bijective valuation.
        let mut db = Database::new();
        let schema = RelationSchema::new("Excluded", vec![Column::base("id")]).unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![Value::BaseNull(BaseNullId(0))]).unwrap();
        db.add_relation(r).unwrap();
        let q = Query::boolean(
            Formula::exists(
                vec![TypedVar::base("i")],
                Formula::and(vec![
                    Formula::rel("Excluded", vec![Arg::Base(BaseTerm::var("i"))]),
                    Formula::not(Formula::base_eq(BaseTerm::var("i"), BaseTerm::str("id2"))),
                ]),
            ),
            &db.catalog(),
        )
        .unwrap();
        let phi = ground(&q, &db, &Tuple::new(vec![])).unwrap();
        assert_eq!(phi, QfFormula::True);
    }

    #[test]
    fn universal_quantifier_expands_to_conjunction() {
        // ∀x:num (R("k",x) → x ≥ 0) on D = {R("k",⊤0), R("k",3), R("m",-1)}.
        // Numerical domain = {⊤0, 3, −1, 0}; the atom only matches "k" rows,
        // so φ ⇔ (z0 ≥ 0) (3 ≥ 0 folds to true; −1 and 0 don't join "k"
        // unless equal to a cell: −1 matches no "k" row ⇒ antecedent false).
        let db = db_r(vec![
            vec![Value::str("k"), Value::NumNull(NumNullId(0))],
            vec![Value::str("k"), Value::num(3)],
            vec![Value::str("m"), Value::num(-1)],
        ]);
        let q = Query::boolean(
            Formula::forall(
                vec![TypedVar::num("x")],
                Formula::implies(
                    Formula::rel(
                        "R",
                        vec![Arg::Base(BaseTerm::str("k")), Arg::Num(NumTerm::var("x"))],
                    ),
                    Formula::cmp(NumTerm::var("x"), CompareOp::Ge, NumTerm::int(0)),
                ),
            ),
            &db.catalog(),
        )
        .unwrap();
        let phi = ground(&q, &db, &Tuple::new(vec![])).unwrap();
        assert!(phi.eval_f64(&[5.0]));
        assert!(phi.eval_f64(&[0.0]));
        // z0 = −1: the "k" row (⊤0) violates x ≥ 0.
        assert!(!phi.eval_f64(&[-1.0]));
    }

    #[test]
    fn candidate_with_numerical_null() {
        // q(y) = R("k", y); candidate s = ⊤0. φ must be satisfied by every
        // z0 (the row R("k",⊤0) matches with y = ⊤0 for any value of ⊤0) —
        // μ = 1: this is a certain answer in the Lipski sense.
        let db = db_r(vec![vec![Value::str("k"), Value::NumNull(NumNullId(0))]]);
        let q = Query::new(
            vec![TypedVar::num("y")],
            Formula::rel("R", vec![Arg::Base(BaseTerm::str("k")), Arg::Num(NumTerm::var("y"))]),
            &db.catalog(),
        )
        .unwrap();
        let phi = ground(&q, &db, &Tuple::new(vec![Value::NumNull(NumNullId(0))])).unwrap();
        assert_eq!(phi, QfFormula::True);
        // Whereas the candidate 5 is satisfied only when z0 = 5.
        let phi5 = ground(&q, &db, &Tuple::new(vec![Value::num(5)])).unwrap();
        assert!(phi5.eval_f64(&[5.0]));
        assert!(!phi5.eval_f64(&[4.0]));
    }

    #[test]
    fn intro_example_constraint_shape() {
        // The paper's intro example grounds to
        // (z1 ≥ 0) ∧ (z0 ≥ 8) ∧ (0.7·z1 ≥ z0) modulo trivially-true parts,
        // using ⊤0 = competition price ⊥, ⊤1 = rrp ⊥′.
        let db = qarith_types::Database::new();
        // Build the intro database inline (Products/Competition/Excluded).
        let mut db = db;
        let products = RelationSchema::new(
            "Products",
            vec![Column::base("id"), Column::base("seg"), Column::num("rrp"), Column::num("dis")],
        )
        .unwrap();
        let mut p = Relation::empty(products);
        p.insert_values(vec![
            Value::str("id1"),
            Value::str("s"),
            Value::num(10),
            Value::decimal("0.8"),
        ])
        .unwrap();
        p.insert_values(vec![
            Value::str("id2"),
            Value::str("s"),
            Value::NumNull(NumNullId(1)),
            Value::decimal("0.7"),
        ])
        .unwrap();
        db.add_relation(p).unwrap();
        let competition = RelationSchema::new(
            "Competition",
            vec![Column::base("id"), Column::base("seg"), Column::num("p")],
        )
        .unwrap();
        let mut c = Relation::empty(competition);
        c.insert_values(vec![Value::str("c"), Value::str("s"), Value::NumNull(NumNullId(0))])
            .unwrap();
        db.add_relation(c).unwrap();
        let excluded =
            RelationSchema::new("Excluded", vec![Column::base("id"), Column::base("seg")]).unwrap();
        let mut e = Relation::empty(excluded);
        e.insert_values(vec![Value::BaseNull(BaseNullId(0)), Value::str("s")]).unwrap();
        db.add_relation(e).unwrap();

        // q(s) = ∀i,r,d,i′,p (P(i,s,r,d) ∧ ¬E(i,s) ∧ C(i′,s,p)) →
        //          ((r·d ≤ p) ∧ r ≥ 0 ∧ d ≥ 0 ∧ p ≥ 0)
        //
        // as written in the paper's introduction.  Grounding yields
        // z0 ≥ 8 (from id1), z1 ≥ 0 and 0.7·z1 ≤ z0 (from id2), z0 ≥ 0 —
        // where z0 = ⊤0 (competition price ⊥) and z1 = ⊤1 (rrp ⊥′).
        // (The paper's displayed constraint (1) flips the sign of the
        // third atom relative to its own query; see EXPERIMENTS.md V1 for
        // how we reproduce both readings.)
        let body = Formula::forall(
            vec![
                TypedVar::base("i"),
                TypedVar::num("r"),
                TypedVar::num("d"),
                TypedVar::base("ip"),
                TypedVar::num("p"),
            ],
            Formula::implies(
                Formula::and(vec![
                    Formula::rel(
                        "Products",
                        vec![
                            Arg::Base(BaseTerm::var("i")),
                            Arg::Base(BaseTerm::var("s")),
                            Arg::Num(NumTerm::var("r")),
                            Arg::Num(NumTerm::var("d")),
                        ],
                    ),
                    Formula::not(Formula::rel(
                        "Excluded",
                        vec![Arg::Base(BaseTerm::var("i")), Arg::Base(BaseTerm::var("s"))],
                    )),
                    Formula::rel(
                        "Competition",
                        vec![
                            Arg::Base(BaseTerm::var("ip")),
                            Arg::Base(BaseTerm::var("s")),
                            Arg::Num(NumTerm::var("p")),
                        ],
                    ),
                ]),
                Formula::and(vec![
                    Formula::cmp(
                        NumTerm::var("r").mul(NumTerm::var("d")),
                        CompareOp::Le,
                        NumTerm::var("p"),
                    ),
                    Formula::cmp(NumTerm::var("r"), CompareOp::Ge, NumTerm::int(0)),
                    Formula::cmp(NumTerm::var("d"), CompareOp::Ge, NumTerm::int(0)),
                    Formula::cmp(NumTerm::var("p"), CompareOp::Ge, NumTerm::int(0)),
                ]),
            ),
        );
        let q = Query::new(vec![TypedVar::base("s")], body, &db.catalog()).unwrap();
        let phi = ground(&q, &db, &Tuple::new(vec![Value::str("s")])).unwrap();

        // Expected region: z0 ≥ 8 ∧ z1 ≥ 0 ∧ 0.7·z1 ≤ z0.
        let inside = [[9.0f64, 2.0], [8.0, 0.0], [100.0, 100.0]];
        let outside = [[7.0f64, 2.0], [9.0, -1.0], [9.0, 20.0], [-1.0, 5.0]];
        for pt in inside {
            assert!(phi.eval_f64(&pt), "should satisfy at {pt:?}");
        }
        for pt in outside {
            assert!(!phi.eval_f64(&pt), "should fail at {pt:?}");
        }
    }
}
