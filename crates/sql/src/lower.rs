use qarith_engine::cq::CqOptions;
use qarith_numeric::Rational;
use qarith_query::{Arg, BaseTerm, CompareOp, Formula, NumTerm, Query, TypedVar};
use qarith_types::{Catalog, RelationSchema, Sort};

use crate::ast::{ColumnRef, SelectStatement, SqlExpr, SqlPredicate};
use crate::error::SqlError;

/// The result of lowering: a validated query plus the statement's LIMIT
/// (which belongs to execution, not to query semantics).
#[derive(Debug, Clone)]
pub struct LoweredQuery {
    /// The validated FO query (a CQ when the WHERE clause is a
    /// conjunction of comparisons, as in the paper's workloads).
    pub query: Query,
    /// The `LIMIT n`, if present.
    pub limit: Option<usize>,
}

impl LoweredQuery {
    /// Execution options carrying this statement's `LIMIT` into the CQ
    /// executor (candidate-counting semantics, via
    /// [`CqOptions::for_limit`]). This is the one place a lowered
    /// statement's limit crosses from parsing into execution.
    pub fn cq_options(&self) -> CqOptions {
        CqOptions::for_limit(self.limit)
    }
}

/// Lowers a parsed statement against a catalog.
pub fn lower(stmt: &SelectStatement, catalog: &Catalog) -> Result<LoweredQuery, SqlError> {
    let scope = Scope::build(stmt, catalog)?;

    // Head: selected columns, in order (`*` expands to every column of
    // every FROM item, in declaration order).
    let mut head = Vec::with_capacity(stmt.columns.len());
    if stmt.star {
        for (alias, schema) in &scope.tables {
            for c in schema.columns() {
                head.push(TypedVar {
                    name: format!("{alias}.{}", c.name()).into(),
                    sort: c.sort(),
                });
            }
        }
    } else {
        for col in &stmt.columns {
            let (name, sort) = scope.resolve(col)?;
            head.push(TypedVar { name: name.into(), sort });
        }
    }

    // Relation atoms: one per FROM item, args are the per-column vars.
    let mut conjuncts = Vec::new();
    for (alias, schema) in &scope.tables {
        let args = schema
            .columns()
            .iter()
            .map(|c| {
                let name = format!("{alias}.{}", c.name());
                match c.sort() {
                    Sort::Base => Arg::Base(BaseTerm::Var(name.into())),
                    Sort::Num => Arg::Num(NumTerm::Var(name.into())),
                }
            })
            .collect();
        conjuncts.push(Formula::rel(schema.name(), args));
    }

    if let Some(pred) = &stmt.predicate {
        conjuncts.push(lower_predicate(pred, &scope)?);
    }

    // Existential closure over all non-head variables.
    let head_names: Vec<&str> = head.iter().map(|v| v.name.as_ref()).collect();
    let mut binders = Vec::new();
    for (alias, schema) in &scope.tables {
        for c in schema.columns() {
            let name = format!("{alias}.{}", c.name());
            if !head_names.contains(&name.as_str()) {
                binders.push(TypedVar { name: name.into(), sort: c.sort() });
            }
        }
    }

    let body = Formula::exists(binders, Formula::and(conjuncts));
    let query = Query::new(head, body, catalog)?;
    Ok(LoweredQuery { query, limit: stmt.limit })
}

/// Name-resolution scope: the FROM items.
struct Scope {
    tables: Vec<(String, RelationSchema)>,
}

impl Scope {
    fn build(stmt: &SelectStatement, catalog: &Catalog) -> Result<Scope, SqlError> {
        let mut tables = Vec::with_capacity(stmt.tables.len());
        for t in &stmt.tables {
            if tables.iter().any(|(a, _)| *a == t.alias) {
                return Err(SqlError::DuplicateAlias { alias: t.alias.clone() });
            }
            let schema = catalog
                .get(&t.table)
                .ok_or_else(|| SqlError::UnknownTable { table: t.table.clone() })?;
            tables.push((t.alias.clone(), schema.clone()));
        }
        Ok(Scope { tables })
    }

    /// Resolves a column reference to its variable name and sort.
    fn resolve(&self, col: &ColumnRef) -> Result<(String, Sort), SqlError> {
        match &col.table {
            Some(alias) => {
                let (_, schema) = self
                    .tables
                    .iter()
                    .find(|(a, _)| a == alias)
                    .ok_or_else(|| SqlError::UnknownColumn { reference: col.to_string() })?;
                let idx = schema
                    .column_index(&col.column)
                    .ok_or_else(|| SqlError::UnknownColumn { reference: col.to_string() })?;
                Ok((format!("{alias}.{}", col.column), schema.sort_of(idx)))
            }
            None => {
                let mut hit: Option<(String, Sort)> = None;
                for (alias, schema) in &self.tables {
                    if let Some(idx) = schema.column_index(&col.column) {
                        if hit.is_some() {
                            return Err(SqlError::AmbiguousColumn { name: col.column.clone() });
                        }
                        hit = Some((format!("{alias}.{}", col.column), schema.sort_of(idx)));
                    }
                }
                hit.ok_or_else(|| SqlError::UnknownColumn { reference: col.to_string() })
            }
        }
    }
}

/// A rational expression `num/den` over numerical terms (`den = None`
/// means 1). Division is carried symbolically and eliminated by
/// cross-multiplication at the comparison.
struct Frac {
    num: NumTerm,
    den: Option<NumTerm>,
}

impl Frac {
    fn whole(t: NumTerm) -> Frac {
        Frac { num: t, den: None }
    }

    fn mul_den(a: Option<NumTerm>, b: Option<NumTerm>) -> Option<NumTerm> {
        match (a, b) {
            (None, d) | (d, None) => d,
            (Some(x), Some(y)) => Some(x.mul(y)),
        }
    }

    fn scaled_num(&self, other_den: &Option<NumTerm>) -> NumTerm {
        match other_den {
            None => self.num.clone(),
            Some(d) => self.num.clone().mul(d.clone()),
        }
    }

    fn add(self, rhs: Frac, subtract: bool) -> Frac {
        let l = self.scaled_num(&rhs.den);
        let r = rhs.scaled_num(&self.den);
        let num = if subtract { l.sub(r) } else { l.add(r) };
        Frac { num, den: Frac::mul_den(self.den, rhs.den) }
    }

    fn mul(self, rhs: Frac) -> Frac {
        Frac { num: self.num.mul(rhs.num), den: Frac::mul_den(self.den, rhs.den) }
    }

    fn div(self, rhs: Frac) -> Frac {
        // (a/b) / (c/d) = a·d / (b·c).
        let num = match rhs.den {
            None => self.num,
            Some(d) => self.num.mul(d),
        };
        let den = match self.den {
            None => rhs.num,
            Some(b) => b.mul(rhs.num),
        };
        Frac { num, den: Some(den) }
    }

    fn neg(self) -> Frac {
        Frac { num: self.num.neg(), den: self.den }
    }
}

enum Typed {
    Base(BaseTerm),
    Num(Frac),
}

fn lower_expr(e: &SqlExpr, scope: &Scope) -> Result<Typed, SqlError> {
    Ok(match e {
        SqlExpr::Column(c) => {
            let (name, sort) = scope.resolve(c)?;
            match sort {
                Sort::Base => Typed::Base(BaseTerm::Var(name.into())),
                Sort::Num => Typed::Num(Frac::whole(NumTerm::Var(name.into()))),
            }
        }
        SqlExpr::Number(text) => {
            let r = Rational::parse_decimal(text).map_err(|_| SqlError::SortMismatch {
                context: format!("numeric literal {text}"),
            })?;
            Typed::Num(Frac::whole(NumTerm::Const(r)))
        }
        SqlExpr::Str(s) => Typed::Base(BaseTerm::str(s)),
        SqlExpr::Add(a, b) => Typed::Num(num(a, scope)?.add(num(b, scope)?, false)),
        SqlExpr::Sub(a, b) => Typed::Num(num(a, scope)?.add(num(b, scope)?, true)),
        SqlExpr::Mul(a, b) => Typed::Num(num(a, scope)?.mul(num(b, scope)?)),
        SqlExpr::Div(a, b) => Typed::Num(num(a, scope)?.div(num(b, scope)?)),
        SqlExpr::Neg(a) => Typed::Num(num(a, scope)?.neg()),
    })
}

fn num(e: &SqlExpr, scope: &Scope) -> Result<Frac, SqlError> {
    match lower_expr(e, scope)? {
        Typed::Num(f) => Ok(f),
        Typed::Base(t) => Err(SqlError::SortMismatch {
            context: format!("arithmetic over base-sort operand {t}"),
        }),
    }
}

fn lower_predicate(p: &SqlPredicate, scope: &Scope) -> Result<Formula, SqlError> {
    Ok(match p {
        SqlPredicate::And(l, r) => {
            Formula::and(vec![lower_predicate(l, scope)?, lower_predicate(r, scope)?])
        }
        SqlPredicate::Or(l, r) => {
            Formula::or(vec![lower_predicate(l, scope)?, lower_predicate(r, scope)?])
        }
        SqlPredicate::Not(inner) => Formula::not(lower_predicate(inner, scope)?),
        SqlPredicate::Compare(l, op, r) => {
            let lt = lower_expr(l, scope)?;
            let rt = lower_expr(r, scope)?;
            match (lt, rt) {
                (Typed::Num(a), Typed::Num(b)) => {
                    // Cross-multiply: a.num/a.den ⋈ b.num/b.den becomes
                    // a.num·b.den ⋈ b.num·a.den (positive denominators
                    // assumed — see crate docs).
                    let lhs = a.scaled_num(&b.den);
                    let rhs = b.scaled_num(&a.den);
                    Formula::cmp(lhs, *op, rhs)
                }
                (Typed::Base(a), Typed::Base(b)) => base_compare(a, *op, b)?,
                (Typed::Base(a), Typed::Num(b)) | (Typed::Num(b), Typed::Base(a)) => {
                    // Allow `base_col = 42` for integer base constants.
                    match &b.num {
                        NumTerm::Const(r) if b.den.is_none() && r.is_integer() => {
                            base_compare(a, *op, BaseTerm::int(r.numer() as i64))?
                        }
                        _ => {
                            return Err(SqlError::SortMismatch {
                                context: format!("comparison of {a} with a numerical expression"),
                            })
                        }
                    }
                }
            }
        }
    })
}

fn base_compare(l: BaseTerm, op: CompareOp, r: BaseTerm) -> Result<Formula, SqlError> {
    match op {
        CompareOp::Eq => Ok(Formula::base_eq(l, r)),
        CompareOp::Ne => Ok(Formula::not(Formula::base_eq(l, r))),
        other => Err(SqlError::BaseSortComparison { op: other.to_string() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use qarith_query::{ArithLevel, Formula as F};
    use qarith_types::Column;

    fn sales_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new(
                "Products",
                vec![
                    Column::base("id"),
                    Column::base("seg"),
                    Column::num("rrp"),
                    Column::num("dis"),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "Orders",
                vec![Column::base("id"), Column::base("pr"), Column::num("q"), Column::num("dis")],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "Market",
                vec![Column::base("seg"), Column::num("rrp"), Column::num("dis")],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    fn compile(sql: &str) -> LoweredQuery {
        let stmt = parse_select(sql).unwrap();
        lower(&stmt, &sales_catalog()).unwrap()
    }

    #[test]
    fn competitive_advantage_lowers_to_cq_linear_free() {
        let lowered = compile(
            "SELECT P.seg FROM Products P, Market M \
             WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25",
        );
        assert_eq!(lowered.limit, Some(25));
        let q = &lowered.query;
        assert_eq!(q.arity(), 1);
        let frag = q.fragment();
        assert!(frag.conjunctive);
        // rrp·dis is a product of two variables: degree 2.
        assert_eq!(frag.arith, ArithLevel::Poly);
    }

    #[test]
    fn cq_options_carry_the_limit() {
        let lowered = compile("SELECT P.seg FROM Products P LIMIT 7");
        let opts = lowered.cq_options();
        assert_eq!(opts.limit, Some(7));
        assert!(opts.count_candidates, "statement LIMIT counts distinct candidates");
        assert!(!opts.exhaustive);
        let unlimited = compile("SELECT P.seg FROM Products P");
        let opts = unlimited.cq_options();
        assert_eq!(opts.limit, None);
        assert!(opts.exhaustive, "no LIMIT scans everything");
    }

    #[test]
    fn division_is_cross_multiplied() {
        let lowered = compile("SELECT O.id FROM Orders O WHERE O.q / O.dis <= 2");
        // Expect body to contain Cmp(q, ≤, 2·dis) — i.e. no division in
        // the lowered term and the divisor moved across.
        fn find_cmp(f: &F) -> Option<(NumTerm, CompareOp, NumTerm)> {
            match f {
                F::Cmp(l, op, r) => Some((l.clone(), *op, r.clone())),
                F::And(ps) | F::Or(ps) => ps.iter().find_map(find_cmp),
                F::Exists(_, b) | F::Forall(_, b) => find_cmp(b),
                F::Not(b) => find_cmp(b),
                _ => None,
            }
        }
        let (l, op, r) = find_cmp(lowered.query.body()).expect("comparison present");
        assert_eq!(op, CompareOp::Le);
        assert_eq!(l, NumTerm::Var("O.q".into()));
        assert_eq!(r, NumTerm::Const(Rational::from_int(2)).mul(NumTerm::Var("O.dis".into())));
    }

    #[test]
    fn bare_columns_resolve_uniquely() {
        let lowered = compile("SELECT q FROM Orders O WHERE q > 5");
        assert_eq!(lowered.query.arity(), 1);
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let stmt = parse_select("SELECT id FROM Products P, Orders O WHERE P.id = O.pr").unwrap();
        assert!(matches!(lower(&stmt, &sales_catalog()), Err(SqlError::AmbiguousColumn { .. })));
        // `dis` is in all three tables too.
        let stmt = parse_select("SELECT P.id FROM Products P, Orders O WHERE dis > 0").unwrap();
        assert!(matches!(lower(&stmt, &sales_catalog()), Err(SqlError::AmbiguousColumn { .. })));
    }

    #[test]
    fn unknown_names_rejected() {
        let stmt = parse_select("SELECT x FROM Nope").unwrap();
        assert!(matches!(lower(&stmt, &sales_catalog()), Err(SqlError::UnknownTable { .. })));
        let stmt = parse_select("SELECT P.nope FROM Products P").unwrap();
        assert!(matches!(lower(&stmt, &sales_catalog()), Err(SqlError::UnknownColumn { .. })));
    }

    #[test]
    fn base_sort_rules() {
        // Equality on base columns is fine; order is not.
        assert!(matches!(
            lower(
                &parse_select("SELECT P.id FROM Products P WHERE P.seg < 'toys'").unwrap(),
                &sales_catalog()
            ),
            Err(SqlError::BaseSortComparison { .. })
        ));
        // String equality works.
        let ok = compile("SELECT P.id FROM Products P WHERE P.seg = 'toys'");
        assert_eq!(ok.query.arity(), 1);
        // Arithmetic over a base column is rejected.
        assert!(matches!(
            lower(
                &parse_select("SELECT P.id FROM Products P WHERE P.seg + 1 < 2").unwrap(),
                &sales_catalog()
            ),
            Err(SqlError::SortMismatch { .. })
        ));
    }

    #[test]
    fn integer_literal_against_base_column() {
        let ok = compile("SELECT P.seg FROM Products P WHERE P.id = 42");
        assert_eq!(ok.query.arity(), 1);
        // Non-integer against base column: mismatch.
        assert!(matches!(
            lower(
                &parse_select("SELECT P.seg FROM Products P WHERE P.id = 4.5").unwrap(),
                &sales_catalog()
            ),
            Err(SqlError::SortMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let stmt = parse_select("SELECT P.id FROM Products P, Orders P").unwrap();
        assert!(matches!(lower(&stmt, &sales_catalog()), Err(SqlError::DuplicateAlias { .. })));
    }

    #[test]
    fn select_star_expands_all_columns() {
        let lowered = compile("SELECT * FROM Market WHERE Market.rrp > 10");
        // Market(seg, rrp, dis): head arity 3, in declaration order.
        assert_eq!(lowered.query.arity(), 3);
        let names: Vec<&str> = lowered.query.free_vars().iter().map(|v| v.name.as_ref()).collect();
        assert_eq!(names, vec!["Market.seg", "Market.rrp", "Market.dis"]);
        // Star over a join: all columns of all tables.
        let lowered = compile("SELECT * FROM Products P, Market M WHERE P.seg = M.seg");
        assert_eq!(lowered.query.arity(), 4 + 3);
    }

    #[test]
    fn or_and_not_lower_to_fo() {
        let lowered = compile("SELECT P.id FROM Products P WHERE NOT (P.rrp < 5 OR P.rrp > 50)");
        assert!(!lowered.query.fragment().conjunctive);
    }
}
