//! A SQL front end for the §9 decision-support workloads.
//!
//! Layering: above `qarith-query`/`qarith-engine`, below
//! `qarith-serve` (whose plan cache is keyed by this crate's
//! normalized [`fingerprint`]s) and the bench drivers.
//!
//! The paper's experiments issue `SELECT … FROM … WHERE … LIMIT n`
//! queries against Postgres; this crate provides the equivalent surface
//! for the qarith engine: a hand-written lexer and recursive-descent
//! parser for that subset, lowered onto the validated FO(+,·,<) AST of
//! [`qarith_query`].
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```sql
//! SELECT col [, col …]            -- qualified (P.seg) or bare names
//! FROM table [alias] [, table [alias] …]
//! [WHERE predicate]               -- AND/OR/NOT, parentheses,
//!                                 -- =, <>, !=, <, <=, >, >= between
//!                                 -- arithmetic expressions (+ - * /)
//!                                 -- over columns and literals
//! [LIMIT n]
//! ```
//!
//! Lowering notes:
//!
//! * every `(alias, column)` pair becomes a typed variable; selected
//!   columns form the query head, the rest are existentially quantified —
//!   the standard SELECT-FROM-WHERE ⇒ CQ translation;
//! * base-sort comparisons support `=`/`<>` only (the base domain is
//!   unordered in the model);
//! * division is eliminated by cross-multiplication
//!   (`a/b ≤ c  ⇝  a ≤ c·b`), following the paper's remark that `−` and
//!   `÷` are definable from the atomic comparisons. This assumes positive
//!   denominators — true of the paper's workloads (quantities and
//!   discounts), and documented here because a negative denominator would
//!   flip the inequality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
pub mod fingerprint;
mod lexer;
mod lower;
mod parser;

pub use ast::{SelectStatement, SqlExpr, SqlPredicate, TableRef};
pub use error::SqlError;
pub use fingerprint::sql_fingerprint;
pub use lower::{lower, LoweredQuery};
pub use parser::parse_select;

use qarith_query::Query;
use qarith_types::Catalog;

/// One-stop entry point: parse SQL text and lower it against a catalog.
pub fn compile(sql: &str, catalog: &Catalog) -> Result<LoweredQuery, SqlError> {
    let stmt = parse_select(sql)?;
    lower(&stmt, catalog)
}

/// Like [`compile`], returning only the query (dropping the LIMIT).
pub fn compile_query(sql: &str, catalog: &Catalog) -> Result<Query, SqlError> {
    Ok(compile(sql, catalog)?.query)
}
