use std::fmt;

use qarith_query::QueryError;

/// Errors from SQL parsing and lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error: an unexpected character.
    Lex {
        /// Byte offset in the input.
        position: usize,
        /// The offending character.
        found: char,
    },
    /// Parse error: unexpected token.
    Parse {
        /// Byte offset in the input.
        position: usize,
        /// What the parser expected.
        expected: &'static str,
        /// What it found (display form).
        found: String,
    },
    /// A column reference could not be resolved.
    UnknownColumn {
        /// The reference as written.
        reference: String,
    },
    /// A bare column name matches several tables in scope.
    AmbiguousColumn {
        /// The bare name.
        name: String,
    },
    /// A table alias was used twice.
    DuplicateAlias {
        /// The alias.
        alias: String,
    },
    /// An unknown table in FROM.
    UnknownTable {
        /// The table name.
        table: String,
    },
    /// Operation not supported on the base sort (e.g. `<` on strings).
    BaseSortComparison {
        /// The operator as written.
        op: String,
    },
    /// A string literal was used in a numerical context or vice versa.
    SortMismatch {
        /// Description of the offending expression.
        context: String,
    },
    /// Query validation (against the catalog) failed after lowering.
    Query(QueryError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, found } => {
                write!(f, "unexpected character {found:?} at byte {position}")
            }
            SqlError::Parse { position, expected, found } => {
                write!(f, "expected {expected} at byte {position}, found {found}")
            }
            SqlError::UnknownColumn { reference } => {
                write!(f, "unknown column reference {reference}")
            }
            SqlError::AmbiguousColumn { name } => {
                write!(f, "column {name} is ambiguous; qualify it with a table alias")
            }
            SqlError::DuplicateAlias { alias } => write!(f, "duplicate table alias {alias}"),
            SqlError::UnknownTable { table } => write!(f, "unknown table {table}"),
            SqlError::BaseSortComparison { op } => {
                write!(f, "operator {op} is not defined on base-sort (non-numerical) columns")
            }
            SqlError::SortMismatch { context } => {
                write!(f, "sort mismatch in {context}")
            }
            SqlError::Query(e) => write!(f, "query validation failed: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<QueryError> for SqlError {
    fn from(e: QueryError) -> Self {
        SqlError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = SqlError::Parse { position: 10, expected: "FROM", found: "WHERE".into() };
        assert!(e.to_string().contains("FROM"));
        assert!(e.to_string().contains("WHERE"));
        let e = SqlError::AmbiguousColumn { name: "seg".into() };
        assert!(e.to_string().contains("seg"));
    }
}
