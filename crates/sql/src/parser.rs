use qarith_query::CompareOp;

use crate::ast::{ColumnRef, SelectStatement, SqlExpr, SqlPredicate, TableRef};
use crate::error::SqlError;
use crate::lexer::{lex, Keyword, Spanned, Token};

/// Parses one `SELECT` statement.
pub fn parse_select(input: &str) -> Result<SelectStatement, SqlError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn position(&self) -> usize {
        self.tokens.get(self.pos).or_else(|| self.tokens.last()).map_or(0, |s| s.position)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &'static str) -> SqlError {
        SqlError::Parse {
            position: self.position(),
            expected,
            found: self.peek().map_or("end of input".to_string(), ToString::to_string),
        }
    }

    fn expect_keyword(&mut self, k: Keyword, what: &'static str) -> Result<(), SqlError> {
        match self.peek() {
            Some(Token::Keyword(found)) if *found == k => {
                self.advance();
                Ok(())
            }
            _ => Err(self.err(what)),
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_eof(&self) -> Result<(), SqlError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("end of statement"))
        }
    }

    fn ident(&mut self, what: &'static str) -> Result<String, SqlError> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.advance() {
                Some(Token::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.err(what)),
        }
    }

    fn select(&mut self) -> Result<SelectStatement, SqlError> {
        self.expect_keyword(Keyword::Select, "SELECT")?;
        let (star, columns) = if self.eat(&Token::Star) {
            (true, Vec::new())
        } else {
            let mut columns = vec![self.column_ref()?];
            while self.eat(&Token::Comma) {
                columns.push(self.column_ref()?);
            }
            (false, columns)
        };
        self.expect_keyword(Keyword::From, "FROM")?;
        let mut tables = vec![self.table_ref()?];
        while self.eat(&Token::Comma) {
            tables.push(self.table_ref()?);
        }
        let predicate = if matches!(self.peek(), Some(Token::Keyword(Keyword::Where))) {
            self.advance();
            Some(self.predicate()?)
        } else {
            None
        };
        let limit = if matches!(self.peek(), Some(Token::Keyword(Keyword::Limit))) {
            self.advance();
            match self.advance() {
                Some(Token::Number(n)) => {
                    Some(n.parse::<usize>().map_err(|_| self.err("an integer LIMIT"))?)
                }
                _ => return Err(self.err("an integer LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStatement { star, columns, tables, predicate, limit })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let first = self.ident("a column reference")?;
        if self.eat(&Token::Dot) {
            let column = self.ident("a column name after '.'")?;
            Ok(ColumnRef { table: Some(first), column })
        } else {
            Ok(ColumnRef { table: None, column: first })
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.ident("a table name")?;
        // Optional `AS` keyword, optional alias.
        if matches!(self.peek(), Some(Token::Keyword(Keyword::As))) {
            self.advance();
            let alias = self.ident("an alias after AS")?;
            return Ok(TableRef { table, alias });
        }
        if let Some(Token::Ident(_)) = self.peek() {
            let alias = self.ident("an alias")?;
            return Ok(TableRef { table, alias });
        }
        Ok(TableRef { alias: table.clone(), table })
    }

    // predicate := conjunct (OR conjunct)*
    fn predicate(&mut self) -> Result<SqlPredicate, SqlError> {
        let mut lhs = self.conjunct()?;
        while matches!(self.peek(), Some(Token::Keyword(Keyword::Or))) {
            self.advance();
            let rhs = self.conjunct()?;
            lhs = SqlPredicate::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    // conjunct := factor (AND factor)*
    fn conjunct(&mut self) -> Result<SqlPredicate, SqlError> {
        let mut lhs = self.factor()?;
        while matches!(self.peek(), Some(Token::Keyword(Keyword::And))) {
            self.advance();
            let rhs = self.factor()?;
            lhs = SqlPredicate::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    // factor := NOT factor | comparison
    // A parenthesis here is ambiguous: it may open a nested predicate or
    // an arithmetic expression. We try the predicate reading first and
    // backtrack (the token stream is already materialized, so this is
    // cheap).
    fn factor(&mut self) -> Result<SqlPredicate, SqlError> {
        if matches!(self.peek(), Some(Token::Keyword(Keyword::Not))) {
            self.advance();
            return Ok(SqlPredicate::Not(Box::new(self.factor()?)));
        }
        if self.peek() == Some(&Token::LParen) {
            let mark = self.pos;
            self.advance();
            if let Ok(inner) = self.predicate() {
                if self.eat(&Token::RParen) {
                    // Nested predicate … unless a comparison operator
                    // follows, in which case the parens wrapped an
                    // arithmetic expression like `(a + b) < c`.
                    if !matches!(
                        self.peek(),
                        Some(Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge)
                    ) {
                        return Ok(inner);
                    }
                }
            }
            self.pos = mark; // backtrack: parse as comparison
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<SqlPredicate, SqlError> {
        let lhs = self.expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Ne) => CompareOp::Ne,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            _ => return Err(self.err("a comparison operator")),
        };
        self.advance();
        let rhs = self.expr()?;
        Ok(SqlPredicate::Compare(lhs, op, rhs))
    }

    // expr := term ((+|-) term)*
    fn expr(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.advance();
                    lhs = SqlExpr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                Some(Token::Minus) => {
                    self.advance();
                    lhs = SqlExpr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    // term := unary ((*|/) unary)*
    fn term(&mut self) -> Result<SqlExpr, SqlError> {
        let mut lhs = self.unary()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.advance();
                    lhs = SqlExpr::Mul(Box::new(lhs), Box::new(self.unary()?));
                }
                Some(Token::Slash) => {
                    self.advance();
                    lhs = SqlExpr::Div(Box::new(lhs), Box::new(self.unary()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    // unary := - unary | atom
    fn unary(&mut self) -> Result<SqlExpr, SqlError> {
        if self.eat(&Token::Minus) {
            return Ok(SqlExpr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    // atom := number | string | column | ( expr )
    fn atom(&mut self) -> Result<SqlExpr, SqlError> {
        match self.peek() {
            Some(Token::Number(_)) => match self.advance() {
                Some(Token::Number(n)) => Ok(SqlExpr::Number(n)),
                _ => unreachable!(),
            },
            Some(Token::Str(_)) => match self.advance() {
                Some(Token::Str(s)) => Ok(SqlExpr::Str(s)),
                _ => unreachable!(),
            },
            Some(Token::Ident(_)) => Ok(SqlExpr::Column(self.column_ref()?)),
            Some(Token::LParen) => {
                self.advance();
                let inner = self.expr()?;
                if !self.eat(&Token::RParen) {
                    return Err(self.err("a closing ')'"));
                }
                Ok(inner)
            }
            _ => Err(self.err("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_query_competitive_advantage() {
        let stmt = parse_select(
            "SELECT P.seg FROM Products P, Market M \
             WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25",
        )
        .unwrap();
        assert_eq!(stmt.columns.len(), 1);
        assert_eq!(stmt.columns[0].to_string(), "P.seg");
        assert_eq!(stmt.tables.len(), 2);
        assert_eq!(stmt.tables[0], TableRef { table: "Products".into(), alias: "P".into() });
        assert_eq!(stmt.limit, Some(25));
        match stmt.predicate.unwrap() {
            SqlPredicate::And(l, r) => {
                assert!(matches!(*l, SqlPredicate::Compare(_, CompareOp::Eq, _)));
                assert!(matches!(*r, SqlPredicate::Compare(_, CompareOp::Le, _)));
            }
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn division_and_parens() {
        let stmt = parse_select(
            "SELECT P.id FROM Products P \
             WHERE P.rrp * P.dis * (O.q / O.dis) <= 0.5 * M.rrp",
        )
        .unwrap();
        match stmt.predicate.unwrap() {
            SqlPredicate::Compare(lhs, CompareOp::Le, _) => {
                // ((P.rrp * P.dis) * (O.q / O.dis))
                match lhs {
                    SqlExpr::Mul(_, rhs) => {
                        assert!(matches!(*rhs, SqlExpr::Div(_, _)));
                    }
                    other => panic!("expected Mul, got {other:?}"),
                }
            }
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let stmt = parse_select("SELECT x FROM T WHERE a + b * c < 10").unwrap();
        match stmt.predicate.unwrap() {
            SqlPredicate::Compare(SqlExpr::Add(_, rhs), _, _) => {
                assert!(matches!(*rhs, SqlExpr::Mul(_, _)));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn boolean_structure_or_and_not() {
        let stmt = parse_select("SELECT x FROM T WHERE NOT a = 1 AND b = 2 OR c = 3").unwrap();
        // Parsed as ((NOT a=1) AND b=2) OR c=3.
        match stmt.predicate.unwrap() {
            SqlPredicate::Or(l, _) => match *l {
                SqlPredicate::And(l2, _) => assert!(matches!(*l2, SqlPredicate::Not(_))),
                other => panic!("expected AND, got {other:?}"),
            },
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_predicate_vs_expression() {
        // Parens around a predicate…
        let a = parse_select("SELECT x FROM T WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        assert!(matches!(a.predicate.unwrap(), SqlPredicate::And(_, _)));
        // …and parens around an arithmetic expression.
        let b = parse_select("SELECT x FROM T WHERE (a + b) < c").unwrap();
        assert!(matches!(
            b.predicate.unwrap(),
            SqlPredicate::Compare(SqlExpr::Add(_, _), CompareOp::Lt, _)
        ));
    }

    #[test]
    fn string_literals_and_negation() {
        let stmt = parse_select("SELECT x FROM T WHERE seg = 'toys' AND p < -5").unwrap();
        match stmt.predicate.unwrap() {
            SqlPredicate::And(l, r) => {
                assert!(matches!(*l, SqlPredicate::Compare(_, CompareOp::Eq, SqlExpr::Str(_))));
                assert!(matches!(*r, SqlPredicate::Compare(_, CompareOp::Lt, SqlExpr::Neg(_))));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn errors_are_located() {
        assert!(matches!(
            parse_select("SELECT FROM T"),
            Err(SqlError::Parse { expected: "a column reference", .. })
        ));
        assert!(matches!(
            parse_select("SELECT x FROM T WHERE a <"),
            Err(SqlError::Parse { expected: "an expression", .. })
        ));
        assert!(matches!(
            parse_select("SELECT x FROM T LIMIT x"),
            Err(SqlError::Parse { expected: "an integer LIMIT", .. })
        ));
        assert!(parse_select("SELECT x FROM T extra garbage, here").is_err());
    }

    #[test]
    fn as_keyword_alias() {
        let stmt = parse_select("SELECT x FROM Products AS P").unwrap();
        assert_eq!(stmt.tables[0].alias, "P");
    }
}
