//! Normalized query fingerprints — the plan-cache key of `qarith-serve`.
//!
//! A long-lived service sees the same query *template* over and over,
//! typically produced by different clients, formatters, and ORMs: the
//! texts differ in whitespace, keyword case, table-alias names, and
//! literal spellings (`0.80` vs `0.8`), but parse to the same plan. The
//! fingerprint is a canonical serialization of the parsed AST that is
//! invariant under exactly those variations, so the serving layer's
//! plan cache (parse → lower → ground → canonicalize, done once per
//! template) hits for all of them.
//!
//! ## Keying invariants
//!
//! Two SQL texts share a fingerprint **iff** their ASTs are equal up to:
//!
//! * **lexical noise** — whitespace, newlines, and keyword case are
//!   erased by the lexer before the AST exists;
//! * **alias renaming** — FROM items are re-aliased positionally
//!   (`t0, t1, …` in FROM order), and every qualified column reference
//!   follows its table's canonical alias;
//! * **literal spelling** — numeric literals are parsed to exact
//!   rationals and serialized canonically (`0.80`, `0.8`, and `.8`
//!   collapse). Note `8/10` is *not* a literal — it parses as a
//!   division expression and is its own template.
//!
//! Everything else is distinguishing on purpose: fingerprints are
//! *template* identity, not semantic equivalence. Reordered FROM items,
//! commuted `AND` operands, or an added redundant predicate produce
//! different fingerprints and simply occupy another plan-cache slot —
//! a correctness-neutral miss. Table and column names are
//! case-sensitive, as in the catalog.
//!
//! The fingerprint is a readable string rather than a hash: the
//! serialization is injective on *lowerable* normalized ASTs, so two
//! valid statements collide exactly when they are the same template,
//! and a service operator can log the fingerprint to see *which*
//! template a request mapped to. Statements that lowering rejects live
//! in marked namespaces that no valid template's fingerprint can enter
//! (`dup!` for duplicate FROM aliases, a `?` qualifier marker for
//! references to undeclared aliases); statements inside those
//! namespaces may share fingerprints with each other, which is
//! harmless — none of them ever produces a cacheable plan.

use std::collections::HashMap;
use std::fmt::Write as _;

use qarith_numeric::Rational;
use qarith_query::CompareOp;

use crate::ast::{ColumnRef, SelectStatement, SqlExpr, SqlPredicate};
use crate::error::SqlError;
use crate::parser::parse_select;

/// Parses `sql` and returns its normalized fingerprint. Errors exactly
/// when [`crate::parse_select`] errors; a fingerprint never exists for
/// text the parser rejects.
pub fn sql_fingerprint(sql: &str) -> Result<String, SqlError> {
    Ok(fingerprint(&parse_select(sql)?))
}

/// The normalized fingerprint of a parsed statement. See the module
/// docs for the invariants.
pub fn fingerprint(stmt: &SelectStatement) -> String {
    // Positional aliases in FROM order. Duplicate aliases are rejected
    // at lowering (`SqlError::DuplicateAlias`), but the fingerprint is
    // total — and must not let a duplicate-alias statement collapse
    // onto a valid template's fingerprint (alias renaming would erase
    // the duplication, and a warm plan cache would then *serve* the
    // invalid query). The `dup!` prefix puts every such statement in a
    // namespace of its own; everything in it fails to build a plan, so
    // nothing in it is ever cached.
    let mut alias_of: HashMap<&str, String> = HashMap::new();
    let mut duplicate = false;
    for (i, t) in stmt.tables.iter().enumerate() {
        duplicate |= alias_of.insert(t.alias.as_str(), format!("t{i}")).is_some();
    }

    let mut out = if duplicate { String::from("dup!select ") } else { String::from("select ") };
    if stmt.star {
        out.push('*');
    } else {
        for (i, c) in stmt.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_col(&mut out, c, &alias_of);
        }
    }
    out.push_str(" from ");
    for (i, t) in stmt.tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{} t{i}", t.table);
    }
    if let Some(p) = &stmt.predicate {
        out.push_str(" where ");
        write_pred(&mut out, p, &alias_of);
    }
    if let Some(n) = stmt.limit {
        let _ = write!(out, " limit {n}");
    }
    out
}

fn write_col(out: &mut String, c: &ColumnRef, alias_of: &HashMap<&str, String>) {
    if let Some(t) = &c.table {
        // Unknown qualifiers (rejected later, at lowering) keep the
        // fingerprint total, but must stay disjoint from the canonical
        // `tN` alias space: a verbatim `t1` would collide with the
        // renaming of a *declared* second table, letting an invalid
        // query hit a valid template's cached plan. The `?` marker
        // cannot appear in a canonical alias, so queries with unknown
        // qualifiers only ever share fingerprints with equally invalid
        // queries (which fail to build a plan, and are never cached).
        match alias_of.get(t.as_str()) {
            Some(canon) => out.push_str(canon),
            None => {
                out.push('?');
                out.push_str(t);
            }
        }
        out.push('.');
    }
    out.push_str(&c.column);
}

fn write_expr(out: &mut String, e: &SqlExpr, alias_of: &HashMap<&str, String>) {
    match e {
        SqlExpr::Column(c) => write_col(out, c, alias_of),
        SqlExpr::Number(text) => {
            // Canonical exact form: `0.80`, `0.8`, `.8` all print `4/5`.
            // Unparseable literals (rejected at lowering) stay verbatim.
            match Rational::parse_decimal(text) {
                Ok(r) => {
                    let _ = write!(out, "num({r})");
                }
                Err(_) => {
                    let _ = write!(out, "num({text})");
                }
            }
        }
        SqlExpr::Str(s) => {
            let _ = write!(out, "str({s:?})");
        }
        SqlExpr::Add(a, b) => write_binary(out, "add", a, b, alias_of),
        SqlExpr::Sub(a, b) => write_binary(out, "sub", a, b, alias_of),
        SqlExpr::Mul(a, b) => write_binary(out, "mul", a, b, alias_of),
        SqlExpr::Div(a, b) => write_binary(out, "div", a, b, alias_of),
        SqlExpr::Neg(a) => {
            out.push_str("neg(");
            write_expr(out, a, alias_of);
            out.push(')');
        }
    }
}

fn write_binary(
    out: &mut String,
    op: &str,
    a: &SqlExpr,
    b: &SqlExpr,
    alias_of: &HashMap<&str, String>,
) {
    out.push_str(op);
    out.push('(');
    write_expr(out, a, alias_of);
    out.push(',');
    write_expr(out, b, alias_of);
    out.push(')');
}

fn write_pred(out: &mut String, p: &SqlPredicate, alias_of: &HashMap<&str, String>) {
    match p {
        SqlPredicate::Compare(a, op, b) => {
            let name = match op {
                CompareOp::Lt => "lt",
                CompareOp::Le => "le",
                CompareOp::Eq => "eq",
                CompareOp::Ne => "ne",
                CompareOp::Gt => "gt",
                CompareOp::Ge => "ge",
            };
            out.push_str(name);
            out.push('(');
            write_expr(out, a, alias_of);
            out.push(',');
            write_expr(out, b, alias_of);
            out.push(')');
        }
        SqlPredicate::And(a, b) => {
            out.push_str("and(");
            write_pred(out, a, alias_of);
            out.push(',');
            write_pred(out, b, alias_of);
            out.push(')');
        }
        SqlPredicate::Or(a, b) => {
            out.push_str("or(");
            write_pred(out, a, alias_of);
            out.push(',');
            write_pred(out, b, alias_of);
            out.push(')');
        }
        SqlPredicate::Not(a) => {
            out.push_str("not(");
            write_pred(out, a, alias_of);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_case_and_aliases_are_erased() {
        let a = sql_fingerprint(
            "SELECT P.seg FROM Products P, Market M \
             WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp LIMIT 25",
        )
        .unwrap();
        let b = sql_fingerprint(
            "select\n  Prod.seg\nfrom Products Prod ,\n Market MKT\nwhere \
             Prod.seg = MKT.seg and Prod.rrp * Prod.dis <= MKT.rrp limit 25",
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn literal_spellings_collapse() {
        let a = sql_fingerprint("SELECT P.id FROM Products P WHERE P.dis >= 0.80").unwrap();
        let b = sql_fingerprint("SELECT P.id FROM Products P WHERE P.dis >= 0.8").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn templates_stay_distinct() {
        let base = sql_fingerprint("SELECT P.id FROM Products P WHERE P.dis >= 0.8").unwrap();
        // A different constant is a different template.
        let other = sql_fingerprint("SELECT P.id FROM Products P WHERE P.dis >= 0.9").unwrap();
        assert_ne!(base, other);
        // A different LIMIT is a different template.
        let limited =
            sql_fingerprint("SELECT P.id FROM Products P WHERE P.dis >= 0.8 LIMIT 5").unwrap();
        assert_ne!(base, limited);
        // Reordered FROM items are (deliberately) distinct.
        let ab =
            sql_fingerprint("SELECT P.id FROM Products P, Market M WHERE P.rrp <= M.rrp").unwrap();
        let ba =
            sql_fingerprint("SELECT P.id FROM Market M, Products P WHERE P.rrp <= M.rrp").unwrap();
        assert_ne!(ab, ba);
    }

    #[test]
    fn fingerprint_is_readable_and_stable() {
        let fp = sql_fingerprint("SELECT P.id FROM Products P WHERE P.dis >= 0.5 LIMIT 3").unwrap();
        assert_eq!(fp, "select t0.id from Products t0 where ge(t0.dis,num(1/2)) limit 3");
    }

    #[test]
    fn rejects_what_the_parser_rejects() {
        assert!(sql_fingerprint("DELETE FROM Products").is_err());
    }

    #[test]
    fn duplicate_aliases_cannot_collide_with_valid_templates() {
        // `FROM Products M, Market M` is rejected at lowering; alias
        // renaming would otherwise erase the duplication and collide
        // with the valid P/M spelling, so duplicates get their own
        // fingerprint namespace.
        let valid =
            sql_fingerprint("SELECT M.seg FROM Products P, Market M WHERE M.seg = M.seg").unwrap();
        let dup =
            sql_fingerprint("SELECT M.seg FROM Products M, Market M WHERE M.seg = M.seg").unwrap();
        assert_ne!(valid, dup);
        assert!(dup.starts_with("dup!"), "duplicate-alias namespace is marked");
        assert!(!valid.starts_with("dup!"));
    }

    #[test]
    fn unknown_qualifiers_cannot_collide_with_canonical_aliases() {
        // The second query references undeclared alias `t1`, which the
        // renaming maps `M` onto; without the `?` marker the two texts
        // would share a fingerprint and the invalid query could be
        // served the valid template's cached plan.
        let valid =
            sql_fingerprint("SELECT M.seg FROM Products P, Market M WHERE P.seg = M.seg").unwrap();
        let invalid =
            sql_fingerprint("SELECT t1.seg FROM Products t0, Market M WHERE t0.seg = t1.seg")
                .unwrap();
        assert_ne!(valid, invalid);
        assert!(invalid.contains("?t1."), "unknown qualifiers carry the marker");
        assert!(!valid.contains('?'), "declared qualifiers never do");
    }
}
