use qarith_query::CompareOp;

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// `SELECT *` (all columns of all FROM items, in declaration order).
    pub star: bool,
    /// Selected column references (qualified or bare); empty for `*`.
    pub columns: Vec<ColumnRef>,
    /// FROM items.
    pub tables: Vec<TableRef>,
    /// WHERE predicate, if present.
    pub predicate: Option<SqlPredicate>,
    /// LIMIT, if present.
    pub limit: Option<usize>,
}

/// A table with an optional alias (`Products P`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// A column reference, possibly qualified (`P.seg`) or bare (`seg`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table alias, if qualified.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference.
    Column(ColumnRef),
    /// Numeric literal (textual; parsed exactly at lowering).
    Number(String),
    /// String literal.
    Str(String),
    /// `a + b`
    Add(Box<SqlExpr>, Box<SqlExpr>),
    /// `a - b`
    Sub(Box<SqlExpr>, Box<SqlExpr>),
    /// `a * b`
    Mul(Box<SqlExpr>, Box<SqlExpr>),
    /// `a / b`
    Div(Box<SqlExpr>, Box<SqlExpr>),
    /// `-a`
    Neg(Box<SqlExpr>),
}

/// A Boolean predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlPredicate {
    /// Comparison between scalar expressions.
    Compare(SqlExpr, CompareOp, SqlExpr),
    /// Conjunction.
    And(Box<SqlPredicate>, Box<SqlPredicate>),
    /// Disjunction.
    Or(Box<SqlPredicate>, Box<SqlPredicate>),
    /// Negation.
    Not(Box<SqlPredicate>),
}
