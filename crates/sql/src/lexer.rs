use std::fmt;

use crate::error::SqlError;

/// SQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (original case preserved).
    Ident(String),
    /// Numeric literal (unparsed text; exact parsing happens at lowering).
    Number(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*` (multiplication or SELECT star)
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Or,
    Not,
    Limit,
    As,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "identifier {s}"),
            Token::Number(s) => write!(f, "number {s}"),
            Token::Str(s) => write!(f, "string '{s}'"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token plus its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub position: usize,
}

/// Tokenizes SQL text.
pub fn lex(input: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            ',' => {
                out.push(Spanned { token: Token::Comma, position: start });
                i += 1;
            }
            '(' => {
                out.push(Spanned { token: Token::LParen, position: start });
                i += 1;
            }
            ')' => {
                out.push(Spanned { token: Token::RParen, position: start });
                i += 1;
            }
            '.' => {
                // A dot starting a number (.5) vs a qualifier dot.
                if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    let (tok, next) = lex_number(input, i);
                    out.push(Spanned { token: tok, position: start });
                    i = next;
                } else {
                    out.push(Spanned { token: Token::Dot, position: start });
                    i += 1;
                }
            }
            '*' => {
                out.push(Spanned { token: Token::Star, position: start });
                i += 1;
            }
            '+' => {
                out.push(Spanned { token: Token::Plus, position: start });
                i += 1;
            }
            '-' => {
                // SQL comments: `-- …`
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Spanned { token: Token::Minus, position: start });
                    i += 1;
                }
            }
            '/' => {
                out.push(Spanned { token: Token::Slash, position: start });
                i += 1;
            }
            '=' => {
                out.push(Spanned { token: Token::Eq, position: start });
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned { token: Token::Ne, position: start });
                    i += 2;
                } else {
                    return Err(SqlError::Lex { position: i, found: '!' });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned { token: Token::Le, position: start });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Spanned { token: Token::Ne, position: start });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Lt, position: start });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned { token: Token::Ge, position: start });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Gt, position: start });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(SqlError::Lex { position: i, found: '\'' });
                    }
                    if bytes[j] == b'\'' {
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                        } else {
                            j += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[j] as char);
                        j += 1;
                    }
                }
                out.push(Spanned { token: Token::Str(s), position: start });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i);
                out.push(Spanned { token: tok, position: start });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[i..j];
                let token = match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Token::Keyword(Keyword::Select),
                    "FROM" => Token::Keyword(Keyword::From),
                    "WHERE" => Token::Keyword(Keyword::Where),
                    "AND" => Token::Keyword(Keyword::And),
                    "OR" => Token::Keyword(Keyword::Or),
                    "NOT" => Token::Keyword(Keyword::Not),
                    "LIMIT" => Token::Keyword(Keyword::Limit),
                    "AS" => Token::Keyword(Keyword::As),
                    _ => Token::Ident(word.to_string()),
                };
                out.push(Spanned { token, position: start });
                i = j;
            }
            other => return Err(SqlError::Lex { position: i, found: other }),
        }
    }
    Ok(out)
}

fn lex_number(input: &str, start: usize) -> (Token, usize) {
    let bytes = input.as_bytes();
    let mut j = start;
    let mut seen_dot = false;
    while j < bytes.len() {
        let b = bytes[j];
        if b.is_ascii_digit() {
            j += 1;
        } else if b == b'.' && !seen_dot {
            // Only treat the dot as part of the number if a digit follows
            // (so `25.foo` lexes as 25, '.', foo).
            if j + 1 < bytes.len() && bytes[j + 1].is_ascii_digit() {
                seen_dot = true;
                j += 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    (Token::Number(input[start..j].to_string()), j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("select FROM Where aNd"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::From),
                Token::Keyword(Keyword::Where),
                Token::Keyword(Keyword::And),
            ]
        );
    }

    #[test]
    fn qualified_names_and_numbers() {
        assert_eq!(
            toks("P.rrp * 0.5 <= 25"),
            vec![
                Token::Ident("P".into()),
                Token::Dot,
                Token::Ident("rrp".into()),
                Token::Star,
                Token::Number("0.5".into()),
                Token::Le,
                Token::Number("25".into()),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= <> != < <= > >="),
            vec![Token::Eq, Token::Ne, Token::Ne, Token::Lt, Token::Le, Token::Gt, Token::Ge]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'abc'"), vec![Token::Str("abc".into())]);
        assert_eq!(toks("'it''s'"), vec![Token::Str("it's".into())]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- comment here\n x"),
            vec![Token::Keyword(Keyword::Select), Token::Ident("x".into())]
        );
    }

    #[test]
    fn leading_dot_number() {
        assert_eq!(toks(".5"), vec![Token::Number(".5".into())]);
    }

    #[test]
    fn bad_character() {
        assert!(matches!(lex("a # b"), Err(SqlError::Lex { found: '#', .. })));
    }
}
