//! A minimal Rust lexer: just enough tokens to scan items, paths, and
//! call expressions.
//!
//! The analyzer deliberately does not parse Rust — it scans token
//! streams with a handful of lexical conventions (receiver chains,
//! balanced delimiters, statement boundaries). That keeps the tool
//! dependency-free (no `syn`, no crates.io) in the same house style as
//! the hand-rolled JSON kernel in `qarith_bench::json`, at the cost of
//! being an approximation: the lint passes in [`crate::lints`] document
//! where they are lexical rather than semantic.
//!
//! The lexer also extracts **pragmas** — `// analyze: allow(<lint>,
//! reason = "...")` comments — which are the only sanctioned way to
//! silence a finding in checked code (see [`Pragma`]).

/// One token. Comments and whitespace are consumed by the lexer (line
/// comments may surface as [`Pragma`]s); everything else is kept.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident(String),
    /// A lifetime (`'a`). Kept distinct so `'a` is never confused with
    /// a char literal.
    Lifetime,
    /// A numeric literal (content irrelevant to every lint).
    Num,
    /// A string literal: `"…"`, `r"…"`, `r#"…"#`, or byte variants.
    Str,
    /// A char or byte-char literal.
    Char,
    /// A single punctuation character (`.`, `(`, `:`, …). Multi-char
    /// operators appear as consecutive tokens (`::` is `:` `:`).
    Punct(char),
}

/// A token with the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// An `// analyze: allow(<lint>, reason = "...")` pragma.
///
/// A pragma suppresses findings of lint `<lint>` on its own line
/// (trailing-comment form) and, when it is the only thing on its line
/// (standalone form), on the next line as well. The reason is
/// mandatory and must be non-empty: a pragma is a reviewed exception,
/// and the reason is what gets reviewed. Malformed pragmas — wrong
/// grammar, unknown shape, or an empty reason — are themselves
/// findings (`pragma`), so a typo can never silently disable a lint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// The lint id being allowed.
    pub lint: String,
    /// The documented reason (non-empty in a well-formed pragma).
    pub reason: String,
    /// `true` when the comment is the first thing on its line, making
    /// it apply to the following line.
    pub standalone: bool,
    /// `Some(message)` when the pragma failed to parse.
    pub malformed: Option<String>,
}

/// The lexed form of one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Pragmas in source order.
    pub pragmas: Vec<Pragma>,
}

/// Lexes one Rust source file. Invalid constructs (an unterminated
/// string, say) end the token stream early rather than erroring: the
/// analyzer runs over checked-in code that rustc already accepted, so
/// graceful degradation beats a second error channel.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut pos = 0usize;
    let mut line: u32 = 1;
    // Whether a token has already been emitted on the current line
    // (decides the standalone flag of a pragma comment).
    let mut token_on_line = false;

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' => {
                line += 1;
                token_on_line = false;
                pos += 1;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                let end = memchr_newline(bytes, pos);
                let text = &source[pos..end];
                if let Some(pragma) = parse_pragma(text, line, !token_on_line) {
                    out.pragmas.push(pragma);
                }
                pos = end;
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                pos = skip_block_comment(bytes, pos, &mut line);
            }
            b'"' => {
                out.tokens.push(Token { tok: Tok::Str, line });
                token_on_line = true;
                pos = skip_string(bytes, pos + 1, &mut line);
            }
            b'\'' => {
                let (tok, next) = char_or_lifetime(bytes, pos, &mut line);
                out.tokens.push(Token { tok, line });
                token_on_line = true;
                pos = next;
            }
            b'0'..=b'9' => {
                out.tokens.push(Token { tok: Tok::Num, line });
                token_on_line = true;
                pos = skip_number(bytes, pos);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = pos;
                while pos < bytes.len() && is_ident_continue(bytes[pos]) {
                    pos += 1;
                }
                let word = &source[start..pos];
                // Raw / byte string or byte char prefixes.
                if matches!(word, "r" | "b" | "br" | "rb")
                    && matches!(bytes.get(pos), Some(b'"' | b'#'))
                {
                    if let Some(next) = skip_raw_string(bytes, pos, &mut line) {
                        out.tokens.push(Token { tok: Tok::Str, line });
                        token_on_line = true;
                        pos = next;
                        continue;
                    }
                }
                if word == "b" && bytes.get(pos) == Some(&b'\'') {
                    let (_, next) = char_or_lifetime(bytes, pos, &mut line);
                    out.tokens.push(Token { tok: Tok::Char, line });
                    token_on_line = true;
                    pos = next;
                    continue;
                }
                out.tokens.push(Token { tok: Tok::Ident(word.to_string()), line });
                token_on_line = true;
            }
            _ => {
                // Multi-byte UTF-8 leading bytes land here too; emit
                // them as opaque punctuation so positions stay aligned.
                let c = source[pos..].chars().next().unwrap_or('\u{fffd}');
                out.tokens.push(Token { tok: Tok::Punct(c), line });
                token_on_line = true;
                pos += c.len_utf8();
            }
        }
    }
    out
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes[from..].iter().position(|&b| b == b'\n').map_or(bytes.len(), |i| from + i)
}

fn skip_block_comment(bytes: &[u8], mut pos: usize, line: &mut u32) -> usize {
    pos += 2;
    let mut depth = 1usize;
    while pos < bytes.len() && depth > 0 {
        match bytes[pos] {
            b'\n' => {
                *line += 1;
                pos += 1;
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                depth += 1;
                pos += 2;
            }
            b'*' if bytes.get(pos + 1) == Some(&b'/') => {
                depth -= 1;
                pos += 2;
            }
            _ => pos += 1,
        }
    }
    pos
}

fn skip_string(bytes: &[u8], mut pos: usize, line: &mut u32) -> usize {
    while pos < bytes.len() {
        match bytes[pos] {
            b'"' => return pos + 1,
            b'\\' => pos += 2,
            b'\n' => {
                *line += 1;
                pos += 1;
            }
            _ => pos += 1,
        }
    }
    pos
}

/// `pos` is at the first `#` or `"` after an `r`/`br` prefix. Returns
/// `None` when this is not actually a raw string (e.g. `r#foo` raw
/// identifiers).
fn skip_raw_string(bytes: &[u8], mut pos: usize, line: &mut u32) -> Option<usize> {
    let mut hashes = 0usize;
    while bytes.get(pos) == Some(&b'#') {
        hashes += 1;
        pos += 1;
    }
    if bytes.get(pos) != Some(&b'"') {
        return None;
    }
    pos += 1;
    while pos < bytes.len() {
        if bytes[pos] == b'\n' {
            *line += 1;
        }
        if bytes[pos] == b'"' {
            let after = pos + 1;
            if bytes[after..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes {
                return Some(after + hashes);
            }
        }
        pos += 1;
    }
    Some(pos)
}

fn skip_number(bytes: &[u8], mut pos: usize) -> usize {
    while pos < bytes.len() {
        match bytes[pos] {
            b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => pos += 1,
            // A dot continues the number only when followed by a digit
            // (so `0..n` and `1.max(2)` lex as separate tokens).
            b'.' if matches!(bytes.get(pos + 1), Some(b'0'..=b'9')) => pos += 1,
            _ => break,
        }
    }
    pos
}

/// `pos` is at a `'`. Distinguishes char literals from lifetimes.
fn char_or_lifetime(bytes: &[u8], pos: usize, line: &mut u32) -> (Tok, usize) {
    let mut p = pos + 1;
    match bytes.get(p) {
        Some(b'\\') => {
            // Escaped char literal: consume to the closing quote.
            p += 2;
            while p < bytes.len() && bytes[p] != b'\'' {
                if bytes[p] == b'\n' {
                    *line += 1;
                }
                p += 1;
            }
            (Tok::Char, (p + 1).min(bytes.len()))
        }
        Some(&c) if is_ident_continue(c) => {
            // `'a'` is a char; `'a` (no closing quote after one ident
            // char run) is a lifetime.
            let mut q = p;
            while q < bytes.len() && is_ident_continue(bytes[q]) {
                q += 1;
            }
            if bytes.get(q) == Some(&b'\'') && q == p + 1 {
                (Tok::Char, q + 1)
            } else if bytes.get(q) == Some(&b'\'') && q > p + 1 {
                // `'abc'` is not valid Rust; treat as char and move on.
                (Tok::Char, q + 1)
            } else {
                (Tok::Lifetime, q)
            }
        }
        Some(_) => {
            // `'('` style single-char literal.
            let close = if bytes.get(p + 1) == Some(&b'\'') { p + 2 } else { p + 1 };
            (Tok::Char, close)
        }
        None => (Tok::Char, p),
    }
}

/// Parses a line comment into a pragma, if it mentions `analyze:` at
/// all. Comments that never say `analyze:` return `None`; comments
/// that do but fail the grammar return a malformed pragma (which the
/// driver turns into a `pragma` finding).
fn parse_pragma(comment: &str, line: u32, standalone: bool) -> Option<Pragma> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("analyze:")?.trim();
    let malformed = |msg: &str| {
        Some(Pragma {
            line,
            lint: String::new(),
            reason: String::new(),
            standalone,
            malformed: Some(msg.to_string()),
        })
    };
    let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')) else {
        return malformed("expected `analyze: allow(<lint>, reason = \"...\")`");
    };
    let Some((lint, reason_part)) = args.split_once(',') else {
        return malformed("missing `, reason = \"...\"`");
    };
    let lint = lint.trim();
    if lint.is_empty() || !lint.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return malformed("lint id must be a kebab-case name");
    }
    let Some(reason) = reason_part
        .trim()
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
    else {
        return malformed("expected `reason = \"...\"`");
    };
    if reason.trim().is_empty() {
        return malformed("reason must be non-empty");
    }
    Some(Pragma {
        line,
        lint: lint.to_string(),
        reason: reason.to_string(),
        standalone,
        malformed: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lexes_idents_paths_and_calls() {
        let lexed = lex("fn f() { self.map.lock().unwrap(); }");
        let words = ["fn", "f", "self", "map", "lock", "unwrap"];
        assert_eq!(idents("fn f() { self.map.lock().unwrap(); }"), words);
        assert_eq!(lexed.tokens[0].line, 1);
    }

    #[test]
    fn strings_chars_lifetimes_do_not_leak_tokens() {
        let src = r##"let s = "ha { } .lock()"; let r = r#"raw "x" ] "#; let c = '}'; let e = '\n';
fn g<'a>(x: &'a str) {}"##;
        let words = idents(src);
        assert!(!words.contains(&"lock".to_string()));
        assert!(words.contains(&"g".to_string()));
        // The lifetime 'a must not swallow `(x` as a char literal.
        assert!(words.contains(&"x".to_string()));
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let src = "// top\n/* block\nstill block */ fn after() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].tok, Tok::Ident("fn".into()));
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn pragma_well_formed() {
        let src =
            "x();\n// analyze: allow(panic-unwrap, reason = \"bounded by construction\")\ny();";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 1);
        let p = &lexed.pragmas[0];
        assert_eq!(p.lint, "panic-unwrap");
        assert_eq!(p.reason, "bounded by construction");
        assert!(p.standalone);
        assert!(p.malformed.is_none());
        assert_eq!(p.line, 2);
    }

    #[test]
    fn pragma_trailing_is_not_standalone() {
        let src = "x(); // analyze: allow(lock-order, reason = \"test harness\")";
        let lexed = lex(src);
        assert!(!lexed.pragmas[0].standalone);
    }

    #[test]
    fn pragma_malformed_variants() {
        for bad in [
            "// analyze: allow(panic-unwrap)",
            "// analyze: allow(panic-unwrap, reason = \"\")",
            "// analyze: allow(panic-unwrap, reason = \"  \")",
            "// analyze: deny(panic-unwrap, reason = \"x\")",
            "// analyze: allow(bad name!, reason = \"x\")",
        ] {
            let lexed = lex(bad);
            assert_eq!(lexed.pragmas.len(), 1, "{bad}");
            assert!(lexed.pragmas[0].malformed.is_some(), "{bad}");
        }
        // A comment that never says `analyze:` is not a pragma at all.
        assert!(lex("// allow(whatever)").pragmas.is_empty());
    }

    #[test]
    fn numbers_and_ranges() {
        let words = idents("for i in 0..n { a[i] = 1.5e3; h % 2u64 }");
        assert_eq!(words, ["for", "i", "in", "n", "a", "i", "h"]);
    }
}
