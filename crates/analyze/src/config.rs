//! `analyze.toml`: the checked-in configuration of the analyzer.
//!
//! The file declares *policy* — which modules are bit-pinned, what the
//! lock hierarchy is, which files form the serve request path — while
//! the lint *mechanics* live in code. Policy belongs in review-able
//! data: adding a crate to the bit-pinned set or a class to the lock
//! hierarchy is a one-line diff that CI immediately enforces.
//!
//! The parser is a deliberately small TOML subset (same philosophy as
//! the JSON kernel in `qarith_bench::json`): tables `[a]` / `[a.b]`,
//! arrays-of-tables `[[a.b]]`, and `key = value` where a value is a
//! basic string or a (possibly multi-line) array of basic strings.
//! Unknown sections or keys are hard errors — a typo in a policy file
//! must fail the build, not silently relax it.

use std::fmt;

/// One class in the declared lock hierarchy. Classes are ranked by
/// declaration order: a guard of class *i* may be acquired while
/// holding guards of classes `< i` only.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LockClass {
    /// Human name, used in diagnostics (`AdmissionGate`).
    pub name: String,
    /// Receiver-chain suffix patterns that acquire this class, as
    /// dotted paths whose last segment is the guard method
    /// (`"plans.read"`, `"shard_of.lock"`).
    pub acquire: Vec<String>,
}

/// Associates a condvar-wait receiver pattern with the lock class of
/// the mutex it releases, so waiting with *only* that class held is
/// legal while holding anything else across the wait is flagged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CondvarRule {
    /// Receiver-chain suffix patterns ending in `wait`
    /// (`"released.wait"`).
    pub wait: Vec<String>,
    /// Name of the [`LockClass`] whose guard the wait releases.
    pub class: String,
}

/// The parsed `analyze.toml`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Config {
    /// Path prefixes (relative to the workspace root, `/`-separated)
    /// whose files must be deterministic: no hash-order iteration, no
    /// ambient clocks/environment.
    pub bit_pinned: Vec<String>,
    /// Path prefixes exempt from the clock/env lint even when
    /// bit-pinned (declared timing/config sites).
    pub clock_allowed: Vec<String>,
    /// Path prefixes forming the serve request path, where panicking
    /// constructs require a pragma.
    pub request_path: Vec<String>,
    /// The lock hierarchy, outermost first.
    pub classes: Vec<LockClass>,
    /// Condvar-wait associations.
    pub condvars: Vec<CondvarRule>,
    /// Function names that must never be called while holding any
    /// hierarchy guard (service re-entry points).
    pub no_reentry: Vec<String>,
    /// Method names that read timing back out of the tracer
    /// (`latency_stats`, `quantile`, …). Calling one inside a
    /// bit-pinned file (outside `clock_allowed`) is a `trace-flow`
    /// finding: observability data must never feed measurement inputs.
    pub trace_read_back: Vec<String>,
}

impl Config {
    /// Rank of the class a receiver chain acquires, with the matched
    /// class, if any pattern matches.
    pub fn class_of_chain(&self, chain: &[String]) -> Option<(usize, &LockClass)> {
        self.classes
            .iter()
            .enumerate()
            .find(|(_, c)| c.acquire.iter().any(|p| chain_matches(chain, p)))
    }

    /// The condvar rule a `.wait(..)` receiver chain matches, if any.
    pub fn condvar_of_chain(&self, chain: &[String]) -> Option<&CondvarRule> {
        self.condvars.iter().find(|r| r.wait.iter().any(|p| chain_matches(chain, p)))
    }
}

/// Does `chain` (receiver idents, outermost first) end with the dotted
/// `pattern`? A leading `self` in the chain is ignored so patterns
/// read naturally (`"plans.read"` matches `self.plans.read`).
pub fn chain_matches(chain: &[String], pattern: &str) -> bool {
    let segments: Vec<&str> = pattern.split('.').collect();
    if segments.len() > chain.len() {
        return false;
    }
    chain[chain.len() - segments.len()..].iter().map(String::as_str).eq(segments)
}

/// A configuration-file error with its 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// What went wrong.
    pub message: String,
    /// 1-based line in `analyze.toml`.
    pub line: usize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analyze.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Parses the configuration text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ConfigError { message, line: line_no };
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            match name.trim() {
                "lock.class" => config.classes.push(LockClass::default()),
                "lock.condvar" => config.condvars.push(CondvarRule::default()),
                other => return Err(err(format!("unknown array-of-tables `[[{other}]]`"))),
            }
            section = name.trim().to_string();
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            match name.trim() {
                "determinism" | "panic" | "lock" | "trace" => section = name.trim().to_string(),
                other => return Err(err(format!("unknown section `[{other}]`"))),
            }
            continue;
        }
        let Some((key, first_value_part)) = line.split_once('=') else {
            return Err(err(format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        // Accumulate multi-line arrays until brackets balance outside
        // strings.
        let mut value_text = first_value_part.trim().to_string();
        while !brackets_balanced(&value_text) {
            let Some((_, next)) = lines.next() else {
                return Err(err(format!("unterminated array value for `{key}`")));
            };
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
        }
        let value = parse_value(&value_text).map_err(|m| err(format!("key `{key}`: {m}")))?;
        assign(&mut config, &section, key, value).map_err(err)?;
    }
    if config.classes.is_empty() {
        return Err(ConfigError {
            message: "no [[lock.class]] entries: the lock hierarchy must be declared".into(),
            line: 1,
        });
    }
    for rule in &config.condvars {
        if !config.classes.iter().any(|c| c.name == rule.class) {
            return Err(ConfigError {
                message: format!("[[lock.condvar]] names unknown class `{}`", rule.class),
                line: 1,
            });
        }
    }
    Ok(config)
}

/// A parsed value: a string or an array of strings.
enum Value {
    Str(String),
    Arr(Vec<String>),
}

fn assign(config: &mut Config, section: &str, key: &str, value: Value) -> Result<(), String> {
    let arr = |v: Value| match v {
        Value::Arr(items) => Ok(items),
        Value::Str(_) => Err("expected an array of strings".to_string()),
    };
    let string = |v: Value| match v {
        Value::Str(s) => Ok(s),
        Value::Arr(_) => Err("expected a string".to_string()),
    };
    match (section, key) {
        ("determinism", "bit_pinned") => config.bit_pinned = arr(value)?,
        ("determinism", "clock_allowed") => config.clock_allowed = arr(value)?,
        ("panic", "request_path") => config.request_path = arr(value)?,
        ("lock", "no_reentry") => config.no_reentry = arr(value)?,
        ("trace", "read_back") => config.trace_read_back = arr(value)?,
        ("lock.class", "name") => {
            let class = config.classes.last_mut().ok_or("no open [[lock.class]]")?;
            class.name = string(value)?;
        }
        ("lock.class", "acquire") => {
            let class = config.classes.last_mut().ok_or("no open [[lock.class]]")?;
            class.acquire = arr(value)?;
        }
        ("lock.condvar", "wait") => {
            let rule = config.condvars.last_mut().ok_or("no open [[lock.condvar]]")?;
            rule.wait = arr(value)?;
        }
        ("lock.condvar", "class") => {
            let rule = config.condvars.last_mut().ok_or("no open [[lock.condvar]]")?;
            rule.class = string(value)?;
        }
        (s, k) => return Err(format!("unknown key `{k}` in section `[{s}]`")),
    }
    Ok(())
}

/// Removes a `#` comment, respecting basic strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn brackets_balanced(text: &str) -> bool {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => escaped = false,
        }
    }
    depth == 0
}

fn parse_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or("unterminated array")?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            let (item, after) = parse_string(rest)?;
            items.push(item);
            rest = after.trim_start();
            match rest.strip_prefix(',') {
                Some(after_comma) => rest = after_comma.trim_start(),
                None if rest.is_empty() => break,
                None => return Err(format!("expected `,` between array items near `{rest}`")),
            }
        }
        return Ok(Value::Arr(items));
    }
    let (s, after) = parse_string(text)?;
    if !after.trim().is_empty() {
        return Err(format!("trailing characters after string: `{after}`"));
    }
    Ok(Value::Str(s))
}

/// Parses one basic string at the start of `text`; returns it and the
/// remainder.
fn parse_string(text: &str) -> Result<(String, &str), String> {
    let rest = text.strip_prefix('"').ok_or_else(|| format!("expected a string at `{text}`"))?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => return Err(format!("unsupported escape `\\{other}`")),
                None => return Err("dangling escape".into()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# policy file
[determinism]
bit_pinned = [
    "crates/core/src",      # sampling routes
    "crates/datagen/src",
]
clock_allowed = ["crates/core/src/report.rs"]

[panic]
request_path = ["crates/serve/src/service.rs"]

[lock]
no_reentry = ["query", "execute_plan"]

[trace]
read_back = ["latency_stats", "quantile"]

[[lock.class]]
name = "AdmissionGate"
acquire = ["in_flight.lock"]

[[lock.class]]
name = "PlanCache"
acquire = ["plans.read", "plans.write"]

[[lock.condvar]]
wait = ["released.wait"]
class = "AdmissionGate"
"#;

    #[test]
    fn parses_the_full_shape() {
        let config = parse(SAMPLE).expect("sample parses");
        assert_eq!(config.bit_pinned, ["crates/core/src", "crates/datagen/src"]);
        assert_eq!(config.clock_allowed, ["crates/core/src/report.rs"]);
        assert_eq!(config.request_path, ["crates/serve/src/service.rs"]);
        assert_eq!(config.no_reentry, ["query", "execute_plan"]);
        assert_eq!(config.trace_read_back, ["latency_stats", "quantile"]);
        assert_eq!(config.classes.len(), 2);
        assert_eq!(config.classes[1].acquire, ["plans.read", "plans.write"]);
        assert_eq!(config.condvars[0].class, "AdmissionGate");
    }

    #[test]
    fn hierarchy_rank_is_declaration_order() {
        let config = parse(SAMPLE).unwrap();
        let chain = |parts: &[&str]| parts.iter().map(ToString::to_string).collect::<Vec<_>>();
        let (rank, class) = config.class_of_chain(&chain(&["self", "plans", "write"])).unwrap();
        assert_eq!((rank, class.name.as_str()), (1, "PlanCache"));
        let (rank, _) = config.class_of_chain(&chain(&["self", "in_flight", "lock"])).unwrap();
        assert_eq!(rank, 0);
        assert!(config.class_of_chain(&chain(&["self", "data", "lock"])).is_none());
        assert!(config.condvar_of_chain(&chain(&["self", "released", "wait"])).is_some());
    }

    #[test]
    fn chain_matching_requires_full_segments() {
        let chain = |parts: &[&str]| parts.iter().map(ToString::to_string).collect::<Vec<_>>();
        assert!(chain_matches(&chain(&["self", "plans", "read"]), "plans.read"));
        assert!(chain_matches(&chain(&["plans", "read"]), "plans.read"));
        assert!(!chain_matches(&chain(&["replans", "read"]), "plans.read"));
        assert!(!chain_matches(&chain(&["read"]), "plans.read"));
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(parse("[nope]\n").is_err());
        assert!(parse("[determinism]\nbogus = [\"x\"]\n[[lock.class]]\nname=\"A\"").is_err());
        assert!(parse("[determinism]\nbit_pinned = \"not-an-array\"").is_err());
    }

    #[test]
    fn requires_a_declared_hierarchy_and_known_condvar_classes() {
        assert!(parse("[determinism]\nbit_pinned = []\n").is_err());
        let bad = "[[lock.class]]\nname = \"A\"\nacquire = [\"a.lock\"]\n\
                   [[lock.condvar]]\nwait = [\"w.wait\"]\nclass = \"Ghost\"\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn comments_and_strings_interact() {
        let config = parse(
            "[determinism]\nbit_pinned = [\"a#b\"] # trailing\n[[lock.class]]\n\
             name = \"C\"\nacquire = [\"c.lock\"]\n",
        )
        .unwrap();
        assert_eq!(config.bit_pinned, ["a#b"]);
    }
}
