//! Shared token-stream scanning utilities for the lint passes.

use crate::lexer::{Tok, Token};

/// Returns the token stream with test-only code removed: bodies of
/// `#[cfg(test)]` items (modules, usually) and `#[test]` functions.
/// The lints police shipped behavior; tests are free to `unwrap()` and
/// iterate however they like.
pub fn strip_tests(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Punct('#')
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let Some(close) = matching(tokens, i + 1, '[', ']') else {
                out.extend_from_slice(&tokens[i..]);
                break;
            };
            let attr_idents: Vec<&str> = tokens[i + 2..close]
                .iter()
                .filter_map(|t| match &t.tok {
                    Tok::Ident(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect();
            let is_test_attr = attr_idents == ["test"] || attr_idents == ["cfg", "test"];
            if is_test_attr {
                // Skip this attribute, any further attributes, and the
                // item they decorate (to its `;` or balanced `{ }`).
                i = skip_item(tokens, close + 1);
                continue;
            }
            // A non-test attribute: copy it through verbatim.
            out.extend_from_slice(&tokens[i..=close]);
            i = close + 1;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Skips further attributes and then one item starting at `i`,
/// returning the index just past it.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i < tokens.len()
        && tokens[i].tok == Tok::Punct('#')
        && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
    {
        match matching(tokens, i + 1, '[', ']') {
            Some(c) => i = c + 1,
            None => return tokens.len(),
        }
    }
    // The item ends at the first `;` or the close of the first `{ }`
    // at nesting depth zero relative to here.
    let mut depth = 0i64;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct(';') if depth == 0 => return i + 1,
            Tok::Punct('{') => {
                let close = matching(tokens, i, '{', '}').unwrap_or(tokens.len() - 1);
                return close + 1;
            }
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Index of the delimiter matching `open` at `tokens[at]`.
pub fn matching(tokens: &[Token], at: usize, open: char, close: char) -> Option<usize> {
    debug_assert_eq!(tokens[at].tok, Tok::Punct(open));
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(at) {
        match t.tok {
            Tok::Punct(c) if c == open => depth += 1,
            Tok::Punct(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// A function item located in a token stream: its name and the token
/// range of its body (inside the braces, exclusive of them).
#[derive(Clone, Debug)]
pub struct FnBody {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Start token index of the body (just past `{`).
    pub start: usize,
    /// End token index of the body (the `}` itself).
    pub end: usize,
}

/// Finds every `fn` item (including nested ones) and its body range.
/// Signature scanning tracks angle brackets so `-> Result<X, Y>` never
/// confuses the search for the body's opening brace.
pub fn functions(tokens: &[Token]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Tok::Ident(kw) = &tokens[i].tok {
            if kw == "fn" {
                if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                    if let Some(open) = body_open(tokens, i + 2) {
                        if let Some(close) = matching(tokens, open, '{', '}') {
                            out.push(FnBody {
                                name: name.clone(),
                                line: tokens[i].line,
                                start: open + 1,
                                end: close,
                            });
                        }
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Scans a signature from just past the function name to the opening
/// `{` of its body, or `None` for a bodyless declaration (trait
/// methods end at `;`).
fn body_open(tokens: &[Token], mut i: usize) -> Option<usize> {
    let mut angle = 0i64;
    let mut paren = 0i64;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('<') => angle += 1,
            // `->` must not count its `>` as closing an angle bracket.
            Tok::Punct('>') if i > 0 && tokens[i - 1].tok == Tok::Punct('-') => {}
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct('{') if angle <= 0 && paren == 0 => return Some(i),
            Tok::Punct(';') if angle <= 0 && paren == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Reconstructs the receiver chain of a method call whose method-name
/// ident sits at `tokens[at]`: the dotted identifiers to its left,
/// skipping over call-argument parentheses, index brackets, and `?`.
/// For `self.shard_of(key).lock()` with `at` on `lock`, the chain is
/// `["self", "shard_of", "lock"]`.
pub fn receiver_chain(tokens: &[Token], at: usize) -> Vec<String> {
    let mut chain = vec![match &tokens[at].tok {
        Tok::Ident(s) => s.clone(),
        _ => return Vec::new(),
    }];
    let mut i = at;
    loop {
        // Expect a `.` immediately left of the current chain element.
        if i == 0 || tokens[i - 1].tok != Tok::Punct('.') {
            break;
        }
        let mut j = i - 2; // candidate position left of the dot
        loop {
            match tokens.get(j).map(|t| &t.tok) {
                Some(Tok::Punct(')')) => match matching_back(tokens, j, '(', ')') {
                    Some(open) if open > 0 => j = open - 1,
                    _ => return chain_reversed(chain),
                },
                Some(Tok::Punct(']')) => match matching_back(tokens, j, '[', ']') {
                    Some(open) if open > 0 => j = open - 1,
                    _ => return chain_reversed(chain),
                },
                Some(Tok::Punct('?')) if j > 0 => j -= 1,
                Some(Tok::Ident(s)) => {
                    chain.push(s.clone());
                    i = j;
                    break;
                }
                _ => return chain_reversed(chain),
            }
        }
        if i == 0 {
            break;
        }
    }
    chain_reversed(chain)
}

fn chain_reversed(mut chain: Vec<String>) -> Vec<String> {
    chain.reverse();
    chain
}

/// Index of the `open` delimiter matching the `close` at `tokens[at]`,
/// scanning backwards.
fn matching_back(tokens: &[Token], at: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for i in (0..=at).rev() {
        match tokens[i].tok {
            Tok::Punct(c) if c == close => depth += 1,
            Tok::Punct(c) if c == open => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Is the ident at `at` the method of a call, i.e. followed by `(`
/// (possibly via `::<…>` turbofish)?
pub fn is_call(tokens: &[Token], at: usize) -> bool {
    match tokens.get(at + 1).map(|t| &t.tok) {
        Some(Tok::Punct('(')) => true,
        Some(Tok::Punct(':'))
            if matches!(tokens.get(at + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                && matches!(tokens.get(at + 3).map(|t| &t.tok), Some(Tok::Punct('<'))) =>
        {
            // `collect::<Vec<_>>()` — find the matching `>` then `(`.
            let mut depth = 0i64;
            let mut i = at + 3;
            while i < tokens.len() {
                match tokens[i].tok {
                    Tok::Punct('<') => depth += 1,
                    Tok::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            return matches!(
                                tokens.get(i + 1).map(|t| &t.tok),
                                Some(Tok::Punct('('))
                            );
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            false
        }
        _ => false,
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [T]`, `let [a, b] = …`, `for x in [1, 2]`…).
pub fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn words(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strips_cfg_test_modules_and_test_fns() {
        let src = "fn keep() {}\n#[cfg(test)]\nmod tests { fn gone() { x.unwrap(); } }\n\
                   #[test]\nfn also_gone() { y.unwrap(); }\nfn keep2() {}";
        let stripped = strip_tests(&lex(src).tokens);
        let w = words(&stripped);
        assert!(w.contains(&"keep") && w.contains(&"keep2"));
        assert!(!w.contains(&"gone") && !w.contains(&"also_gone") && !w.contains(&"unwrap"));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src = "#[cfg(not(test))]\nfn kept() {}";
        let stripped = strip_tests(&lex(src).tokens);
        assert!(words(&stripped).contains(&"kept"));
    }

    #[test]
    fn derive_attributes_pass_through() {
        let src = "#[derive(Clone, Debug)]\nstruct S { x: u32 }";
        let stripped = strip_tests(&lex(src).tokens);
        assert!(words(&stripped).contains(&"derive"));
        assert!(words(&stripped).contains(&"S"));
    }

    #[test]
    fn finds_functions_with_generic_signatures() {
        let src = "impl S { fn plain(&self) -> Result<Vec<u8>, Error<'static>> { body() } }\n\
                   fn free<T: Into<String>>(x: T) where T: Clone { other() }\n\
                   trait T { fn decl(&self); }";
        let tokens = lex(src).tokens;
        let fns = functions(&tokens);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["plain", "free"], "bodyless decl excluded");
        let body = &tokens[fns[0].start..fns[0].end];
        assert_eq!(words(body), ["body"]);
    }

    #[test]
    fn receiver_chains_skip_call_args_and_try() {
        let src = "let g = self.shard_of(group_key).lock(); map.read()?.get(k); x[0].lock();";
        let tokens = lex(src).tokens;
        let chain_at = |name: &str| {
            let at = tokens
                .iter()
                .position(|t| t.tok == Tok::Ident(name.into()))
                .expect("method present");
            receiver_chain(&tokens, at)
        };
        assert_eq!(chain_at("lock"), ["self", "shard_of", "lock"]);
        assert_eq!(chain_at("get"), ["map", "read", "get"]);
        let last_lock = tokens
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| t.tok == Tok::Ident("lock".into()))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(receiver_chain(&tokens, last_lock), ["x", "lock"]);
    }

    #[test]
    fn call_detection_handles_turbofish() {
        let tokens = lex("v.collect::<Vec<_>>(); just.field").tokens;
        let collect = tokens.iter().position(|t| t.tok == Tok::Ident("collect".into())).unwrap();
        assert!(is_call(&tokens, collect));
        let field = tokens.iter().position(|t| t.tok == Tok::Ident("field".into())).unwrap();
        assert!(!is_call(&tokens, field));
    }
}
