//! # qarith-analyze — CI-gated static invariant checker
//!
//! The workspace's headline guarantees — bit-identical ν across
//! sequential/batch/concurrent routes, cost-only cache eviction, a
//! deadlock-free serving layer — are enforced at runtime by tests that
//! sample a handful of schedules. This crate is the *static* half: a
//! dependency-free analyzer (a small Rust lexer plus a token-stream
//! scanner — no `syn`, no crates.io, in the house style of the JSON
//! kernel it reuses from `qarith_bench::json`) that walks every
//! `crates/*/src` and `src/` file and mechanically rejects code that
//! could break those guarantees *before* it merges:
//!
//! * **determinism** ([`lints::determinism`]) — bit-pinned modules
//!   must not iterate hash collections into output or keys, nor read
//!   clocks, environment, or entropy;
//! * **lock discipline** ([`lints::locks`]) — guard acquisitions must
//!   respect the hierarchy declared in `analyze.toml`, never hold a
//!   foreign guard across a condvar wait, never re-enter the service
//!   under a lock;
//! * **panic safety** ([`lints::panics`]) — no `unwrap`/`expect`/
//!   `panic!`/indexing in the serve request path;
//! * **trace flow** ([`lints::trace`]) — bit-pinned modules must not
//!   read timing back out of the tracer; observability data never
//!   flows into measurement inputs.
//!
//! Policy (which paths are bit-pinned, the lock hierarchy, the request
//! path) lives in the checked-in [`analyze.toml`](crate::config);
//! justified exceptions live next to the code as
//! `// analyze: allow(<lint>, reason = "...")` pragmas whose reasons
//! are reviewed like code. Findings are emitted as `file:line` human
//! diagnostics plus a machine-readable JSON document; CI runs
//! `qarith-analyze --deny-all` as a required gate and uploads the
//! JSON as an artifact.
//!
//! Layering: a development-time tool at the very top of the workspace,
//! beside `qarith-bench` (whose JSON kernel it reuses); nothing
//! depends on it and it depends on nothing else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod findings;
pub mod lexer;
pub mod lints;
pub mod scan;

use std::io;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use findings::Finding;

/// Is `file` (workspace-relative, `/`-separated) under one of the
/// configured path `prefixes`? A prefix matches the file itself or any
/// file below it as a directory.
pub fn in_scope(file: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        let p = p.trim_end_matches('/');
        file == p || file.strip_prefix(p).is_some_and(|rest| rest.starts_with('/'))
    })
}

/// Analyzes one source file's text. `rel_path` is the
/// workspace-relative `/`-separated path used for scoping and
/// diagnostics. Returns findings sorted and deduplicated, with pragma
/// suppression applied.
pub fn analyze_source(rel_path: &str, source: &str, config: &Config) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let tokens = scan::strip_tests(&lexed.tokens);
    let mut findings = Vec::new();

    // Malformed pragmas are findings themselves (and can never
    // suppress anything).
    for pragma in &lexed.pragmas {
        if let Some(what) = &pragma.malformed {
            findings.push(Finding {
                lint: "pragma",
                file: rel_path.to_string(),
                line: pragma.line,
                message: format!("malformed analyze pragma: {what}"),
            });
        }
    }

    if in_scope(rel_path, &config.bit_pinned) {
        let clock_allowed = in_scope(rel_path, &config.clock_allowed);
        lints::determinism::check(rel_path, &tokens, clock_allowed, &mut findings);
        if !clock_allowed {
            lints::trace::check(rel_path, &tokens, config, &mut findings);
        }
    }
    if in_scope(rel_path, &config.request_path) {
        lints::panics::check(rel_path, &tokens, &mut findings);
    }
    lints::locks::check(rel_path, &tokens, config, &mut findings);

    // Pragma suppression: a well-formed pragma allows its lint on its
    // own line, and on the next line when it stands alone.
    findings.retain(|f| {
        f.lint == "pragma"
            || !lexed.pragmas.iter().any(|p| {
                p.malformed.is_none()
                    && p.lint == f.lint
                    && (p.line == f.line || (p.standalone && p.line + 1 == f.line))
            })
    });

    findings::sort(&mut findings);
    // Nested functions are scanned both standalone and inside their
    // parent, so identical findings can repeat.
    findings.dedup();
    findings
}

/// The set of files the analyzer covers: every `.rs` under the root
/// `src/` and under each `crates/*/src/`, sorted for deterministic
/// reports. Tests, examples, benches, and `vendor/` are out of scope —
/// the lints police shipped behavior.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes a list of files on disk against `config`, reporting paths
/// relative to `root`.
pub fn analyze_files(root: &Path, files: &[PathBuf], config: &Config) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(file);
        let rel = rel.to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(file)?;
        findings.extend(analyze_source(&rel, &source, config));
    }
    findings::sort(&mut findings);
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> Config {
        config::parse(
            r#"
[determinism]
bit_pinned = ["crates/core/src"]
clock_allowed = ["crates/core/src/report.rs"]

[panic]
request_path = ["crates/serve/src/service.rs"]

[[lock.class]]
name = "A"
acquire = ["a.lock"]
"#,
        )
        .unwrap()
    }

    #[test]
    fn scoping_is_prefix_with_boundaries() {
        let prefixes = vec!["crates/core/src".to_string(), "src/lib.rs".to_string()];
        assert!(in_scope("crates/core/src/lib.rs", &prefixes));
        assert!(in_scope("crates/core/src/exact/order.rs", &prefixes));
        assert!(in_scope("src/lib.rs", &prefixes));
        assert!(!in_scope("crates/core/srcx/lib.rs", &prefixes));
        assert!(!in_scope("crates/serve/src/lib.rs", &prefixes));
    }

    #[test]
    fn lints_respect_their_scopes() {
        let src = "fn f(m: &HashMap<u8, u8>) { for x in m.keys() { emit(x); } x.unwrap(); }";
        let config = test_config();
        let pinned = analyze_source("crates/core/src/lib.rs", src, &config);
        assert_eq!(pinned.len(), 1, "{pinned:?}");
        assert_eq!(pinned[0].lint, "hash-iteration");
        let serve = analyze_source("crates/serve/src/service.rs", src, &config);
        assert_eq!(serve.len(), 1, "{serve:?}");
        assert_eq!(serve[0].lint, "panic-unwrap");
        assert!(analyze_source("crates/sql/src/lib.rs", src, &config).is_empty());
    }

    #[test]
    fn pragmas_suppress_same_and_next_line() {
        let config = test_config();
        let trailing = "fn f(x: Option<u8>) { x.unwrap(); } \
                        // analyze: allow(panic-unwrap, reason = \"checked above\")";
        assert!(analyze_source("crates/serve/src/service.rs", trailing, &config).is_empty());
        let standalone = "// analyze: allow(panic-unwrap, reason = \"checked above\")\n\
                          fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(analyze_source("crates/serve/src/service.rs", standalone, &config).is_empty());
        let wrong_lint = "// analyze: allow(panic-expect, reason = \"oops\")\n\
                          fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(analyze_source("crates/serve/src/service.rs", wrong_lint, &config).len(), 1);
    }

    #[test]
    fn malformed_pragma_is_a_finding_everywhere() {
        let config = test_config();
        let src = "// analyze: allow(panic-unwrap, reason = \"\")\nfn f() {}";
        let out = analyze_source("crates/sql/src/lib.rs", src, &config);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "pragma");
    }

    #[test]
    fn trace_read_back_is_flagged_only_outside_clock_allowed() {
        let config = config::parse(
            r#"
[determinism]
bit_pinned = ["crates/core/src", "crates/trace/src"]
clock_allowed = ["crates/trace/src"]

[trace]
read_back = ["latency_stats"]

[[lock.class]]
name = "A"
acquire = ["a.lock"]
"#,
        )
        .unwrap();
        let src = "fn f(&self) { let s = self.tracer.latency_stats(); }";
        let pinned = analyze_source("crates/core/src/pipeline.rs", src, &config);
        assert_eq!(pinned.len(), 1, "{pinned:?}");
        assert_eq!(pinned[0].lint, "trace-flow");
        // The tracer's own (clock_allowed) sources read themselves back
        // by definition; out-of-scope crates are free to observe.
        assert!(analyze_source("crates/trace/src/span.rs", src, &config).is_empty());
        assert!(analyze_source("crates/serve/src/service.rs", src, &config).is_empty());
    }

    #[test]
    fn clock_allowed_path_skips_sources_only() {
        let config = test_config();
        let src = "fn f() { let t = Instant::now(); }";
        assert!(analyze_source("crates/core/src/report.rs", src, &config).is_empty());
        assert_eq!(analyze_source("crates/core/src/fpras.rs", src, &config).len(), 1);
    }
}
