//! The trace-flow lint: observability must stay observational.
//!
//! The `qarith-trace` crate records per-stage wall-clock durations from
//! inside bit-pinned code. That is safe exactly as long as the data
//! flows one way: pinned code may *write* spans into a `StageSink`, but
//! must never *read* timing back out of the tracer — a measurement that
//! branches on its own latency is nondeterministic in precisely the way
//! the bit-pinning contract forbids, while compiling, sampling, and
//! caching identically whether or not anyone is watching.
//!
//! The write half is policed by the existing `nondet-source` lint
//! (every `Instant::now` at an instrumentation site carries a reviewed
//! pragma saying where the value flows). This pass is the read half:
//! inside a bit-pinned file that is not `clock_allowed`, any *method
//! call* whose name appears in the configured `[trace] read_back` list
//! (`latency_stats`, `stage_nanos`, `quantile`, `slow_queries`, …) is
//! a **`trace-flow`** finding.
//!
//! Lexical, like every pass here: the lint matches method names, not
//! types, so an unrelated method that happens to share a configured
//! name needs a pragma — acceptable, because the read-back surface is
//! small and deliberately distinctive. Free functions are not matched
//! (only `.name(…)` receiver calls); the trace getters are all
//! methods, and this keeps locally-defined helpers out of scope.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{Tok, Token};
use crate::scan::is_call;

/// Runs the trace-flow lint over one bit-pinned (non-`clock_allowed`)
/// file.
pub fn check(file: &str, tokens: &[Token], config: &Config, out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(word) = &t.tok else { continue };
        if config.trace_read_back.iter().any(|m| m == word)
            && is_call(tokens, i)
            && i > 0
            && tokens[i - 1].tok == Tok::Punct('.')
        {
            out.push(Finding {
                lint: "trace-flow",
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "`.{word}(…)` reads timing back out of the tracer inside a bit-pinned \
                     module; trace data is observational and must never flow into \
                     measurement inputs (pragma only with a reviewed reason why this \
                     read-back cannot reach pinned state)"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;
    use crate::lexer::lex;
    use crate::scan::strip_tests;

    fn run(src: &str) -> Vec<Finding> {
        let cfg = config::parse(
            "[trace]\nread_back = [\"latency_stats\", \"quantile\", \"stage_nanos\"]\n\
             [[lock.class]]\nname = \"A\"\nacquire = [\"a.lock\"]\n",
        )
        .unwrap();
        let mut out = Vec::new();
        check("f.rs", &strip_tests(&lex(src).tokens), &cfg, &mut out);
        out
    }

    #[test]
    fn read_back_method_calls_are_flagged() {
        let src = "fn f(&self) { let s = self.tracer.latency_stats(); \
                   let q = snap.quantile(0.95); }";
        let found = run(src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|f| f.lint == "trace-flow"), "{found:?}");
    }

    #[test]
    fn writes_and_free_functions_are_not_flagged() {
        // The write half (record_stage) and a free function that
        // happens to share a configured name are both out of scope.
        let src = "fn f(sink: &mut dyn StageSink) { \
                   sink.record_stage(Stage::Measure, observed_nanos(b)); \
                   let n = stage_nanos(begun); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn unconfigured_methods_pass() {
        assert!(run("fn f() { x.snapshot(); y.summaries(); }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { tracer.latency_stats(); }\n}";
        assert!(run(src).is_empty());
    }
}
