//! The lint passes.
//!
//! Four families, one per headline guarantee of the workspace:
//!
//! * [`determinism`] — bit-pinned modules must not iterate hash
//!   collections into output or keys, and must not read ambient
//!   nondeterminism (clocks, environment, entropy);
//! * [`locks`] — guard acquisitions must respect the declared
//!   hierarchy in `analyze.toml`, never hold a foreign guard across a
//!   condvar wait, and never re-enter the service under a lock;
//! * [`panics`] — the serve request path must not contain panicking
//!   constructs without a reviewed pragma;
//! * [`trace`] — bit-pinned modules may write spans into the tracer
//!   but must never read timing back out of it, so observability stays
//!   observational.
//!
//! Every pass is *lexical*: it scans the token stream with receiver
//! chains and balanced delimiters, not a typed AST. The approximations
//! are documented per pass; the escape hatch for a justified false
//! positive is always the same `// analyze: allow(<lint>, reason =
//! "...")` pragma, whose reason is reviewed like code.

pub mod determinism;
pub mod locks;
pub mod panics;
pub mod trace;
