//! Lock-discipline lints against the declared hierarchy.
//!
//! `analyze.toml` declares the workspace's lock classes in outermost-
//! first order (`AdmissionGate → PlanCache → ShardedNuCache shard →
//! NuCache map`). Within one function body, this pass tracks which
//! guards are held and flags:
//!
//! * **`lock-order`** — acquiring a guard whose class rank is ≤ the
//!   rank of any guard already held (equal rank included: two guards
//!   of one class have no defined order, which is the classic
//!   symmetric-deadlock shape);
//! * **`lock-wait`** — a condvar `wait` while holding any guard other
//!   than the one the condvar releases (the foreign guard stays locked
//!   for the whole sleep: a deadlock if the waker needs it);
//! * **`lock-reentry`** — calling a declared service entry point
//!   (`no_reentry` in the config) while holding any guard.
//!
//! **Lexical guard-lifetime model.** A guard bound by `let` lives to
//! the end of its enclosing block, or to an explicit `drop(name)`. A
//! guard acquired in an `if`/`while`/`match` head lives through the
//! attached block (matching Rust's temporary-scope extension for
//! scrutinees in edition 2021). An unbound guard (a statement-level
//! temporary) lives to the end of its statement. This over-approximates
//! plain-`if` condition temporaries — the conservative direction: it
//! can only flag an order that *looks* violating, never miss one the
//! model sees, and a justified false positive carries a pragma.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{Tok, Token};
use crate::scan::{functions, is_call, receiver_chain};

/// Guard-acquiring method names.
const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Condvar wait method names.
const WAIT_METHODS: [&str; 3] = ["wait", "wait_timeout", "wait_while"];

/// One tracked guard.
struct Held {
    rank: usize,
    class: String,
    binding: Option<String>,
    /// Brace depth (relative to the function body) the guard's scope
    /// belongs to; the guard dies when the scan leaves that depth.
    depth: i64,
    /// Statement-level temporary: dies at the next top-level `;`.
    temp: bool,
    line: u32,
}

/// Runs the lock lints over one file (any file — lock discipline is
/// not scoped to a module list; the patterns in the config decide what
/// counts as a guard).
pub fn check(file: &str, tokens: &[Token], config: &Config, out: &mut Vec<Finding>) {
    for body in functions(tokens) {
        check_body(file, &tokens[body.start..body.end], config, out);
    }
}

fn check_body(file: &str, tokens: &[Token], config: &Config, out: &mut Vec<Finding>) {
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i64;
    let mut paren = 0i64;
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                held.retain(|g| g.depth <= depth);
            }
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct(';') if paren == 0 => held.retain(|g| !g.temp),
            Tok::Ident(word) => {
                if word == "drop" && is_call(tokens, i) {
                    if let Some(Tok::Ident(arg)) = tokens.get(i + 2).map(|t| &t.tok) {
                        if matches!(tokens.get(i + 3).map(|t| &t.tok), Some(Tok::Punct(')'))) {
                            held.retain(|g| g.binding.as_deref() != Some(arg.as_str()));
                        }
                    }
                } else if ACQUIRE_METHODS.contains(&word.as_str())
                    && is_call(tokens, i)
                    && i > 0
                    && tokens[i - 1].tok == Tok::Punct('.')
                {
                    let chain = receiver_chain(tokens, i);
                    if let Some((rank, class)) = config.class_of_chain(&chain) {
                        for g in &held {
                            if g.rank >= rank {
                                out.push(Finding {
                                    lint: "lock-order",
                                    file: file.to_string(),
                                    line: tokens[i].line,
                                    message: format!(
                                        "acquiring `{}` (rank {rank}) while holding `{}` \
                                         (rank {}, acquired line {}) violates the declared \
                                         hierarchy",
                                        class.name, g.class, g.rank, g.line
                                    ),
                                });
                            }
                        }
                        let scope = statement_scope(tokens, i, depth);
                        held.push(Held {
                            rank,
                            class: class.name.clone(),
                            binding: scope.binding,
                            depth: scope.depth,
                            temp: scope.temp,
                            line: tokens[i].line,
                        });
                    }
                } else if WAIT_METHODS.contains(&word.as_str())
                    && is_call(tokens, i)
                    && i > 0
                    && tokens[i - 1].tok == Tok::Punct('.')
                {
                    let chain = receiver_chain(tokens, i);
                    match config.condvar_of_chain(&chain) {
                        Some(rule) => {
                            for g in held.iter().filter(|g| g.class != rule.class) {
                                out.push(Finding {
                                    lint: "lock-wait",
                                    file: file.to_string(),
                                    line: tokens[i].line,
                                    message: format!(
                                        "waiting on condvar of `{}` while holding foreign \
                                         guard `{}` (acquired line {}); the guard stays \
                                         locked for the whole sleep",
                                        rule.class, g.class, g.line
                                    ),
                                });
                            }
                        }
                        None if !held.is_empty() => {
                            let g = &held[0];
                            out.push(Finding {
                                lint: "lock-wait",
                                file: file.to_string(),
                                line: tokens[i].line,
                                message: format!(
                                    "`.{word}()` on an undeclared condvar while holding \
                                     `{}` (acquired line {}); declare the condvar in \
                                     analyze.toml or release the guard first",
                                    g.class, g.line
                                ),
                            });
                        }
                        None => {}
                    }
                } else if config.no_reentry.iter().any(|n| n == word)
                    && is_call(tokens, i)
                    && !held.is_empty()
                {
                    let g = &held[0];
                    out.push(Finding {
                        lint: "lock-reentry",
                        file: file.to_string(),
                        line: tokens[i].line,
                        message: format!(
                            "calling service entry point `{word}` while holding `{}` \
                             (acquired line {}); entry points may block on the full \
                             hierarchy",
                            g.class, g.line
                        ),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// How long the guard acquired inside the statement containing token
/// `at` lives, per the lexical model in the module docs.
struct Scope {
    binding: Option<String>,
    depth: i64,
    temp: bool,
}

fn statement_scope(tokens: &[Token], at: usize, depth: i64) -> Scope {
    // Walk back to the start of the statement: just past the previous
    // `;`, `{`, or `}` at any level (good enough — expressions rarely
    // embed those outside blocks).
    let mut start = 0usize;
    for j in (0..at).rev() {
        if matches!(tokens[j].tok, Tok::Punct(';' | '{' | '}')) {
            start = j + 1;
            break;
        }
    }
    let word_at = |k: usize| match tokens.get(k).map(|t| &t.tok) {
        Some(Tok::Ident(w)) => Some(w.as_str()),
        _ => None,
    };
    let mut k = start;
    // `if let` / `while let` / `match` heads: the guard lives through
    // the attached block.
    if matches!(word_at(k), Some("if" | "while" | "match")) {
        return Scope { binding: None, depth: depth + 1, temp: false };
    }
    if word_at(k) == Some("let") {
        k += 1;
        if word_at(k) == Some("mut") {
            k += 1;
        }
        let binding = word_at(k).map(ToString::to_string);
        return Scope { binding, depth, temp: false };
    }
    Scope { binding: None, depth, temp: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;
    use crate::lexer::lex;

    fn test_config() -> Config {
        config::parse(
            r#"
[lock]
no_reentry = ["query", "execute_plan"]

[[lock.class]]
name = "Gate"
acquire = ["in_flight.lock"]

[[lock.class]]
name = "Plans"
acquire = ["plans.read", "plans.write"]

[[lock.class]]
name = "Shard"
acquire = ["shard.lock", "shard_of.lock"]

[[lock.condvar]]
wait = ["released.wait"]
class = "Gate"
"#,
        )
        .expect("test config parses")
    }

    fn run(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check("f.rs", &lex(src).tokens, &test_config(), &mut out);
        out
    }

    #[test]
    fn flags_out_of_order_acquisition() {
        let src = "fn f(&self) { let s = self.shard_of(k).lock(); \
                   let p = self.plans.write(); }";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, "lock-order");
        assert!(out[0].message.contains("Plans") && out[0].message.contains("Shard"));
    }

    #[test]
    fn in_order_acquisition_is_clean() {
        let src = "fn f(&self) { let p = self.plans.read(); \
                   let s = self.shard_of(k).lock(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn equal_rank_double_acquire_is_flagged() {
        let src = "fn f(&self) { let a = left.shard.lock(); let b = right.shard.lock(); }";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "lock-order");
    }

    #[test]
    fn drop_releases_a_binding() {
        let src = "fn f(&self) { let s = self.shard_of(k).lock(); drop(s); \
                   let p = self.plans.write(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn block_scope_releases_guards() {
        let src = "fn f(&self) { for shard in &self.shards { let g = shard.lock(); use_it(&g); } \
                   let p = self.plans.write(); }";
        assert!(run(src).is_empty(), "per-iteration guards die at the block close");
    }

    #[test]
    fn statement_temporaries_die_at_semicolon() {
        let src = "fn f(&self) { *shard.lock() = Default::default(); \
                   let p = self.plans.write(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn if_let_guard_lives_through_the_block_only() {
        let src = "fn f(&self) { if let Some(e) = self.plans.read().get(k) { return e; } \
                   let w = self.plans.write(); }";
        assert!(run(src).is_empty(), "read guard dies with the if-let block");
    }

    #[test]
    fn waiting_with_own_class_is_fine_foreign_is_not() {
        let own = "fn f(&self) { let mut g = self.in_flight.lock(); \
                   while full { g = self.released.wait(g); } }";
        assert!(run(own).is_empty());
        let foreign = "fn f(&self) { let p = self.plans.read(); \
                       let g = self.in_flight.lock(); self.released.wait(g); }";
        let out = run(foreign);
        assert!(out.iter().any(|f| f.lint == "lock-wait"), "{out:?}");
    }

    #[test]
    fn undeclared_wait_while_holding_is_flagged() {
        let src = "fn f(&self) { let p = self.plans.read(); other.cv.wait(p); }";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "lock-wait");
    }

    #[test]
    fn reentry_under_any_guard_is_flagged() {
        let src = "fn f(&self) { let s = self.shard_of(k).lock(); self.query(sql); }";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "lock-reentry");
        let clean =
            "fn f(&self) { let plan = self.plan_for(sql); let s = self.shard_of(k).lock(); }";
        assert!(run(clean).is_empty());
    }

    #[test]
    fn unrelated_locks_are_ignored() {
        let src = "fn f(&self) { let g = self.other_mutex.lock(); let h = file.lock(); }";
        assert!(run(src).is_empty(), "only configured classes are tracked");
    }
}
