//! Determinism lints for bit-pinned modules.
//!
//! The FPRAS/AFPRAS reproduction is only checkable because every
//! sampling route is a deterministic function of (formula, options,
//! seed): the batch engine asserts bit-identity against the sequential
//! route, the perf baselines pin certainty digests, and the serve
//! tests race clients against a reference. Two code patterns silently
//! break that contract:
//!
//! * **`hash-iteration`** — iterating a `HashMap`/`HashSet` yields
//!   platform- and run-dependent order (`RandomState` is seeded per
//!   process). If the order feeds output, keys, or accumulation whose
//!   result is order-sensitive, bits drift. The fix is a `BTreeMap`,
//!   an explicit sort, or — for provably order-insensitive uses like a
//!   commutative sum — a pragma saying why.
//! * **`nondet-source`** — wall clocks (`Instant::now`, `SystemTime`),
//!   `available_parallelism`, environment reads, and entropy-seeded
//!   RNG constructors (`thread_rng`, `from_entropy`) inject ambient
//!   state. Timing belongs in the bench harness (`clock_allowed`
//!   paths); everything else must come in through options or seeds.
//!
//! **Lexical approximation.** A name counts as hash-typed when the
//! file declares it with a type mentioning `HashMap`/`HashSet`
//! (binding, field, or parameter annotation) or initializes it from
//! `HashMap::…`/`HashSet::…`. Iteration is a call to an iteration
//! method whose receiver chain contains such a name, or a `for` loop
//! directly over one. Cross-file type information does not exist here
//! — a hash map smuggled through an alias or a helper return type is
//! not caught, which is why the bit-identity tests stay in CI.

use std::collections::BTreeSet;

use crate::findings::Finding;
use crate::lexer::{Tok, Token};
use crate::scan::{is_call, receiver_chain};

/// Hash-collection type names whose iteration order is seeded.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Methods that observe collection order.
const ITER_METHODS: [&str; 8] =
    ["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "retain"];

/// Runs both determinism lints over one bit-pinned file.
pub fn check(file: &str, tokens: &[Token], clock_allowed: bool, out: &mut Vec<Finding>) {
    let hash_names = hash_typed_names(tokens);
    check_iteration(file, tokens, &hash_names, out);
    if !clock_allowed {
        check_sources(file, tokens, out);
    }
}

/// Names declared in this file with a hash-collection type.
fn hash_typed_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        // `name: <type containing HashMap/HashSet>` — a binding, field,
        // or parameter annotation. A `::` path separator is two `:`
        // tokens; require exactly one.
        if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
            && !matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
            && !matches!(
                i.checked_sub(1).and_then(|j| tokens.get(j)).map(|t| &t.tok),
                Some(Tok::Punct(':'))
            )
            && type_region_mentions_hash(tokens, i + 2)
        {
            names.insert(name.clone());
        }
        // `let [mut] name = HashMap::…` — inferred-type binding.
        if name == "let" {
            let mut j = i + 1;
            if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(w)) if w == "mut") {
                j += 1;
            }
            if let (Some(Tok::Ident(bound)), Some(Tok::Punct('=')), Some(Tok::Ident(ty))) = (
                tokens.get(j).map(|t| &t.tok),
                tokens.get(j + 1).map(|t| &t.tok),
                tokens.get(j + 2).map(|t| &t.tok),
            ) {
                if HASH_TYPES.contains(&ty.as_str()) {
                    names.insert(bound.clone());
                }
            }
        }
    }
    names
}

/// Scans the type region starting at `from` (just past `name:`) up to
/// a top-level `,`, `;`, `)`, `{`, `}`, or `=`, looking for a hash
/// type name. Angle brackets nest (`Mutex<HashMap<…>>`).
fn type_region_mentions_hash(tokens: &[Token], from: usize) -> bool {
    let mut angle = 0i64;
    let mut paren = 0i64;
    for t in tokens.iter().skip(from) {
        match &t.tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => {
                if angle == 0 {
                    return false;
                }
                angle -= 1;
            }
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') if paren > 0 => paren -= 1,
            Tok::Punct(',' | ';' | ')' | '{' | '}' | '=') if angle == 0 && paren == 0 => {
                return false;
            }
            Tok::Ident(w) if HASH_TYPES.contains(&w.as_str()) => return true,
            _ => {}
        }
    }
    false
}

fn check_iteration(
    file: &str,
    tokens: &[Token],
    hash_names: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(word) = &t.tok else { continue };
        // `<chain>.iter()` and friends, where the chain touches a
        // hash-typed name.
        if ITER_METHODS.contains(&word.as_str())
            && is_call(tokens, i)
            && i > 0
            && tokens[i - 1].tok == Tok::Punct('.')
        {
            let chain = receiver_chain(tokens, i);
            if let Some(hash) = chain[..chain.len().saturating_sub(1)]
                .iter()
                .find(|part| hash_names.contains(*part))
            {
                out.push(Finding {
                    lint: "hash-iteration",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "iterating `{hash}` (declared with a hash-collection type) via \
                         `.{word}()` observes seeded hash order in a bit-pinned module; \
                         use a BTreeMap/BTreeSet, sort explicitly, or pragma an \
                         order-insensitive use"
                    ),
                });
            }
        }
        // `for pat in [&][mut] name { … }` directly over a hash name.
        if word == "for" {
            if let Some((name, line)) = for_loop_over(tokens, i, hash_names) {
                out.push(Finding {
                    lint: "hash-iteration",
                    file: file.to_string(),
                    line,
                    message: format!(
                        "`for` loop directly over hash collection `{name}` observes seeded \
                         hash order in a bit-pinned module; use a BTreeMap/BTreeSet, sort \
                         explicitly, or pragma an order-insensitive use"
                    ),
                });
            }
        }
    }
}

/// If `tokens[at]` begins a `for pat in <collection> {` loop whose
/// collection expression is `[&][mut] name` for a hash-typed name,
/// returns the name and line.
fn for_loop_over(
    tokens: &[Token],
    at: usize,
    hash_names: &BTreeSet<String>,
) -> Option<(String, u32)> {
    // Find the `in` at nesting depth 0 relative to the pattern.
    let mut depth = 0i64;
    let mut i = at + 1;
    let inner = loop {
        match tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Punct('(' | '[')) => depth += 1,
            Some(Tok::Punct(')' | ']')) => depth -= 1,
            Some(Tok::Ident(w)) if w == "in" && depth == 0 => break i,
            Some(Tok::Punct('{')) | None => return None,
            _ => {}
        }
        i += 1;
    };
    let mut j = inner + 1;
    while matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('&')))
        || matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(w)) if w == "mut")
    {
        j += 1;
    }
    let Some(Tok::Ident(name)) = tokens.get(j).map(|t| &t.tok) else { return None };
    // Only the bare-name form: `name.keys()` etc. is the method rule's
    // job, and `name[i]` or longer expressions are not hash iteration.
    if matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('{')))
        && hash_names.contains(name)
    {
        return Some((name.clone(), tokens[j].line));
    }
    None
}

/// Ambient-nondeterminism sources: `(pattern tokens, diagnostic)`.
const SOURCES: [(&[&str], &str); 7] = [
    (&["Instant", "now"], "`Instant::now` reads the monotonic clock"),
    (&["SystemTime"], "`SystemTime` reads the wall clock"),
    (&["available_parallelism"], "`available_parallelism` depends on the host CPU count"),
    (&["env", "var"], "`env::var` reads the process environment"),
    (&["env", "vars"], "`env::vars` reads the process environment"),
    (&["thread_rng"], "`thread_rng` is entropy-seeded"),
    (&["from_entropy"], "`from_entropy` seeds from OS entropy"),
];

fn check_sources(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(word) = &t.tok else { continue };
        for (pattern, what) in SOURCES {
            let (head, tail) = (pattern[0], pattern.get(1));
            if word != head {
                continue;
            }
            // Two-segment patterns must be joined by `::`.
            let matched = match tail {
                None => true,
                Some(&method) => {
                    matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                        && matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                        && matches!(tokens.get(i + 3).map(|t| &t.tok),
                                    Some(Tok::Ident(m)) if m == method)
                }
            };
            if matched {
                out.push(Finding {
                    lint: "nondet-source",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "{what}; bit-pinned modules must take such inputs through options \
                         or seeds (or move the site to a `clock_allowed` path)"
                    ),
                });
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check("f.rs", &lex(src).tokens, false, &mut out);
        out
    }

    #[test]
    fn flags_method_iteration_over_declared_maps() {
        let src = "struct S { map: Mutex<HashMap<String, u32>> }\n\
                   fn f(s: &S) { for v in s.map.lock().unwrap().values() { emit(v); } }";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "hash-iteration");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn flags_for_loops_and_let_inferred_bindings() {
        let src = "fn f() { let mut seen = HashSet::new(); for x in &seen { use_it(x); } }";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("seen"));
    }

    #[test]
    fn vec_iteration_is_fine() {
        let src = "fn f(xs: &Vec<u32>, m: &HashMap<u32, u32>) {\n\
                   for x in xs { m.get(x); }\n xs.iter().map(|x| m[x]).sum::<u32>() }";
        assert!(run(src).is_empty(), "lookups and Vec iteration are deterministic");
    }

    #[test]
    fn btree_collections_are_fine() {
        let src = "fn f(m: &BTreeMap<String, u32>) { for (k, v) in m { emit(k, v); } \
                   m.values().sum::<u32>(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn flags_clock_env_and_entropy() {
        let src = "fn f() { let t = Instant::now(); let p = std::thread::available_parallelism(); \
                   let h = std::env::var(\"HOME\"); let r = rand::thread_rng(); }";
        let out = run(src);
        let lints: Vec<&str> = out.iter().map(|f| f.lint).collect();
        assert_eq!(out.len(), 4, "{out:?}");
        assert!(lints.iter().all(|&l| l == "nondet-source"));
    }

    #[test]
    fn clock_allowed_files_skip_the_source_lint_only() {
        let src = "fn f(m: HashMap<u8, u8>) { let t = Instant::now(); for x in &m { go(x); } }";
        let mut out = Vec::new();
        check("f.rs", &lex(src).tokens, true, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "hash-iteration");
    }

    #[test]
    fn instant_elapsed_alone_is_not_flagged() {
        // Only the ambient *sources* are flagged, not arithmetic on
        // values that already exist.
        assert!(run("fn f(t: Duration) { t.as_secs(); }").is_empty());
    }
}
