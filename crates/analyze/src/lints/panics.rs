//! Panic-safety lints for the serve request path.
//!
//! A panic in a request thread unwinds through the service: the
//! admission permit releases (by design), but any poisoned lock then
//! degrades *every* subsequent request — and under `panic = "abort"` a
//! single bad request kills the whole server. The request-path files
//! declared in `analyze.toml` therefore must not contain panicking
//! constructs:
//!
//! * **`panic-unwrap` / `panic-expect`** — `.unwrap()` / `.expect(…)`
//!   on `Option`/`Result` (lexically: any such method call; the lint
//!   cannot see types, and other `unwrap`-named methods do not exist
//!   in this workspace);
//! * **`panic-macro`** — `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`;
//! * **`panic-index`** — `expr[…]` indexing, which panics out of
//!   bounds (slices) or on a missing key (maps).
//!
//! The escape hatch is the usual pragma with a *reviewed* reason —
//! e.g. an index that is in-bounds by construction. Test code is
//! exempt (stripped before scanning).

use crate::findings::Finding;
use crate::lexer::{Tok, Token};
use crate::scan::{is_call, is_keyword};

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Runs the panic-safety lints over one request-path file.
pub fn check(file: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Ident(word)
                if (word == "unwrap" || word == "expect")
                    && is_call(tokens, i)
                    && i > 0
                    && tokens[i - 1].tok == Tok::Punct('.') =>
            {
                let lint = if word == "unwrap" { "panic-unwrap" } else { "panic-expect" };
                out.push(Finding {
                    lint,
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "`.{word}(…)` can panic in the serve request path; return an error \
                         (`ServeError`), recover explicitly, or pragma with the policy that \
                         makes this safe"
                    ),
                });
            }
            Tok::Ident(word)
                if PANIC_MACROS.contains(&word.as_str())
                    && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!'))) =>
            {
                out.push(Finding {
                    lint: "panic-macro",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "`{word}!` panics in the serve request path; return an error instead"
                    ),
                });
            }
            Tok::Punct('[') if i > 0 => {
                let indexes = match &tokens[i - 1].tok {
                    Tok::Ident(prev) => !is_keyword(prev),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
                if indexes {
                    out.push(Finding {
                        lint: "panic-index",
                        file: file.to_string(),
                        line: t.line,
                        message: "indexing (`expr[…]`) panics when out of bounds in the serve \
                                  request path; use `.get(…)` or pragma an index that is \
                                  in-bounds by construction"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan::strip_tests;

    fn run(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        check("f.rs", &strip_tests(&lex(src).tokens), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_macros_and_indexing() {
        let src = "fn f(&self) { let a = x.unwrap(); let b = y.expect(\"poisoned\"); \
                   if bad { panic!(\"no\"); } let c = &self.shards[i]; }";
        let lints: Vec<&str> = run(src).iter().map(|f| f.lint).collect();
        assert_eq!(lints, ["panic-unwrap", "panic-expect", "panic-macro", "panic-index"]);
    }

    #[test]
    fn non_panicking_lookalikes_are_fine() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); \
                   m.get(k); let t: [u8; 4] = [0; 4]; let v = vec![1, 2]; \
                   #[derive(Debug)] struct S; let s: &[u8] = &buf; }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "fn keep() {}\n#[cfg(test)]\nmod tests {\n#[test]\nfn t() { x.unwrap(); a[0]; }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn chained_call_result_indexing_is_flagged() {
        assert_eq!(run("fn f() { stats.as_pairs()[0]; }").len(), 1);
    }
}
