//! Findings: the analyzer's output, human- and machine-readable.

use qarith_bench::json::Json;

/// One finding: a lint, a location, and a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable lint id (`"hash-iteration"`, `"lock-order"`, …). Part of
    /// the JSON schema and the pragma grammar: renaming one breaks
    /// both checked-in pragmas and any tooling over the CI artifact.
    pub lint: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human diagnostic.
    pub message: String,
}

impl Finding {
    /// The `file:line: [lint] message` form printed to stderr.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// Stable sort order for reports: by file, then line, then lint. The
/// analyzer's own output must be deterministic — it is scanned by the
/// very CI gate it implements.
pub fn sort(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
}

/// Schema version of the findings document.
pub const SCHEMA_VERSION: u64 = 1;

/// Serializes findings into the machine-readable document CI uploads
/// as an artifact (reusing the JSON kernel from `qarith_bench::json`).
pub fn to_json(findings: &[Finding]) -> Json {
    Json::obj([
        ("schema", Json::str("qarith-analyze-findings")),
        ("version", Json::num_u64(SCHEMA_VERSION)),
        ("count", Json::num_u64(findings.len() as u64)),
        (
            "findings",
            Json::Arr(
                findings
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("lint", Json::str(f.lint)),
                            ("file", Json::str(&f.file)),
                            ("line", Json::num_u64(u64::from(f.line))),
                            ("message", Json::str(&f.message)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_bench::json;

    fn f(lint: &'static str, file: &str, line: u32) -> Finding {
        Finding { lint, file: file.into(), line, message: "m".into() }
    }

    #[test]
    fn sort_is_total_and_stable_across_fields() {
        let mut findings =
            vec![f("b", "z.rs", 1), f("a", "a.rs", 9), f("b", "a.rs", 9), f("a", "a.rs", 2)];
        sort(&mut findings);
        let order: Vec<(String, u32, &str)> =
            findings.iter().map(|x| (x.file.clone(), x.line, x.lint)).collect();
        assert_eq!(
            order,
            [
                ("a.rs".into(), 2, "a"),
                ("a.rs".into(), 9, "a"),
                ("a.rs".into(), 9, "b"),
                ("z.rs".into(), 1, "b")
            ]
        );
    }

    #[test]
    fn json_round_trips_through_the_bench_parser() {
        let findings = vec![f("hash-iteration", "crates/x/src/lib.rs", 12)];
        let doc = to_json(&findings);
        let back = json::parse(&doc.pretty()).expect("own output parses");
        assert_eq!(back.get("count").and_then(Json::as_u64), Some(1));
        let arr = back.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].get("lint").and_then(Json::as_str), Some("hash-iteration"));
        assert_eq!(arr[0].get("line").and_then(Json::as_u64), Some(12));
    }
}
