//! `qarith-analyze` — the CLI over the static invariant checker.
//!
//! ```text
//! qarith-analyze [--root DIR] [--config FILE] [--json FILE] [--deny-all] [FILE...]
//! ```
//!
//! With no positional files, walks every `crates/*/src` and `src/`
//! file under the workspace root. Findings print as `file:line:
//! [lint] message` diagnostics; `--json` additionally writes the
//! machine-readable document CI uploads as an artifact. `--deny-all`
//! (the CI mode) exits non-zero when any finding remains after pragma
//! suppression.

use std::path::PathBuf;
use std::process::ExitCode;

use qarith_analyze::{analyze_files, config, findings, workspace_files};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    deny_all: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { root: default_root(), config: None, json: None, deny_all: false, files: Vec::new() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = take(&mut it, "--root")?.into(),
            "--config" => args.config = Some(take(&mut it, "--config")?.into()),
            "--json" => args.json = Some(take(&mut it, "--json")?.into()),
            "--deny-all" => args.deny_all = true,
            "--help" | "-h" => {
                println!(
                    "usage: qarith-analyze [--root DIR] [--config FILE] [--json FILE] \
                     [--deny-all] [FILE...]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => args.files.push(file.into()),
        }
    }
    Ok(args)
}

fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// The workspace root: the manifest dir's grandparent (this crate
/// lives at `crates/analyze`), overridable with `--root` for corpus
/// runs.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(std::path::Path::parent).map_or(manifest.clone(), PathBuf::from)
}

fn run() -> Result<usize, String> {
    let args = parse_args()?;
    let config_path = args.config.clone().unwrap_or_else(|| args.root.join("analyze.toml"));
    let config_text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
    let config = config::parse(&config_text).map_err(|e| e.to_string())?;

    let files = if args.files.is_empty() {
        workspace_files(&args.root).map_err(|e| format!("walking {}: {e}", args.root.display()))?
    } else {
        args.files.clone()
    };
    let found =
        analyze_files(&args.root, &files, &config).map_err(|e| format!("analyzing: {e}"))?;

    for finding in &found {
        println!("{}", finding.render());
    }
    println!(
        "qarith-analyze: {} file(s), {} finding(s){}",
        files.len(),
        found.len(),
        if args.deny_all { " [deny-all]" } else { "" }
    );

    if let Some(json_path) = &args.json {
        let doc = findings::to_json(&found);
        std::fs::write(json_path, doc.pretty())
            .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    }

    Ok(if args.deny_all { found.len() } else { 0 })
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("qarith-analyze: error: {message}");
            ExitCode::from(2)
        }
    }
}
