//! Corpus tests: every lint has a seeded-bad fixture that must produce
//! *exactly* its expected finding, and a clean fixture that must
//! produce none. The fixtures live under `tests/corpus/` (a
//! subdirectory, so cargo never compiles them as tests) and are
//! analyzed with the corpus-local `analyze.toml`, whose scoping mirrors
//! the real policy: `pinned/` is bit-pinned, `request/` is the request
//! path, and the lock hierarchy has the workspace's four classes.
//!
//! The CLI is exercised too: `--deny-all` must exit non-zero on every
//! seeded-bad fixture and zero on the clean ones — the exact contract
//! the CI gate relies on.

use std::path::{Path, PathBuf};
use std::process::Command;

use qarith_analyze::{analyze_files, config, Config};

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_config() -> Config {
    let text = std::fs::read_to_string(corpus_root().join("analyze.toml"))
        .expect("corpus analyze.toml exists");
    config::parse(&text).expect("corpus analyze.toml parses")
}

/// Every seeded-bad fixture with the single lint it must trigger.
const SEEDED_BAD: [(&str, &str); 9] = [
    ("pinned/hash_iteration.rs", "hash-iteration"),
    ("pinned/nondet_source.rs", "nondet-source"),
    ("pinned/trace_flow.rs", "trace-flow"),
    ("request/panic_unwrap.rs", "panic-unwrap"),
    ("request/panic_expect.rs", "panic-expect"),
    ("request/panic_macro.rs", "panic-macro"),
    ("request/panic_index.rs", "panic-index"),
    ("locks/lock_order.rs", "lock-order"),
    ("locks/lock_wait.rs", "lock-wait"),
];

const CLEAN: [&str; 3] = ["pinned/clean.rs", "request/clean.rs", "locks/clean.rs"];

#[test]
fn each_seeded_fixture_produces_exactly_its_finding() {
    let root = corpus_root();
    let cfg = corpus_config();
    for (fixture, lint) in SEEDED_BAD {
        let found = analyze_files(&root, &[root.join(fixture)], &cfg).expect("fixture readable");
        assert_eq!(found.len(), 1, "{fixture}: expected exactly one finding, got {found:?}");
        assert_eq!(found[0].lint, lint, "{fixture}: {found:?}");
        assert_eq!(found[0].file, fixture, "findings report corpus-relative paths");
        assert!(found[0].line > 0);
    }
}

#[test]
fn reentry_and_pragma_fixtures() {
    // Separate from the table only because their lints live outside the
    // (fixture ↔ lint) pattern above: lock-reentry needs `drop` in the
    // same body, and the pragma fixture is scope-independent.
    let root = corpus_root();
    let cfg = corpus_config();
    for (fixture, lint) in
        [("locks/lock_reentry.rs", "lock-reentry"), ("pragma/malformed.rs", "pragma")]
    {
        let found = analyze_files(&root, &[root.join(fixture)], &cfg).expect("fixture readable");
        assert_eq!(found.len(), 1, "{fixture}: {found:?}");
        assert_eq!(found[0].lint, lint, "{fixture}: {found:?}");
    }
}

#[test]
fn clean_fixtures_produce_no_findings() {
    let root = corpus_root();
    let cfg = corpus_config();
    for fixture in CLEAN {
        let found = analyze_files(&root, &[root.join(fixture)], &cfg).expect("fixture readable");
        assert!(found.is_empty(), "{fixture}: {found:?}");
    }
}

fn run_cli(files: &[&str], deny_all: bool) -> std::process::Output {
    let root = corpus_root();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qarith-analyze"));
    cmd.arg("--root").arg(&root);
    cmd.arg("--config").arg(root.join("analyze.toml"));
    if deny_all {
        cmd.arg("--deny-all");
    }
    for f in files {
        cmd.arg(root.join(f));
    }
    cmd.output().expect("qarith-analyze runs")
}

#[test]
fn deny_all_exits_nonzero_on_every_seeded_fixture() {
    for (fixture, lint) in SEEDED_BAD {
        let out = run_cli(&[fixture], true);
        assert_eq!(out.status.code(), Some(1), "{fixture}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(&format!("[{lint}]")), "{fixture}: {stdout}");
    }
}

#[test]
fn deny_all_exits_zero_on_clean_fixtures() {
    let out = run_cli(&CLEAN, true);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn without_deny_all_findings_report_but_exit_zero() {
    let out = run_cli(&["request/panic_unwrap.rs"], false);
    assert_eq!(out.status.code(), Some(0), "report-only mode never gates: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("[panic-unwrap]"));
}

#[test]
fn json_export_lists_every_finding() {
    let root = corpus_root();
    let json_path = root.join("../corpus_findings.json");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_qarith-analyze"));
    cmd.arg("--root").arg(&root);
    cmd.arg("--config").arg(root.join("analyze.toml"));
    cmd.arg("--json").arg(&json_path);
    for (fixture, _) in SEEDED_BAD {
        cmd.arg(root.join(fixture));
    }
    let out = cmd.output().expect("qarith-analyze runs");
    assert!(out.status.success(), "{out:?}");
    let doc = std::fs::read_to_string(&json_path).expect("JSON written");
    std::fs::remove_file(&json_path).ok();
    assert!(doc.contains("\"schema\": \"qarith-analyze-findings\""), "{doc}");
    for (_, lint) in SEEDED_BAD {
        assert!(doc.contains(&format!("\"{lint}\"")), "missing {lint} in {doc}");
    }
}
