//! The self-run gate, as a plain test: the analyzer over the real
//! workspace with the real checked-in policy must report zero findings.
//! This is the same run CI's `analyze` job performs with `--deny-all`;
//! having it in `cargo test` means a violation fails tier-1 locally
//! before CI ever sees it.

use std::path::Path;

use qarith_analyze::{analyze_files, config, workspace_files};

#[test]
fn workspace_is_clean_under_the_checked_in_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("analyze.toml")).expect("checked-in analyze.toml");
    let cfg = config::parse(&text).expect("checked-in analyze.toml parses");
    let files = workspace_files(&root).expect("workspace walk");
    assert!(files.len() > 50, "walk found {} files — scope regressed?", files.len());
    let found = analyze_files(&root, &files, &cfg).expect("workspace readable");
    assert!(
        found.is_empty(),
        "the workspace must stay clean under analyze.toml; fix the code or add a reviewed \
         pragma:\n{}",
        found.iter().map(qarith_analyze::Finding::render).collect::<Vec<_>>().join("\n")
    );
}
