//! Seeded-bad fixture: reading a clock in a bit-pinned module.
//! Expected: exactly one `nondet-source` finding.

pub fn stamp(out: &mut Vec<std::time::Instant>) {
    out.push(Instant::now());
}
