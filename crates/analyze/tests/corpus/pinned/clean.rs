//! Clean fixture for the determinism lints. Everything here is a
//! near-miss the analyzer must NOT flag: ordered iteration, hash-map
//! membership without iteration, a pragma'd commutative fold, and
//! hash iteration confined to test code.

use std::collections::{BTreeMap, HashMap};

pub fn ordered(groups: &BTreeMap<String, u64>, out: &mut Vec<String>) {
    for (key, value) in groups {
        out.push(format!("{key}={value}"));
    }
}

pub fn membership(index: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    index.get(&key).copied()
}

pub fn total(index: &HashMap<u64, u64>) -> u64 {
    // analyze: allow(hash-iteration, reason = "commutative sum; the total is order-insensitive")
    index.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_iterate_freely() {
        let index: HashMap<u64, u64> = HashMap::new();
        for (k, v) in index.iter() {
            assert!(*k > 0 && *v > 0);
        }
    }
}
