//! Seeded-bad fixture: iterating a hash collection in a bit-pinned
//! module. Expected: exactly one `hash-iteration` finding (the loop).

use std::collections::HashMap;

pub fn emit_all(groups: &HashMap<String, u64>, out: &mut Vec<String>) {
    for (key, value) in groups.iter() {
        out.push(format!("{key}={value}"));
    }
}
