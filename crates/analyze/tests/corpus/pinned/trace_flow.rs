// Seeded-bad fixture: a bit-pinned module reading timing back out of
// the tracer. Writing spans is fine; branching on the observed latency
// (here: sizing a batch from a quantile) lets wall-clock time leak into
// measurement inputs, which breaks the bit-pinning contract.

fn batch_size(&self) -> usize {
    let snap = self.tracer.latency_stats();
    if snap.stage(Stage::Measure).count() > 0 {
        return self.base;
    }
    self.base * 2
}
