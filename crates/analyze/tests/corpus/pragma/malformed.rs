//! Seeded-bad fixture: a pragma with an empty reason can never
//! suppress anything and is itself reported.
//! Expected: exactly one `pragma` finding.

pub fn silent(x: Option<u64>) -> Option<u64> {
    // analyze: allow(hash-iteration, reason = "")
    x
}
