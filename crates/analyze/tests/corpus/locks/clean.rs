//! Clean fixture for the lock lints: acquisitions the analyzer must
//! accept — hierarchy order, explicit release before going back up,
//! block-scoped per-iteration guards, and the gate waiting on its own
//! condvar.

impl Service {
    pub fn in_order(&self) -> usize {
        let gate = self.in_flight.lock().unwrap();
        let plans = self.plans.read().unwrap();
        let shard = self.shard.lock().unwrap();
        *gate + plans.len() + shard.len()
    }

    pub fn release_then_climb(&self) {
        let shard = self.shard.lock().unwrap();
        shard.prune();
        drop(shard);
        let _plans = self.plans.write().unwrap();
    }

    pub fn per_iteration(&self) -> usize {
        let mut total = 0;
        for shard in &self.shards {
            let inner = shard.lock().unwrap();
            total += inner.len();
        }
        let plans = self.plans.read().unwrap();
        total + plans.len()
    }

    pub fn own_condvar(&self) {
        let mut gate = self.in_flight.lock().unwrap();
        while *gate >= self.max_in_flight {
            gate = self.released.wait(gate).unwrap();
        }
    }
}
