//! Seeded-bad fixture: re-entering a service entry point while holding
//! a hierarchy guard (the entry point may block on the full hierarchy).
//! Expected: exactly one `lock-reentry` finding.

impl Service {
    pub fn nested(&self, sql: &str) {
        let shard = self.shard.lock().unwrap();
        self.query(sql);
        drop(shard);
    }
}
