//! Seeded-bad fixture: acquiring up the hierarchy. A shard guard
//! (rank 2) is held when the plan cache (rank 1) is acquired.
//! Expected: exactly one `lock-order` finding.

impl Service {
    pub fn backwards(&self) -> usize {
        let shard = self.shard.lock().unwrap();
        let plans = self.plans.read().unwrap();
        shard.len() + plans.len()
    }
}
