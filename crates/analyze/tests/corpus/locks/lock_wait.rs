//! Seeded-bad fixture: sleeping on the admission condvar while a
//! foreign (shard) guard stays locked for the whole wait.
//! Expected: exactly one `lock-wait` finding.

impl Service {
    pub fn sleepy(&self, gate: std::sync::MutexGuard<'_, usize>) {
        let shard = self.shard.lock().unwrap();
        let _gate = self.released.wait(gate).unwrap();
        drop(shard);
    }
}
