//! Clean fixture for the panic lints: the request-path idioms the
//! analyzer must accept — error returns, explicit recovery, non-
//! panicking lookalikes, pragma'd constructs, and test-only panics.

pub fn error_return(x: Option<u64>) -> Result<u64, String> {
    x.ok_or_else(|| "missing".to_string())
}

pub fn recovery(x: Option<u64>) -> u64 {
    x.unwrap_or_default()
}

pub fn checked(shards: &[u64], i: usize) -> Option<u64> {
    shards.get(i).copied()
}

pub fn in_bounds(shards: &[u64], h: u64) -> u64 {
    // analyze: allow(panic-index, reason = "h % len is in-bounds by construction")
    shards[(h % shards.len() as u64) as usize]
}

pub fn reviewed(x: Option<u64>) -> u64 {
    x.unwrap() // analyze: allow(panic-unwrap, reason = "caller checked is_some above")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_panic_freely() {
        assert_eq!(recovery(None), 0);
        let v: Vec<u64> = vec![1];
        assert_eq!(v[0], checked(&v, 0).unwrap());
    }
}
