//! Seeded-bad fixture: slice indexing in the request path.
//! Expected: exactly one `panic-index` finding.

pub fn pick(shards: &[u64], i: usize) -> u64 {
    shards[i]
}
