//! Seeded-bad fixture: a panicking macro in the request path.
//! Expected: exactly one `panic-macro` finding.

pub fn dispatch(kind: u8) -> u64 {
    match kind {
        0 => 1,
        _ => unreachable!("kinds are validated at parse time"),
    }
}
