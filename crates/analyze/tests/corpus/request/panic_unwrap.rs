//! Seeded-bad fixture: `.unwrap()` in the request path.
//! Expected: exactly one `panic-unwrap` finding.

pub fn first(answers: Option<u64>) -> u64 {
    answers.unwrap()
}
