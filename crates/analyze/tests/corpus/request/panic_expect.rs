//! Seeded-bad fixture: `.expect(…)` in the request path.
//! Expected: exactly one `panic-expect` finding.

pub fn guard(cache: &std::sync::Mutex<u64>) -> u64 {
    *cache.lock().expect("cache poisoned")
}
