//! FNV-1a, the workspace's one content-digest primitive.
//!
//! Three subsystems need a small, dependency-free, host-independent
//! 64-bit digest: the datagen database digest (pinning generated data
//! across runs and threads), the serving ν-cache's shard placement,
//! and the serving bench's certainty digest. They must all use *the
//! same* function from one place — a constant tweaked in a private
//! copy would silently diverge the others.

/// Streaming 64-bit FNV-1a.
///
/// ```
/// use qarith_numeric::Fnv1a64;
/// let mut h = Fnv1a64::new();
/// h.update(b"hello");
/// assert_eq!(h.finish(), Fnv1a64::digest(b"hello"));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a64 {
    state: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64::new()
    }
}

impl Fnv1a64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    /// A digest at the standard offset basis.
    pub fn new() -> Fnv1a64 {
        Fnv1a64 { state: Fnv1a64::OFFSET }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Fnv1a64::PRIME);
        }
    }

    /// The current digest value (the state; FNV has no finalizer).
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// One-shot digest of a byte string.
    pub fn digest(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a64::new();
        h.update(bytes);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference values of the standard 64-bit FNV-1a parameters.
        assert_eq!(Fnv1a64::digest(b""), 0xcbf29ce484222325);
        assert_eq!(Fnv1a64::digest(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(Fnv1a64::digest(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), Fnv1a64::digest(b"foobar"));
    }
}
