use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::error::NumericError;
use crate::gcd::gcd_i128;

/// An exact rational number backed by `i128`.
///
/// Invariants (maintained by every constructor and operation):
///
/// * the denominator is strictly positive;
/// * numerator and denominator are coprime;
/// * zero is represented as `0/1`;
/// * neither component is ever `i128::MIN` (so negation and `abs` are total).
///
/// Arithmetic reduces by gcd *before* multiplying (the classic
/// Henrici/Knuth cross-reduction), which keeps intermediate values small and
/// makes overflow rare for database-scale coefficients. All operations have
/// `checked_*` forms returning [`NumericError::Overflow`] on failure; the
/// `std::ops` operator impls panic on overflow and are intended for tests,
/// examples, and code paths that have already bounded their inputs.
///
/// ```
/// use qarith_numeric::Rational;
///
/// let a = Rational::new(7, 10); // 0.7
/// let b = Rational::new(10, 1);
/// assert_eq!((a * b).to_string(), "7");
/// assert_eq!(Rational::parse_decimal("0.70").unwrap(), a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// Zero (`0/1`).
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One (`1/1`).
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num/den`, normalizing sign and reducing by gcd.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or either argument is `i128::MIN`. Use
    /// [`Rational::checked_new`] for a fallible constructor.
    pub fn new(num: i128, den: i128) -> Rational {
        Rational::checked_new(num, den).expect("invalid rational")
    }

    /// Fallible constructor: returns an error for a zero denominator and
    /// rejects `i128::MIN` components (not representable after negation).
    pub fn checked_new(num: i128, den: i128) -> Result<Rational, NumericError> {
        if den == 0 {
            return Err(NumericError::DivisionByZero);
        }
        if num == i128::MIN || den == i128::MIN {
            return Err(NumericError::Overflow { op: "new" });
        }
        if num == 0 {
            return Ok(Rational::ZERO);
        }
        let g = gcd_i128(num, den);
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Ok(Rational { num, den })
    }

    /// Creates a rational from an integer.
    pub fn from_int(n: i64) -> Rational {
        Rational { num: n as i128, den: 1 }
    }

    /// The numerator (sign-carrying, coprime with the denominator).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always strictly positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// `true` iff the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Sign as `-1`, `0`, or `1`.
    pub fn signum(&self) -> i32 {
        match self.num.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational { num: self.num.abs(), den: self.den }
    }

    /// Checked addition.
    pub fn checked_add(&self, rhs: &Rational) -> Result<Rational, NumericError> {
        // a/b + c/d = (a*(d/g) + c*(b/g)) / (b/g * d), g = gcd(b, d).
        let g = gcd_i128(self.den, rhs.den);
        let db = self.den / g;
        let dd = rhs.den / g;
        let lhs = self.num.checked_mul(dd).ok_or(NumericError::Overflow { op: "add" })?;
        let rhs_t = rhs.num.checked_mul(db).ok_or(NumericError::Overflow { op: "add" })?;
        let num = lhs.checked_add(rhs_t).ok_or(NumericError::Overflow { op: "add" })?;
        let den = db.checked_mul(rhs.den).ok_or(NumericError::Overflow { op: "add" })?;
        Rational::checked_new(num, den)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, rhs: &Rational) -> Result<Rational, NumericError> {
        self.checked_add(&rhs.checked_neg()?)
    }

    /// Checked negation (total for valid rationals, fallible only for
    /// defensive symmetry).
    pub fn checked_neg(&self) -> Result<Rational, NumericError> {
        Ok(Rational { num: -self.num, den: self.den })
    }

    /// Checked multiplication with cross-reduction.
    pub fn checked_mul(&self, rhs: &Rational) -> Result<Rational, NumericError> {
        // Reduce across: (a/b)*(c/d) with g1 = gcd(a,d), g2 = gcd(c,b).
        let g1 = gcd_i128(self.num, rhs.den);
        let g2 = gcd_i128(rhs.num, self.den);
        let (a, d) = if g1 == 0 { (self.num, rhs.den) } else { (self.num / g1, rhs.den / g1) };
        let (c, b) = if g2 == 0 { (rhs.num, self.den) } else { (rhs.num / g2, self.den / g2) };
        let num = a.checked_mul(c).ok_or(NumericError::Overflow { op: "mul" })?;
        let den = b.checked_mul(d).ok_or(NumericError::Overflow { op: "mul" })?;
        Rational::checked_new(num, den)
    }

    /// Checked division.
    pub fn checked_div(&self, rhs: &Rational) -> Result<Rational, NumericError> {
        if rhs.is_zero() {
            return Err(NumericError::DivisionByZero);
        }
        self.checked_mul(&Rational { num: rhs.den, den: rhs.num }.normalized())
    }

    /// Checked exponentiation by a small non-negative integer.
    pub fn checked_pow(&self, mut exp: u32) -> Result<Rational, NumericError> {
        let mut base = *self;
        let mut acc = Rational::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.checked_mul(&base)?;
            }
            exp >>= 1;
            if exp > 0 {
                base = base.checked_mul(&base)?;
            }
        }
        Ok(acc)
    }

    /// Reciprocal (`1/self`).
    pub fn checked_recip(&self) -> Result<Rational, NumericError> {
        Rational::ONE.checked_div(self)
    }

    /// Converts to `f64` (rounding). Exact for database-scale values.
    pub fn to_f64(&self) -> f64 {
        // Splitting avoids precision loss when both components are large
        // but their ratio is moderate.
        if self.num.abs() < (1i128 << 52) && self.den < (1i128 << 52) {
            self.num as f64 / self.den as f64
        } else {
            let q = self.num / self.den;
            let r = self.num % self.den;
            q as f64 + (r as f64 / self.den as f64)
        }
    }

    /// Parses an optionally-signed decimal literal (`"42"`, `"-0.75"`,
    /// `".5"`, `"10."`) into an exact rational.
    ///
    /// Scientific notation is accepted with a small integer exponent
    /// (`"1.5e3"`, `"2E-2"`). This covers SQL numeric literals.
    pub fn parse_decimal(input: &str) -> Result<Rational, NumericError> {
        let err = |reason: &'static str| NumericError::Parse { input: input.to_string(), reason };
        let s = input.trim();
        if s.is_empty() {
            return Err(err("empty input"));
        }
        let (sign, s) = match s.as_bytes()[0] {
            b'+' => (1i128, &s[1..]),
            b'-' => (-1i128, &s[1..]),
            _ => (1i128, s),
        };
        if s.is_empty() {
            return Err(err("sign without digits"));
        }
        // Split off exponent.
        let (mantissa, exp) = match s.find(['e', 'E']) {
            Some(pos) => {
                let exp_str = &s[pos + 1..];
                let exp: i32 = exp_str.parse().map_err(|_| err("malformed exponent"))?;
                if exp.abs() > 30 {
                    return Err(err("exponent out of supported range"));
                }
                (&s[..pos], exp)
            }
            None => (s, 0),
        };
        let mut int_part: i128 = 0;
        let mut frac_digits: u32 = 0;
        let mut seen_point = false;
        let mut seen_digit = false;
        for b in mantissa.bytes() {
            match b {
                b'0'..=b'9' => {
                    seen_digit = true;
                    int_part = int_part
                        .checked_mul(10)
                        .and_then(|v| v.checked_add((b - b'0') as i128))
                        .ok_or(NumericError::Overflow { op: "parse" })?;
                    if seen_point {
                        frac_digits += 1;
                    }
                }
                b'.' if !seen_point => seen_point = true,
                b'.' => return Err(err("multiple decimal points")),
                b'_' => {} // digit grouping, as in Rust literals
                _ => return Err(err("unexpected character")),
            }
        }
        if !seen_digit {
            return Err(err("no digits"));
        }
        let mut num = sign * int_part;
        let mut den: i128 = 1;
        for _ in 0..frac_digits {
            den = den.checked_mul(10).ok_or(NumericError::Overflow { op: "parse" })?;
        }
        // Apply the exponent.
        if exp >= 0 {
            for _ in 0..exp {
                num = num.checked_mul(10).ok_or(NumericError::Overflow { op: "parse" })?;
            }
        } else {
            for _ in 0..(-exp) {
                den = den.checked_mul(10).ok_or(NumericError::Overflow { op: "parse" })?;
            }
        }
        Rational::checked_new(num, den)
    }

    /// Round toward negative infinity to an integer.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 || self.num % self.den == 0 {
            self.num / self.den
        } else {
            self.num / self.den - 1
        }
    }

    /// Re-normalizes a possibly sign-denormal raw value (internal).
    fn normalized(self) -> Rational {
        if self.den < 0 {
            Rational { num: -self.num, den: -self.den }
        } else {
            self
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i64)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b vs c/d via a*d vs c*b, with a widening fallback
        // through f64 only when i128 would overflow (not reachable for
        // reduced database-scale values, but kept total for safety).
        match (self.num.checked_mul(other.den), other.num.checked_mul(self.den)) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self.to_f64().partial_cmp(&other.to_f64()).expect("rational to_f64 is never NaN"),
        }
    }
}

macro_rules! panicking_binop {
    ($trait:ident, $method:ident, $checked:ident, $opname:literal) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(&rhs).unwrap_or_else(|e| panic!("rational {} failed: {e}", $opname))
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                self.$checked(rhs).unwrap_or_else(|e| panic!("rational {} failed: {e}", $opname))
            }
        }
    };
}

panicking_binop!(Add, add, checked_add, "addition");
panicking_binop!(Sub, sub, checked_sub, "subtraction");
panicking_binop!(Mul, mul, checked_mul, "multiplication");
panicking_binop!(Div, div, checked_div, "division");

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// `Debug` delegates to `Display`: rationals appear inside large polynomial
/// debug dumps where `Rational { num: 7, den: 10 }` would be unreadable.
impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert_eq!(Rational::new(0, 7).denom(), 1);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert_eq!(Rational::checked_new(1, 0), Err(NumericError::DivisionByZero));
    }

    #[test]
    fn arithmetic_basics() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(half * third, Rational::new(1, 6));
        assert_eq!(half / third, Rational::new(3, 2));
        assert_eq!(-half, Rational::new(-1, 2));
    }

    #[test]
    fn pow_and_recip() {
        let x = Rational::new(2, 3);
        assert_eq!(x.checked_pow(0).unwrap(), Rational::ONE);
        assert_eq!(x.checked_pow(3).unwrap(), Rational::new(8, 27));
        assert_eq!(x.checked_recip().unwrap(), Rational::new(3, 2));
        assert!(Rational::ZERO.checked_recip().is_err());
    }

    #[test]
    fn ordering_is_total_and_correct() {
        let vals = [
            Rational::new(-3, 2),
            Rational::new(-1, 1),
            Rational::ZERO,
            Rational::new(1, 3),
            Rational::new(1, 2),
            Rational::new(2, 3),
            Rational::ONE,
            Rational::new(7, 2),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
        assert_eq!(Rational::new(2, 4).cmp(&Rational::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rational::new(7, 10).to_string(), "7/10");
        assert_eq!(Rational::new(-7, 10).to_string(), "-7/10");
        assert_eq!(Rational::from_int(42).to_string(), "42");
        assert_eq!(format!("{:?}", Rational::new(7, 10)), "7/10");
    }

    #[test]
    fn parse_decimal_cases() {
        assert_eq!(Rational::parse_decimal("42").unwrap(), Rational::from_int(42));
        assert_eq!(Rational::parse_decimal("-42").unwrap(), Rational::from_int(-42));
        assert_eq!(Rational::parse_decimal("0.7").unwrap(), Rational::new(7, 10));
        assert_eq!(Rational::parse_decimal("0.70").unwrap(), Rational::new(7, 10));
        assert_eq!(Rational::parse_decimal(".5").unwrap(), Rational::new(1, 2));
        assert_eq!(Rational::parse_decimal("10.").unwrap(), Rational::from_int(10));
        assert_eq!(Rational::parse_decimal("+3.25").unwrap(), Rational::new(13, 4));
        assert_eq!(Rational::parse_decimal("1.5e3").unwrap(), Rational::from_int(1500));
        assert_eq!(Rational::parse_decimal("2E-2").unwrap(), Rational::new(1, 50));
        assert_eq!(Rational::parse_decimal("1_000").unwrap(), Rational::from_int(1000));
        assert_eq!(Rational::parse_decimal(" 0.5 ").unwrap(), Rational::new(1, 2));
    }

    #[test]
    fn parse_decimal_rejects_garbage() {
        for bad in ["", "-", ".", "1.2.3", "abc", "1e", "--1", "1e99"] {
            assert!(Rational::parse_decimal(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(Rational::new(1, 2).to_f64(), 0.5);
        assert_eq!(Rational::new(-7, 10).to_f64(), -0.7);
        let big = Rational::new(i128::MAX / 2, i128::MAX / 3);
        assert!((big.to_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn floor_behaviour() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::from_int(4).floor(), 4);
        assert_eq!(Rational::from_int(-4).floor(), -4);
        assert_eq!(Rational::ZERO.floor(), 0);
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let huge = Rational::new(i128::MAX, 1);
        assert!(matches!(huge.checked_add(&Rational::ONE), Err(NumericError::Overflow { .. })));
        assert!(matches!(huge.checked_mul(&huge), Err(NumericError::Overflow { .. })));
    }

    #[test]
    fn cross_reduction_avoids_spurious_overflow() {
        // (MAX/3) * (3/MAX) = 1 must succeed despite huge components.
        let a = Rational::new(i128::MAX / 3 * 3, 3);
        let b = Rational::new(3, i128::MAX / 3 * 3);
        assert_eq!(a.checked_mul(&b).unwrap(), Rational::ONE);
    }
}
