use crate::error::NumericError;

/// `n!` as an `i128`.
///
/// Exact up to `n = 33` (`34!` overflows `i128`). The exact order-measure
/// evaluator enumerates permutations, so callers never get near the bound,
/// but the error is reported rather than wrapped regardless.
pub fn factorial(n: u64) -> Result<i128, NumericError> {
    let mut acc: i128 = 1;
    for k in 2..=n {
        acc = acc
            .checked_mul(k as i128)
            .ok_or(NumericError::CombinatorialOverflow { what: "factorial", n })?;
    }
    Ok(acc)
}

/// Binomial coefficient `C(n, k)` as an `i128`, using the multiplicative
/// formula with interleaved division (always exact).
pub fn binomial(n: u64, k: u64) -> Result<i128, NumericError> {
    if k > n {
        return Ok(0);
    }
    let k = k.min(n - k);
    let mut acc: i128 = 1;
    for i in 0..k {
        acc = acc
            .checked_mul((n - i) as i128)
            .ok_or(NumericError::CombinatorialOverflow { what: "binomial", n })?;
        acc /= (i + 1) as i128;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_small_values() {
        assert_eq!(factorial(0).unwrap(), 1);
        assert_eq!(factorial(1).unwrap(), 1);
        assert_eq!(factorial(5).unwrap(), 120);
        assert_eq!(factorial(10).unwrap(), 3_628_800);
        assert_eq!(factorial(33).unwrap(), 8683317618811886495518194401280000000);
    }

    #[test]
    fn factorial_overflow() {
        assert!(factorial(34).is_err());
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(0, 0).unwrap(), 1);
        assert_eq!(binomial(5, 0).unwrap(), 1);
        assert_eq!(binomial(5, 5).unwrap(), 1);
        assert_eq!(binomial(5, 2).unwrap(), 10);
        assert_eq!(binomial(10, 5).unwrap(), 252);
        assert_eq!(binomial(3, 7).unwrap(), 0);
    }

    #[test]
    fn pascal_identity() {
        for n in 1..20u64 {
            for k in 1..n {
                assert_eq!(
                    binomial(n, k).unwrap(),
                    binomial(n - 1, k - 1).unwrap() + binomial(n - 1, k).unwrap()
                );
            }
        }
    }

    #[test]
    fn binomials_sum_to_power_of_two() {
        for n in 0..15u64 {
            let total: i128 = (0..=n).map(|k| binomial(n, k).unwrap()).sum();
            assert_eq!(total, 1i128 << n);
        }
    }
}
