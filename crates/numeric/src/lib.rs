//! Exact numeric substrate for the qarith workspace.
//!
//! The measure-of-certainty machinery of Console, Hofer and Libkin
//! (PODS 2020) manipulates polynomial constraints whose coefficients come
//! from database values such as `0.7` or `10`. Performing the symbolic part
//! of the pipeline (grounding, homogenization, leading-coefficient analysis)
//! in floating point would silently misclassify degenerate constraints, so
//! every symbolic coefficient in this workspace is an exact rational.
//!
//! This crate provides:
//!
//! * [`Rational`] — an exact `i128`-backed rational number with
//!   overflow-*checked* arithmetic (plus panicking operator impls for
//!   ergonomic use in tests and examples);
//! * decimal/integer parsing ([`Rational::parse_decimal`]) matching SQL
//!   numeric literals;
//! * small combinatorial helpers ([`factorial`], [`binomial`]) used by the
//!   exact order-measure evaluator, where cell probabilities are
//!   `1 / (2^n * j! * (n-j)!)`;
//! * [`NumericError`] — the shared error type.
//!
//! The crate is deliberately dependency-free: it is the bottom of the
//! workspace dependency graph (see DESIGN.md "Crate layering" — every
//! other `qarith-*` crate sits above it). Paper touchpoints: the
//! rational constants of §3's data model and the exact cell
//! probabilities of the §8 order-measure evaluator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combinatorics;
mod error;
mod fnv;
mod gcd;
mod rational;

pub use combinatorics::{binomial, factorial};
pub use error::NumericError;
pub use fnv::Fnv1a64;
pub use gcd::{gcd_i128, lcm_i128};
pub use rational::Rational;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, NumericError>;
