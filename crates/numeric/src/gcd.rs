/// Greatest common divisor of two `i128`s, always non-negative.
///
/// `gcd_i128(0, 0) == 0` by convention. Uses the binary GCD algorithm, which
/// avoids `i128` division in the hot loop; rationals reduce on every
/// operation, so this is one of the hottest scalar kernels in the workspace.
///
/// # Panics
///
/// Panics if either argument is `i128::MIN` (whose absolute value is not
/// representable). Rationals never store `i128::MIN` for this reason.
pub fn gcd_i128(a: i128, b: i128) -> i128 {
    assert!(a != i128::MIN && b != i128::MIN, "gcd of i128::MIN is not representable");
    let (mut a, mut b) = (a.abs(), b.abs());
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Least common multiple of two `i128`s, always non-negative.
///
/// Returns `None` on overflow. `lcm_i128(0, x) == Some(0)`.
pub fn lcm_i128(a: i128, b: i128) -> Option<i128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd_i128(a, b);
    (a / g).checked_mul(b).map(i128::abs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd_i128(12, 18), 6);
        assert_eq!(gcd_i128(18, 12), 6);
        assert_eq!(gcd_i128(-12, 18), 6);
        assert_eq!(gcd_i128(12, -18), 6);
        assert_eq!(gcd_i128(-12, -18), 6);
        assert_eq!(gcd_i128(7, 13), 1);
    }

    #[test]
    fn gcd_zero_conventions() {
        assert_eq!(gcd_i128(0, 0), 0);
        assert_eq!(gcd_i128(0, 5), 5);
        assert_eq!(gcd_i128(5, 0), 5);
        assert_eq!(gcd_i128(0, -5), 5);
    }

    #[test]
    fn gcd_large_values() {
        let a = i128::MAX;
        assert_eq!(gcd_i128(a, a), a);
        assert_eq!(gcd_i128(a, 1), 1);
        // 2^126 and 2^100 share 2^100.
        assert_eq!(gcd_i128(1 << 126, 1 << 100), 1 << 100);
    }

    #[test]
    #[should_panic(expected = "i128::MIN")]
    fn gcd_min_panics() {
        gcd_i128(i128::MIN, 2);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm_i128(4, 6), Some(12));
        assert_eq!(lcm_i128(-4, 6), Some(12));
        assert_eq!(lcm_i128(0, 6), Some(0));
        assert_eq!(lcm_i128(7, 13), Some(91));
    }

    #[test]
    fn lcm_overflow_returns_none() {
        assert_eq!(lcm_i128(i128::MAX, i128::MAX - 1), None);
    }

    #[test]
    fn gcd_divides_both_and_is_maximal() {
        // Deterministic pseudo-random pairs (no external RNG dependency here).
        let mut x: i128 = 0x1234_5678_9abc_def0;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 32) % 1_000_000
        };
        for _ in 0..200 {
            let a = next();
            let b = next();
            let g = gcd_i128(a, b);
            if a != 0 || b != 0 {
                assert_eq!(a % g, 0);
                assert_eq!(b % g, 0);
                // Maximality: (a/g) and (b/g) are coprime.
                assert_eq!(gcd_i128(a / g, b / g), 1);
            }
        }
    }
}
