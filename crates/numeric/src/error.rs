use std::fmt;

/// Errors produced by exact numeric computations.
///
/// The `i128`-backed [`Rational`](crate::Rational) type reports overflow
/// instead of silently wrapping; parsers report malformed literals. Callers
/// higher up the stack (constraint algebra, grounding) propagate these
/// verbatim, so the variants carry enough context to be actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumericError {
    /// An arithmetic operation exceeded the range of `i128` even after
    /// gcd reduction.
    Overflow {
        /// The operation that overflowed, e.g. `"mul"`.
        op: &'static str,
    },
    /// Division by zero (or construction of a rational with denominator 0).
    DivisionByZero,
    /// A numeric literal could not be parsed.
    Parse {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A combinatorial quantity (factorial/binomial) exceeded `i128`.
    CombinatorialOverflow {
        /// The function that overflowed, e.g. `"factorial"`.
        what: &'static str,
        /// The argument that was too large.
        n: u64,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::Overflow { op } => {
                write!(f, "exact rational arithmetic overflowed i128 during `{op}`")
            }
            NumericError::DivisionByZero => write!(f, "division by zero"),
            NumericError::Parse { input, reason } => {
                write!(f, "cannot parse {input:?} as a number: {reason}")
            }
            NumericError::CombinatorialOverflow { what, n } => {
                write!(f, "{what}({n}) exceeds i128")
            }
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NumericError::Overflow { op: "mul" };
        assert!(e.to_string().contains("mul"));
        let e =
            NumericError::Parse { input: "1.2.3".to_string(), reason: "multiple decimal points" };
        assert!(e.to_string().contains("1.2.3"));
        assert!(e.to_string().contains("multiple decimal points"));
        let e = NumericError::CombinatorialOverflow { what: "factorial", n: 40 };
        assert!(e.to_string().contains("factorial(40)"));
    }
}
