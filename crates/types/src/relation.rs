use std::collections::HashSet;
use std::fmt;

use crate::error::TypeError;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A typed relation instance: a schema plus a set of tuples.
///
/// Tuples are kept in insertion order (deterministic evaluation and
/// benchmarks) with a hash set alongside for set semantics — the model of
/// §2 interprets relations as finite *sets*.
#[derive(Clone)]
pub struct Relation {
    schema: RelationSchema,
    tuples: Vec<Tuple>,
    seen: HashSet<Tuple>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: RelationSchema) -> Relation {
        Relation { schema, tuples: Vec::new(), seen: HashSet::new() }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Type-checks and inserts a tuple. Duplicates are silently ignored
    /// (set semantics). Returns whether the tuple was new.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool, TypeError> {
        self.check(&tuple)?;
        if self.seen.contains(&tuple) {
            return Ok(false);
        }
        self.seen.insert(tuple.clone());
        self.tuples.push(tuple);
        Ok(true)
    }

    /// Inserts from a vector of values.
    pub fn insert_values(&mut self, values: Vec<Value>) -> Result<bool, TypeError> {
        self.insert(Tuple::new(values))
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.seen.contains(tuple)
    }

    /// Removes a tuple, preserving the relative insertion order of the
    /// survivors (digests hash tuples in stored order, so removal must
    /// not shuffle). Returns whether the tuple was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        if !self.seen.remove(tuple) {
            return false;
        }
        self.tuples.retain(|t| t != tuple);
        true
    }

    /// Type-checks a tuple against the schema without storing it (the
    /// write path validates replacements before mutating).
    pub fn check_tuple(&self, tuple: &Tuple) -> Result<(), TypeError> {
        self.check(tuple)
    }

    fn check(&self, tuple: &Tuple) -> Result<(), TypeError> {
        if tuple.arity() != self.schema.arity() {
            return Err(TypeError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, v) in tuple.values().iter().enumerate() {
            let expected = self.schema.sort_of(i);
            if v.sort() != expected {
                return Err(TypeError::SortMismatch {
                    relation: self.schema.name().to_string(),
                    column: i,
                    expected,
                    actual: v.sort(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} tuples]", self.schema.name(), self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{NumNullId, Value};

    fn r_schema() -> RelationSchema {
        RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap()
    }

    #[test]
    fn insertion_and_set_semantics() {
        let mut r = Relation::empty(r_schema());
        assert!(r.insert_values(vec![Value::int(1), Value::num(2)]).unwrap());
        assert!(!r.insert_values(vec![Value::int(1), Value::num(2)]).unwrap());
        assert!(r.insert_values(vec![Value::int(1), Value::num(3)]).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::new(vec![Value::int(1), Value::num(2)])));
    }

    #[test]
    fn nulls_allowed_in_matching_sort() {
        let mut r = Relation::empty(r_schema());
        assert!(r.insert_values(vec![Value::int(1), Value::NumNull(NumNullId(0))]).unwrap());
    }

    #[test]
    fn arity_checked() {
        let mut r = Relation::empty(r_schema());
        let e = r.insert_values(vec![Value::int(1)]);
        assert!(matches!(e, Err(TypeError::ArityMismatch { .. })));
    }

    #[test]
    fn sorts_checked() {
        let mut r = Relation::empty(r_schema());
        let e = r.insert_values(vec![Value::num(1), Value::num(2)]);
        assert!(matches!(e, Err(TypeError::SortMismatch { column: 0, .. })));
        let e = r.insert_values(vec![Value::int(1), Value::int(2)]);
        assert!(matches!(e, Err(TypeError::SortMismatch { column: 1, .. })));
    }
}
