use std::collections::{BTreeMap, HashSet};
use std::fmt;

use qarith_numeric::Rational;

use crate::tuple::Tuple;
use crate::value::{BaseNullId, BaseValue, NumNullId, Value};

/// A (possibly partial) interpretation of nulls: the pair
/// `v = (v_base, v_num)` of §4.
///
/// `v_base` sends base nulls to base constants; `v_num` sends numerical
/// nulls to rationals (the engine's finite stand-ins for reals — every
/// formula the pipeline manipulates has rational coefficients, so rational
/// witnesses suffice for all evaluation and testing purposes).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    base: BTreeMap<BaseNullId, BaseValue>,
    num: BTreeMap<NumNullId, Rational>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Valuation {
        Valuation::default()
    }

    /// Maps a base null to a constant (builder style).
    pub fn with_base(mut self, id: BaseNullId, v: impl Into<BaseValue>) -> Valuation {
        self.base.insert(id, v.into());
        self
    }

    /// Maps a numerical null to a rational (builder style).
    pub fn with_num(mut self, id: NumNullId, v: impl Into<Rational>) -> Valuation {
        self.num.insert(id, v.into());
        self
    }

    /// Sets a base-null image.
    pub fn set_base(&mut self, id: BaseNullId, v: impl Into<BaseValue>) {
        self.base.insert(id, v.into());
    }

    /// Sets a numerical-null image.
    pub fn set_num(&mut self, id: NumNullId, v: impl Into<Rational>) {
        self.num.insert(id, v.into());
    }

    /// Image of a base null, if mapped.
    pub fn base(&self, id: BaseNullId) -> Option<&BaseValue> {
        self.base.get(&id)
    }

    /// Image of a numerical null, if mapped.
    pub fn num(&self, id: NumNullId) -> Option<Rational> {
        self.num.get(&id).copied()
    }

    /// The base-null assignments.
    pub fn base_assignments(&self) -> impl Iterator<Item = (BaseNullId, &BaseValue)> {
        self.base.iter().map(|(&id, v)| (id, v))
    }

    /// The numerical-null assignments.
    pub fn num_assignments(&self) -> impl Iterator<Item = (NumNullId, Rational)> + '_ {
        self.num.iter().map(|(&id, &v)| (id, v))
    }

    /// Applies the valuation to a single value; unmapped nulls pass
    /// through unchanged (partial application).
    pub fn apply_value(&self, v: &Value) -> Value {
        match v {
            Value::BaseNull(id) => match self.base.get(id) {
                Some(c) => Value::Base(c.clone()),
                None => v.clone(),
            },
            Value::NumNull(id) => match self.num.get(id) {
                Some(&r) => Value::Num(r),
                None => v.clone(),
            },
            other => other.clone(),
        }
    }

    /// Applies the valuation to a tuple (the `v(a̅)` of §4: constants are
    /// left intact, nulls are replaced where mapped).
    pub fn apply_tuple(&self, t: &Tuple) -> Tuple {
        t.map(|v| self.apply_value(v))
    }

    /// `true` iff `v_base` is injective and its range avoids
    /// `forbidden` — the *bijective valuation* condition of
    /// Proposition 5.2 (with `forbidden = C_base(D)`).
    pub fn is_bijective_base(&self, forbidden: &HashSet<BaseValue>) -> bool {
        let mut seen = HashSet::with_capacity(self.base.len());
        for v in self.base.values() {
            if forbidden.contains(v) || !seen.insert(v.clone()) {
                return false;
            }
        }
        true
    }
}

impl fmt::Debug for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (id, v) in &self.base {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{id}↦{v}")?;
            first = false;
        }
        for (id, v) in &self.num {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{id}↦{v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_application() {
        let v = Valuation::new()
            .with_base(BaseNullId(0), "x")
            .with_num(NumNullId(1), Rational::new(1, 2));
        assert_eq!(v.apply_value(&Value::BaseNull(BaseNullId(0))), Value::str("x"));
        // Unmapped nulls pass through.
        assert_eq!(v.apply_value(&Value::BaseNull(BaseNullId(9))), Value::BaseNull(BaseNullId(9)));
        assert_eq!(v.apply_value(&Value::NumNull(NumNullId(1))), Value::Num(Rational::new(1, 2)));
        // Constants untouched.
        assert_eq!(v.apply_value(&Value::int(5)), Value::int(5));
    }

    #[test]
    fn tuple_application() {
        let v = Valuation::new().with_num(NumNullId(0), 3);
        let t = Tuple::new(vec![Value::int(1), Value::NumNull(NumNullId(0))]);
        assert_eq!(v.apply_tuple(&t), Tuple::new(vec![Value::int(1), Value::num(3)]));
    }

    #[test]
    fn bijectivity_check() {
        let forbidden: HashSet<BaseValue> = [BaseValue::str("taken")].into_iter().collect();
        let good = Valuation::new().with_base(BaseNullId(0), "f0").with_base(BaseNullId(1), "f1");
        assert!(good.is_bijective_base(&forbidden));
        let collides =
            Valuation::new().with_base(BaseNullId(0), "f0").with_base(BaseNullId(1), "f0");
        assert!(!collides.is_bijective_base(&forbidden));
        let hits_constant = Valuation::new().with_base(BaseNullId(0), "taken");
        assert!(!hits_constant.is_bijective_base(&forbidden));
    }

    #[test]
    fn debug_format() {
        let v = Valuation::new().with_base(BaseNullId(2), 7i64).with_num(NumNullId(0), 1);
        let s = format!("{v:?}");
        assert!(s.contains("⊥2↦7"));
        assert!(s.contains("⊤0↦1"));
    }
}
