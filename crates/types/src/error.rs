use std::fmt;

use crate::schema::Sort;

/// Schema and typing errors for the data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two columns of a relation share a name.
    DuplicateColumn {
        /// The relation being declared.
        relation: String,
        /// The offending column name.
        column: String,
    },
    /// Two relations in one catalog share a name.
    DuplicateRelation {
        /// The offending relation name.
        relation: String,
    },
    /// A tuple's width does not match the relation arity.
    ArityMismatch {
        /// The relation receiving the tuple.
        relation: String,
        /// Expected arity.
        expected: usize,
        /// Width of the offending tuple.
        actual: usize,
    },
    /// A value's sort does not match the column sort.
    SortMismatch {
        /// The relation receiving the tuple.
        relation: String,
        /// The column position (0-based).
        column: usize,
        /// The declared sort.
        expected: Sort,
        /// The value's sort.
        actual: Sort,
    },
    /// A relation was referenced that the catalog/database does not have.
    UnknownRelation {
        /// The missing relation name.
        relation: String,
    },
    /// A valuation left some null uninterpreted when a complete database
    /// was required.
    IncompleteValuation {
        /// Display form of the uninterpreted null.
        null: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::DuplicateColumn { relation, column } => {
                write!(f, "relation {relation} declares column {column} twice")
            }
            TypeError::DuplicateRelation { relation } => {
                write!(f, "catalog already has a relation named {relation}")
            }
            TypeError::ArityMismatch { relation, expected, actual } => {
                write!(f, "relation {relation} has arity {expected}, got a tuple of width {actual}")
            }
            TypeError::SortMismatch { relation, column, expected, actual } => {
                write!(f, "column {column} of {relation} has sort {expected}, got a {actual} value")
            }
            TypeError::UnknownRelation { relation } => {
                write!(f, "unknown relation {relation}")
            }
            TypeError::IncompleteValuation { null } => {
                write!(f, "valuation does not interpret null {null}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = TypeError::ArityMismatch { relation: "R".into(), expected: 2, actual: 3 };
        assert!(e.to_string().contains("arity 2"));
        let e = TypeError::SortMismatch {
            relation: "R".into(),
            column: 1,
            expected: Sort::Num,
            actual: Sort::Base,
        };
        assert!(e.to_string().contains("sort num"));
    }
}
