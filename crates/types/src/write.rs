//! Tuple-level mutations of an incomplete database.
//!
//! A [`WriteOp`] is one `INSERT`/`DELETE`/`UPDATE` of a single tuple
//! (values may introduce fresh marked nulls — the write path is how an
//! incomplete database *stays* incomplete as it evolves); a
//! [`WriteBatch`] is an ordered sequence applied atomically by
//! [`Database::apply_batch`]. Semantics are the set semantics of §2:
//! inserting a present tuple and deleting an absent one are no-ops
//! (counted, not errored — idempotent writes keep replay and
//! generation simple), and an `UPDATE` whose `old` tuple is absent
//! inserts nothing.
//!
//! Schemas are immutable: a write may only touch relations the
//! database already declares (there is no DDL), so the catalog — and
//! with it every compiled query template — survives any batch.

use crate::database::Database;
use crate::error::TypeError;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// One tuple-level mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteOp {
    /// Insert a tuple (set semantics: a duplicate is a counted no-op).
    Insert {
        /// Target relation name.
        relation: String,
        /// The tuple's values, one per column.
        values: Vec<Value>,
    },
    /// Delete a tuple (deleting an absent tuple is a counted no-op).
    Delete {
        /// Target relation name.
        relation: String,
        /// The tuple's values, one per column.
        values: Vec<Value>,
    },
    /// Replace `old` by `new` — a delete followed by an insert, with
    /// the insert skipped when `old` was absent.
    Update {
        /// Target relation name.
        relation: String,
        /// The tuple to remove.
        old: Vec<Value>,
        /// The tuple to insert in its place.
        new: Vec<Value>,
    },
}

impl WriteOp {
    /// The relation this op targets.
    pub fn relation(&self) -> &str {
        match self {
            WriteOp::Insert { relation, .. }
            | WriteOp::Delete { relation, .. }
            | WriteOp::Update { relation, .. } => relation,
        }
    }
}

/// An ordered sequence of mutations applied as one unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WriteBatch {
    /// The ops, applied in order.
    pub ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// A batch of the given ops.
    pub fn of(ops: Vec<WriteOp>) -> WriteBatch {
        WriteBatch { ops }
    }

    /// Convenience: push an insert.
    pub fn insert(&mut self, relation: &str, values: Vec<Value>) -> &mut WriteBatch {
        self.ops.push(WriteOp::Insert { relation: relation.to_string(), values });
        self
    }

    /// Convenience: push a delete.
    pub fn delete(&mut self, relation: &str, values: Vec<Value>) -> &mut WriteBatch {
        self.ops.push(WriteOp::Delete { relation: relation.to_string(), values });
        self
    }

    /// Convenience: push an update.
    pub fn update(&mut self, relation: &str, old: Vec<Value>, new: Vec<Value>) -> &mut WriteBatch {
        self.ops.push(WriteOp::Update { relation: relation.to_string(), old, new });
        self
    }
}

/// What applying a batch did: op counts by effect, for the serving
/// layer's counters (an op that type-checked but changed nothing is
/// `noops`, not an error).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteSummary {
    /// Ops that changed the database.
    pub applied: usize,
    /// Ops that were well-typed no-ops (duplicate insert, absent
    /// delete/update).
    pub noops: usize,
}

impl Database {
    /// Applies one mutation. Type checking happens before any change,
    /// so an `Err` leaves the database untouched; the `Ok` bool says
    /// whether anything changed.
    pub fn apply_write(&mut self, op: &WriteOp) -> Result<bool, TypeError> {
        fn rel<'db>(db: &'db mut Database, name: &str) -> Result<&'db mut Relation, TypeError> {
            db.relation_mut(name)
                .ok_or_else(|| TypeError::UnknownRelation { relation: name.to_string() })
        }
        match op {
            WriteOp::Insert { relation, values } => {
                rel(self, relation)?.insert(Tuple::new(values.clone()))
            }
            WriteOp::Delete { relation, values } => {
                Ok(rel(self, relation)?.remove(&Tuple::new(values.clone())))
            }
            WriteOp::Update { relation, old, new } => {
                let r = rel(self, relation)?;
                // Check the replacement first: a sort error must not
                // leave the old tuple half-deleted.
                r.check_tuple(&Tuple::new(new.clone()))?;
                if r.remove(&Tuple::new(old.clone())) {
                    r.insert(Tuple::new(new.clone()))
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Applies a batch in order, atomically: the first error rolls the
    /// whole batch back (the database is restored to its pre-batch
    /// state), so callers never observe a partially-applied batch.
    pub fn apply_batch(&mut self, batch: &WriteBatch) -> Result<WriteSummary, TypeError> {
        let before = self.clone();
        let mut summary = WriteSummary::default();
        for op in &batch.ops {
            match self.apply_write(op) {
                Ok(true) => summary.applied += 1,
                Ok(false) => summary.noops += 1,
                Err(e) => {
                    *self = before;
                    return Err(e);
                }
            }
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::{Column, RelationSchema};
    use crate::value::NumNullId;

    fn db() -> Database {
        let mut db = Database::new();
        let schema = RelationSchema::new("R", vec![Column::base("a"), Column::num("x")]).unwrap();
        let mut r = Relation::empty(schema);
        r.insert_values(vec![Value::int(1), Value::num(10)]).unwrap();
        r.insert_values(vec![Value::int(2), Value::NumNull(NumNullId(0))]).unwrap();
        db.add_relation(r).unwrap();
        db
    }

    #[test]
    fn insert_delete_update_roundtrip() {
        let mut d = db();
        let mut batch = WriteBatch::new();
        batch
            .insert("R", vec![Value::int(3), Value::NumNull(NumNullId(7))])
            .delete("R", vec![Value::int(1), Value::num(10)])
            .update(
                "R",
                vec![Value::int(2), Value::NumNull(NumNullId(0))],
                vec![Value::int(2), Value::num(5)],
            );
        let summary = d.apply_batch(&batch).unwrap();
        assert_eq!(summary, WriteSummary { applied: 3, noops: 0 });
        let r = d.relation("R").unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::new(vec![Value::int(3), Value::NumNull(NumNullId(7))])));
        assert!(r.contains(&Tuple::new(vec![Value::int(2), Value::num(5)])));
    }

    #[test]
    fn noops_are_counted_not_errored() {
        let mut d = db();
        let mut batch = WriteBatch::new();
        batch
            .insert("R", vec![Value::int(1), Value::num(10)]) // duplicate
            .delete("R", vec![Value::int(9), Value::num(9)]) // absent
            .update("R", vec![Value::int(9), Value::num(9)], vec![Value::int(9), Value::num(8)]);
        let summary = d.apply_batch(&batch).unwrap();
        assert_eq!(summary, WriteSummary { applied: 0, noops: 3 });
        assert_eq!(d.relation("R").unwrap().len(), 2);
    }

    #[test]
    fn errors_roll_the_batch_back() {
        let mut d = db();
        let mut batch = WriteBatch::new();
        batch
            .insert("R", vec![Value::int(3), Value::num(3)]) // would apply
            .insert("Nope", vec![Value::int(1)]); // unknown relation
        let err = d.apply_batch(&batch).unwrap_err();
        assert!(matches!(err, TypeError::UnknownRelation { .. }));
        assert_eq!(d.relation("R").unwrap().len(), 2, "first op rolled back");

        let mut bad_sort = WriteBatch::new();
        bad_sort.update(
            "R",
            vec![Value::int(1), Value::num(10)],
            vec![Value::num(1), Value::num(10)], // base column gets a num
        );
        assert!(d.apply_batch(&bad_sort).is_err());
        assert!(
            d.relation("R").unwrap().contains(&Tuple::new(vec![Value::int(1), Value::num(10)])),
            "update type errors leave the old tuple in place"
        );
    }

    #[test]
    fn remove_preserves_insertion_order_of_survivors() {
        let mut d = db();
        d.relation_mut("R").unwrap().insert_values(vec![Value::int(3), Value::num(3)]).unwrap();
        d.apply_write(&WriteOp::Delete {
            relation: "R".into(),
            values: vec![Value::int(2), Value::NumNull(NumNullId(0))],
        })
        .unwrap();
        let shown: Vec<String> =
            d.relation("R").unwrap().tuples().iter().map(|t| t.get(0).to_string()).collect();
        assert_eq!(shown, ["1", "3"], "survivors keep their relative order");
    }
}
