use std::fmt;
use std::sync::Arc;

use qarith_numeric::Rational;

/// Identifier of a base-type marked null `⊥ᵢ`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BaseNullId(pub u32);

/// Identifier of a numerical-type marked null `⊤ᵢ`.
///
/// The grounding translation maps `⊤ᵢ` to the real variable `zᵢ`, so these
/// ids are kept dense per database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NumNullId(pub u32);

impl fmt::Display for BaseNullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

impl fmt::Debug for BaseNullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for NumNullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊤{}", self.0)
    }
}

impl fmt::Debug for NumNullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A constant of the base sort.
///
/// The base domain is an abstract countable set; integers and interned
/// strings cover everything the engine needs (ids, names, categories).
/// The two variants never compare equal, mirroring a disjoint union.
/// Strings use `Arc<str>` so tuples clone cheaply during joins.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BaseValue {
    /// An integer constant (e.g. a surrogate key).
    Int(i64),
    /// A string constant (e.g. a market segment name).
    Str(Arc<str>),
}

impl BaseValue {
    /// Convenience constructor for string constants.
    pub fn str(s: &str) -> BaseValue {
        BaseValue::Str(Arc::from(s))
    }
}

impl From<i64> for BaseValue {
    fn from(n: i64) -> Self {
        BaseValue::Int(n)
    }
}

impl From<&str> for BaseValue {
    fn from(s: &str) -> Self {
        BaseValue::str(s)
    }
}

impl fmt::Display for BaseValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseValue::Int(n) => write!(f, "{n}"),
            BaseValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Debug for BaseValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A cell value: a constant or a marked null, of either sort.
///
/// The four variants are pairwise distinct under `Eq`; in particular a
/// null never equals a constant and two differently-marked nulls never
/// equal each other — the marked-nulls model of §2.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A base-sort constant.
    Base(BaseValue),
    /// A base-sort marked null `⊥ᵢ`.
    BaseNull(BaseNullId),
    /// A numerical constant (exact rational ⊂ ℝ).
    Num(Rational),
    /// A numerical marked null `⊤ᵢ`.
    NumNull(NumNullId),
}

impl Value {
    /// Integer base constant.
    pub fn int(n: i64) -> Value {
        Value::Base(BaseValue::Int(n))
    }

    /// String base constant.
    pub fn str(s: &str) -> Value {
        Value::Base(BaseValue::str(s))
    }

    /// Numerical constant from an integer.
    pub fn num(n: i64) -> Value {
        Value::Num(Rational::from_int(n))
    }

    /// Numerical constant from a decimal literal.
    ///
    /// # Panics
    ///
    /// Panics on malformed literals; intended for tests and examples.
    pub fn decimal(s: &str) -> Value {
        Value::Num(Rational::parse_decimal(s).expect("valid decimal literal"))
    }

    /// The sort of this value.
    pub fn sort(&self) -> crate::schema::Sort {
        match self {
            Value::Base(_) | Value::BaseNull(_) => crate::schema::Sort::Base,
            Value::Num(_) | Value::NumNull(_) => crate::schema::Sort::Num,
        }
    }

    /// `true` iff the value is a (base or numerical) null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::BaseNull(_) | Value::NumNull(_))
    }

    /// The base constant, if this is one.
    pub fn as_base(&self) -> Option<&BaseValue> {
        match self {
            Value::Base(b) => Some(b),
            _ => None,
        }
    }

    /// The numerical constant, if this is one.
    pub fn as_num(&self) -> Option<Rational> {
        match self {
            Value::Num(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Base(b) => write!(f, "{b}"),
            Value::BaseNull(id) => write!(f, "{id}"),
            Value::Num(r) => write!(f, "{r}"),
            Value::NumNull(id) => write!(f, "{id}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Sort;

    #[test]
    fn sorts() {
        assert_eq!(Value::int(1).sort(), Sort::Base);
        assert_eq!(Value::str("x").sort(), Sort::Base);
        assert_eq!(Value::BaseNull(BaseNullId(0)).sort(), Sort::Base);
        assert_eq!(Value::num(3).sort(), Sort::Num);
        assert_eq!(Value::NumNull(NumNullId(0)).sort(), Sort::Num);
    }

    #[test]
    fn nulls_are_distinct_from_constants_and_each_other() {
        assert_ne!(Value::BaseNull(BaseNullId(0)), Value::BaseNull(BaseNullId(1)));
        assert_eq!(Value::BaseNull(BaseNullId(2)), Value::BaseNull(BaseNullId(2)));
        assert_ne!(Value::BaseNull(BaseNullId(0)), Value::int(0));
        assert_ne!(Value::NumNull(NumNullId(0)), Value::num(0));
        assert!(Value::NumNull(NumNullId(0)).is_null());
        assert!(!Value::num(0).is_null());
    }

    #[test]
    fn base_variants_disjoint() {
        assert_ne!(BaseValue::Int(1), BaseValue::str("1"));
        assert_eq!(BaseValue::str("abc"), BaseValue::str("abc"));
    }

    #[test]
    fn decimal_constructor() {
        assert_eq!(Value::decimal("0.7").as_num().unwrap(), Rational::new(7, 10));
        assert_eq!(Value::num(3).as_num().unwrap(), Rational::from_int(3));
        assert_eq!(Value::int(3).as_num(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::str("gadgets").to_string(), "\"gadgets\"");
        assert_eq!(Value::decimal("0.5").to_string(), "1/2");
        assert_eq!(Value::BaseNull(BaseNullId(3)).to_string(), "⊥3");
        assert_eq!(Value::NumNull(NumNullId(1)).to_string(), "⊤1");
    }
}
