use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use qarith_numeric::Rational;

use crate::error::TypeError;
use crate::relation::Relation;
use crate::schema::Catalog;
use crate::tuple::Tuple;
use crate::valuation::Valuation;
use crate::value::{BaseNullId, BaseValue, NumNullId, Value};

/// An incomplete database: a set of typed relations over constants and
/// marked nulls.
#[derive(Clone, Default)]
pub struct Database {
    relations: Vec<Relation>,
    by_name: HashMap<String, usize>,
}

/// Summary statistics (used by benchmarks and examples to describe
/// workloads the way §9 of the paper does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseStats {
    /// Total number of tuples across relations.
    pub tuples: usize,
    /// Number of distinct base nulls.
    pub base_nulls: usize,
    /// Number of distinct numerical nulls.
    pub num_nulls: usize,
    /// Number of relations.
    pub relations: usize,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Adds a relation; its schema name must be fresh.
    pub fn add_relation(&mut self, relation: Relation) -> Result<(), TypeError> {
        let name = relation.schema().name().to_string();
        if self.by_name.contains_key(&name) {
            return Err(TypeError::DuplicateRelation { relation: name });
        }
        self.by_name.insert(name, self.relations.len());
        self.relations.push(relation);
        Ok(())
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.by_name.get(name).map(|&i| &self.relations[i])
    }

    /// Mutable lookup.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.by_name.get(name).copied().map(move |i| &mut self.relations[i])
    }

    /// All relations.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// The catalog induced by the stored relations.
    pub fn catalog(&self) -> Catalog {
        let mut cat = Catalog::new();
        for r in &self.relations {
            cat.add(r.schema().clone()).expect("relation names are unique");
        }
        cat
    }

    /// All base nulls occurring in the database — `N_base(D)`.
    pub fn base_nulls(&self) -> BTreeSet<BaseNullId> {
        let mut out = BTreeSet::new();
        self.visit_values(|v| {
            if let Value::BaseNull(id) = v {
                out.insert(*id);
            }
        });
        out
    }

    /// All numerical nulls occurring in the database — `N_num(D)`.
    pub fn num_nulls(&self) -> BTreeSet<NumNullId> {
        let mut out = BTreeSet::new();
        self.visit_values(|v| {
            if let Value::NumNull(id) = v {
                out.insert(*id);
            }
        });
        out
    }

    /// All base constants occurring in the database — `C_base(D)`.
    pub fn base_constants(&self) -> BTreeSet<BaseValue> {
        let mut out = BTreeSet::new();
        self.visit_values(|v| {
            if let Value::Base(b) = v {
                out.insert(b.clone());
            }
        });
        out
    }

    /// All numerical constants occurring in the database — `C_num(D)`.
    pub fn num_constants(&self) -> BTreeSet<Rational> {
        let mut out = BTreeSet::new();
        self.visit_values(|v| {
            if let Value::Num(r) = v {
                out.insert(*r);
            }
        });
        out
    }

    /// Applies a (possibly partial) valuation to every stored tuple.
    pub fn apply(&self, v: &Valuation) -> Database {
        let mut out = Database::new();
        for r in &self.relations {
            let mut nr = Relation::empty(r.schema().clone());
            for t in r.tuples() {
                nr.insert(v.apply_tuple(t)).expect("valuation preserves sorts");
            }
            out.add_relation(nr).expect("names preserved");
        }
        out
    }

    /// Applies a valuation and checks the result is complete (no nulls
    /// remain) — `v(D)` for a full valuation.
    pub fn complete(&self, v: &Valuation) -> Result<Database, TypeError> {
        let out = self.apply(v);
        let mut leftover: Option<String> = None;
        out.visit_values(|val| {
            if leftover.is_none() && val.is_null() {
                leftover = Some(val.to_string());
            }
        });
        match leftover {
            Some(null) => Err(TypeError::IncompleteValuation { null }),
            None => Ok(out),
        }
    }

    /// A *bijective base valuation* in the sense of Proposition 5.2: every
    /// base null is sent to a fresh string constant outside `C_base(D)`,
    /// injectively. Numerical nulls are left untouched.
    ///
    /// Evaluating a query on `apply(bijective)` treats base nulls as fresh
    /// distinct constants — the base-sort part of naive evaluation.
    pub fn bijective_base_valuation(&self) -> Valuation {
        let taken: HashSet<BaseValue> = self.base_constants().into_iter().collect();
        let mut v = Valuation::new();
        for id in self.base_nulls() {
            // `⟨⊥i⟩` is virtually collision-free; suffix until fresh to be
            // safe against adversarial data.
            let mut name = format!("⟨⊥{}⟩", id.0);
            while taken.contains(&BaseValue::str(&name)) {
                name.push('\'');
            }
            v.set_base(id, BaseValue::str(&name));
        }
        v
    }

    /// Summary statistics.
    pub fn stats(&self) -> DatabaseStats {
        DatabaseStats {
            tuples: self.relations.iter().map(Relation::len).sum(),
            base_nulls: self.base_nulls().len(),
            num_nulls: self.num_nulls().len(),
            relations: self.relations.len(),
        }
    }

    fn visit_values(&self, mut f: impl FnMut(&Value)) {
        for r in &self.relations {
            for t in r.tuples() {
                for v in t.values() {
                    f(v);
                }
            }
        }
    }

    /// Convenience: iterate `(relation name, tuple)` pairs.
    pub fn iter_tuples(&self) -> impl Iterator<Item = (&str, &Tuple)> {
        self.relations.iter().flat_map(|r| r.tuples().iter().map(move |t| (r.schema().name(), t)))
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "Database[{} relations, {} tuples, {} base nulls, {} num nulls]",
            s.relations, s.tuples, s.base_nulls, s.num_nulls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, RelationSchema};

    /// The intro example of the paper: Products / Competition / Excluded
    /// with nulls ⊤0 (price), ⊤1 (rrp), ⊥0 (excluded id).
    pub fn intro_example() -> Database {
        let mut db = Database::new();

        let products = RelationSchema::new(
            "Products",
            vec![Column::base("id"), Column::base("seg"), Column::num("rrp"), Column::num("dis")],
        )
        .unwrap();
        let mut p = Relation::empty(products);
        p.insert_values(vec![
            Value::str("id1"),
            Value::str("s"),
            Value::num(10),
            Value::decimal("0.8"),
        ])
        .unwrap();
        p.insert_values(vec![
            Value::str("id2"),
            Value::str("s"),
            Value::NumNull(NumNullId(1)),
            Value::decimal("0.7"),
        ])
        .unwrap();
        db.add_relation(p).unwrap();

        let competition = RelationSchema::new(
            "Competition",
            vec![Column::base("id"), Column::base("seg"), Column::num("p")],
        )
        .unwrap();
        let mut c = Relation::empty(competition);
        c.insert_values(vec![Value::str("c"), Value::str("s"), Value::NumNull(NumNullId(0))])
            .unwrap();
        db.add_relation(c).unwrap();

        let excluded =
            RelationSchema::new("Excluded", vec![Column::base("id"), Column::base("seg")]).unwrap();
        let mut e = Relation::empty(excluded);
        e.insert_values(vec![Value::BaseNull(BaseNullId(0)), Value::str("s")]).unwrap();
        db.add_relation(e).unwrap();

        db
    }

    #[test]
    fn null_and_constant_harvest() {
        let db = intro_example();
        assert_eq!(db.base_nulls().into_iter().collect::<Vec<_>>(), vec![BaseNullId(0)]);
        assert_eq!(
            db.num_nulls().into_iter().collect::<Vec<_>>(),
            vec![NumNullId(0), NumNullId(1)]
        );
        assert!(db.base_constants().contains(&BaseValue::str("id1")));
        assert!(db.num_constants().contains(&Rational::new(7, 10)));
        let s = db.stats();
        assert_eq!(s.tuples, 4);
        assert_eq!(s.base_nulls, 1);
        assert_eq!(s.num_nulls, 2);
        assert_eq!(s.relations, 3);
    }

    #[test]
    fn duplicate_relation_names_rejected() {
        let mut db = intro_example();
        let dup =
            Relation::empty(RelationSchema::new("Products", vec![Column::base("id")]).unwrap());
        assert!(matches!(db.add_relation(dup), Err(TypeError::DuplicateRelation { .. })));
    }

    #[test]
    fn complete_requires_all_nulls_mapped() {
        let db = intro_example();
        let partial = Valuation::new().with_num(NumNullId(0), 5);
        assert!(matches!(db.complete(&partial), Err(TypeError::IncompleteValuation { .. })));

        let full = Valuation::new()
            .with_num(NumNullId(0), 12)
            .with_num(NumNullId(1), 9)
            .with_base(BaseNullId(0), "id9");
        let complete = db.complete(&full).unwrap();
        assert_eq!(complete.stats().base_nulls, 0);
        assert_eq!(complete.stats().num_nulls, 0);
        // Tuples got rewritten.
        let c = complete.relation("Competition").unwrap();
        assert_eq!(c.tuples()[0].get(2), &Value::num(12));
    }

    #[test]
    fn bijective_valuation_is_bijective_and_fresh() {
        let db = intro_example();
        let v = db.bijective_base_valuation();
        let forbidden: HashSet<BaseValue> = db.base_constants().into_iter().collect();
        assert!(v.is_bijective_base(&forbidden));
        // It maps exactly the base nulls of D.
        assert_eq!(v.base_assignments().count(), 1);
    }

    #[test]
    fn apply_is_partial_and_nondestructive() {
        let db = intro_example();
        let v = Valuation::new().with_num(NumNullId(0), 42);
        let applied = db.apply(&v);
        assert_eq!(applied.stats().num_nulls, 1); // ⊤1 remains
        assert_eq!(db.stats().num_nulls, 2); // original untouched
    }

    #[test]
    fn iter_tuples_covers_everything() {
        let db = intro_example();
        assert_eq!(db.iter_tuples().count(), 4);
        assert!(db.iter_tuples().any(|(r, _)| r == "Excluded"));
    }
}
