//! Two-sorted incomplete-database data model (§2–§3 of the paper).
//!
//! Layering: above `qarith-numeric` only; everything that touches a
//! database — query validation, SQL catalogs, the executor, data
//! generation, the serving layer — builds on these types.
//!
//! Databases have columns of two types: a **base** type (the classical
//! single-domain assumption — ids, names, market segments, …) and a
//! **numerical** type (a subset of ℝ — prices, discounts, quantities, …).
//! Either kind of column may contain *marked nulls*: `⊥ᵢ` for base columns
//! ([`BaseNullId`]) and `⊤ᵢ` for numerical columns ([`NumNullId`]).
//!
//! An incomplete database represents the set of complete databases
//! obtained by applying a [`Valuation`] `v = (v_base, v_num)` that sends
//! base nulls to base constants and numerical nulls to real numbers.
//! Numerical constants are exact rationals ([`qarith_numeric::Rational`])
//! so that the downstream symbolic pipeline stays exact.
//!
//! Main types:
//!
//! * [`Value`], [`BaseValue`] — cell values of either sort, possibly null;
//! * [`Sort`], [`Column`], [`RelationSchema`], [`Catalog`] — typed schemas;
//! * [`Tuple`], [`Relation`], [`Database`] — data, with type checking on
//!   insertion;
//! * [`Valuation`] — interpretations of nulls; applying a valuation yields
//!   the complete database `v(D)`;
//! * [`Database::bijective_base_valuation`] — the "nulls as fresh
//!   distinct constants" reading used by naive evaluation and by the
//!   bijective base valuations of Proposition 5.2;
//! * [`WriteOp`], [`WriteBatch`] — tuple-level mutations (the serving
//!   layer's epoch store applies these to evolve a live database).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
mod error;
mod relation;
mod schema;
mod tuple;
mod valuation;
mod value;
mod write;

pub use database::{Database, DatabaseStats};
pub use error::TypeError;
pub use relation::Relation;
pub use schema::{Catalog, Column, RelationSchema, Sort};
pub use tuple::Tuple;
pub use valuation::Valuation;
pub use value::{BaseNullId, BaseValue, NumNullId, Value};
pub use write::{WriteBatch, WriteOp, WriteSummary};
