use std::fmt;

use crate::value::Value;

/// A database tuple: a fixed-width sequence of [`Value`]s.
///
/// Tuples are immutable once built; the boxed-slice representation keeps
/// them two words wide, which matters when relations hold hundreds of
/// thousands of them.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Tuple {
        Tuple { values: values.into() }
    }

    /// Width of the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The `i`-th value.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// `true` iff any component is a null.
    pub fn has_nulls(&self) -> bool {
        self.values.iter().any(Value::is_null)
    }

    /// A new tuple with each value transformed by `f`.
    pub fn map(&self, f: impl FnMut(&Value) -> Value) -> Tuple {
        Tuple { values: self.values.iter().map(f).collect() }
    }

    /// Projects onto the given column positions.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple { values: cols.iter().map(|&i| self.values[i].clone()).collect() }
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{NumNullId, Value};

    #[test]
    fn basics() {
        let t = Tuple::new(vec![Value::int(1), Value::str("a"), Value::num(3)]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), &Value::int(1));
        assert!(!t.has_nulls());
        let n = Tuple::new(vec![Value::NumNull(NumNullId(0))]);
        assert!(n.has_nulls());
    }

    #[test]
    fn projection() {
        let t = Tuple::new(vec![Value::int(1), Value::int(2), Value::int(3)]);
        assert_eq!(t.project(&[2, 0]), Tuple::new(vec![Value::int(3), Value::int(1)]));
        assert_eq!(t.project(&[]), Tuple::new(vec![]));
    }

    #[test]
    fn map_transforms() {
        let t = Tuple::new(vec![Value::num(1), Value::num(2)]);
        let doubled = t.map(|v| match v {
            Value::Num(r) => Value::Num(*r + *r),
            other => other.clone(),
        });
        assert_eq!(doubled, Tuple::new(vec![Value::num(2), Value::num(4)]));
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::int(1), Value::str("x")]);
        assert_eq!(t.to_string(), "(1, \"x\")");
    }
}
