use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::TypeError;

/// The two attribute sorts of the data model (§3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sort {
    /// The uninterpreted base type (`base`).
    Base,
    /// The numerical type (`num`), a subset of ℝ.
    Num,
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Base => write!(f, "base"),
            Sort::Num => write!(f, "num"),
        }
    }
}

/// A named, sorted column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    name: String,
    sort: Sort,
}

impl Column {
    /// A base-sort column.
    pub fn base(name: &str) -> Column {
        Column { name: name.to_string(), sort: Sort::Base }
    }

    /// A numerical-sort column.
    pub fn num(name: &str) -> Column {
        Column { name: name.to_string(), sort: Sort::Num }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column sort.
    pub fn sort(&self) -> Sort {
        self.sort
    }
}

/// The schema of one relation: a name and a list of typed columns.
///
/// The paper writes `R(baseᵏ numᵐ)`; we allow base and numerical columns
/// to be interspersed (as the paper notes real DDL does — the `baseᵏnumᵐ`
/// layout is only a notational convenience there).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelationSchema {
    name: String,
    columns: Arc<[Column]>,
    by_name: HashMap<String, usize>,
}

impl RelationSchema {
    /// Creates a schema; column names must be distinct.
    pub fn new(name: &str, columns: Vec<Column>) -> Result<RelationSchema, TypeError> {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name.clone(), i).is_some() {
                return Err(TypeError::DuplicateColumn {
                    relation: name.to_string(),
                    column: c.name.clone(),
                });
            }
        }
        Ok(RelationSchema { name: name.to_string(), columns: columns.into(), by_name })
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Sort of the `i`-th column.
    pub fn sort_of(&self, i: usize) -> Sort {
        self.columns[i].sort()
    }

    /// Number of base-sort columns.
    pub fn base_arity(&self) -> usize {
        self.columns.iter().filter(|c| c.sort() == Sort::Base).count()
    }

    /// Number of numerical-sort columns.
    pub fn num_arity(&self) -> usize {
        self.columns.iter().filter(|c| c.sort() == Sort::Num).count()
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", c.name(), c.sort())?;
        }
        write!(f, ")")
    }
}

/// A database schema: a collection of relation schemas.
#[derive(Clone, Default, Debug)]
pub struct Catalog {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, usize>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Adds a relation schema; names must be unique.
    pub fn add(&mut self, schema: RelationSchema) -> Result<(), TypeError> {
        if self.by_name.contains_key(schema.name()) {
            return Err(TypeError::DuplicateRelation { relation: schema.name().to_string() });
        }
        self.by_name.insert(schema.name().to_string(), self.relations.len());
        self.relations.push(schema);
        Ok(())
    }

    /// Looks up a relation schema by name.
    pub fn get(&self, name: &str) -> Option<&RelationSchema> {
        self.by_name.get(name).map(|&i| &self.relations[i])
    }

    /// All relation schemas.
    pub fn relations(&self) -> &[RelationSchema] {
        &self.relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales_products() -> RelationSchema {
        RelationSchema::new(
            "Products",
            vec![Column::base("id"), Column::base("seg"), Column::num("rrp"), Column::num("dis")],
        )
        .unwrap()
    }

    #[test]
    fn schema_basics() {
        let s = sales_products();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.base_arity(), 2);
        assert_eq!(s.num_arity(), 2);
        assert_eq!(s.column_index("rrp"), Some(2));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.sort_of(0), Sort::Base);
        assert_eq!(s.sort_of(3), Sort::Num);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = RelationSchema::new("R", vec![Column::base("a"), Column::num("a")]);
        assert!(matches!(r, Err(TypeError::DuplicateColumn { .. })));
    }

    #[test]
    fn display() {
        assert_eq!(
            sales_products().to_string(),
            "Products(id: base, seg: base, rrp: num, dis: num)"
        );
    }

    #[test]
    fn catalog_lookup_and_duplicates() {
        let mut cat = Catalog::new();
        cat.add(sales_products()).unwrap();
        assert!(cat.get("Products").is_some());
        assert!(cat.get("Orders").is_none());
        assert!(matches!(cat.add(sales_products()), Err(TypeError::DuplicateRelation { .. })));
        assert_eq!(cat.relations().len(), 1);
    }
}
