//! Property tests for the sampling kernel's bit-pinning invariant: the
//! batched structure-of-arrays direction stream must be bit-identical
//! to the scalar one-`Vec`-per-draw stream for every (seed, worker
//! stream, dimension) — this is the invariant that keeps every
//! checked-in certainty digest green after the kernel was blocked.

use proptest::prelude::*;
use qarith_geometry::{
    fill_unit_sphere_block, sample_unit_ball, sample_unit_ball_into, sample_unit_sphere,
    sample_unit_sphere_into,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The per-worker stream derivation of the AFPRAS (`afpras::worker`):
/// golden-ratio splitting of the user seed.
fn stream_rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream + 1)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Blocked SoA filling consumes the RNG exactly like sequential
    /// scalar draws: every coordinate of every direction is bit-equal,
    /// for any block partition of the quota, and both generators end in
    /// the same state.
    #[test]
    fn block_stream_is_bit_identical_to_scalar_stream(
        seed in 0u64..u64::MAX,
        stream in 0u64..8,
        dim in 1usize..12,
        quota in 1usize..120,
        block in 1usize..80,
    ) {
        let mut scalar_rng = stream_rng(seed, stream);
        let mut block_rng = stream_rng(seed, stream);

        // Scalar reference: quota sequential draws.
        let scalar: Vec<Vec<f64>> =
            (0..quota).map(|_| sample_unit_sphere(&mut scalar_rng, dim)).collect();

        // Blocked stream: fill SoA blocks of `block` lanes until the
        // quota is exhausted (the last block is a remainder).
        let mut soa = vec![0.0f64; dim * block];
        let mut gathered: Vec<Vec<f64>> = Vec::with_capacity(quota);
        let mut remaining = quota;
        while remaining > 0 {
            let count = remaining.min(block);
            fill_unit_sphere_block(&mut block_rng, dim, count, &mut soa[..dim * count]);
            for j in 0..count {
                gathered.push((0..dim).map(|c| soa[c * count + j]).collect());
            }
            remaining -= count;
        }

        for (i, (a, b)) in scalar.iter().zip(&gathered).enumerate() {
            for (c, (x, y)) in a.iter().zip(b).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "direction {} coordinate {} diverged", i, c
                );
            }
        }
        // The streams must also stay aligned past the quota.
        prop_assert_eq!(scalar_rng.gen::<u64>(), block_rng.gen::<u64>());
    }

    /// The `_into` twins consume the RNG identically to the allocating
    /// entry points (the FPRAS walk/rejection loops rely on this).
    #[test]
    fn into_variants_preserve_the_stream(
        seed in 0u64..u64::MAX,
        dim in 1usize..10,
        draws in 1usize..40,
    ) {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let mut buf = vec![0.0f64; dim];
        for _ in 0..draws {
            let sphere = sample_unit_sphere(&mut a, dim);
            sample_unit_sphere_into(&mut b, &mut buf);
            for (x, y) in sphere.iter().zip(&buf) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            let ball = sample_unit_ball(&mut a, dim);
            sample_unit_ball_into(&mut b, &mut buf);
            for (x, y) in ball.iter().zip(&buf) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        prop_assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
