//! Property tests for the simplex solver and the convex-body primitives.

use proptest::prelude::*;
use qarith_geometry::lp::{maximize, LpOutcome};
use qarith_geometry::{ConvexBody, Halfspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random bounded LP: box −B ≤ x ≤ B plus extra random rows.
fn bounded_lp(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<Vec<f64>>, Vec<f64>)> {
    let coeff = -3.0f64..3.0;
    (
        prop::collection::vec(coeff.clone(), n),
        prop::collection::vec((prop::collection::vec(coeff, n), -2.0f64..4.0), 0..4),
    )
        .prop_map(move |(c, extra)| {
            let mut rows = Vec::new();
            let mut rhs = Vec::new();
            // The box guarantees boundedness and feasibility of x = 0 …
            // unless an extra row cuts the origin off; both outcomes are
            // valid test inputs.
            for j in 0..n {
                let mut up = vec![0.0; n];
                up[j] = 1.0;
                rows.push(up);
                rhs.push(5.0);
                let mut down = vec![0.0; n];
                down[j] = -1.0;
                rows.push(down);
                rhs.push(5.0);
            }
            for (row, b) in extra {
                rows.push(row);
                rhs.push(b);
            }
            (c, rows, rhs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The optimizer is feasible, and no sampled feasible point beats it.
    #[test]
    fn simplex_optimality_certificate((c, rows, rhs) in bounded_lp(3), seed in 0u64..500) {
        match maximize(&c, &rows, &rhs).unwrap() {
            LpOutcome::Optimal { x, value } => {
                // Feasibility of the reported optimizer.
                for (row, b) in rows.iter().zip(&rhs) {
                    let lhs: f64 = row.iter().zip(&x).map(|(a, xi)| a * xi).sum();
                    prop_assert!(lhs <= b + 1e-6, "constraint violated: {lhs} > {b}");
                }
                // Objective consistency.
                let recomputed: f64 = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
                prop_assert!((recomputed - value).abs() < 1e-6);
                // Random feasible points never beat the optimum.
                let mut rng = StdRng::seed_from_u64(seed);
                'outer: for _ in 0..200 {
                    let y: Vec<f64> = (0..c.len()).map(|_| rng.gen_range(-5.0..5.0)).collect();
                    for (row, b) in rows.iter().zip(&rhs) {
                        let lhs: f64 = row.iter().zip(&y).map(|(a, yi)| a * yi).sum();
                        if lhs > *b {
                            continue 'outer;
                        }
                    }
                    let obj: f64 = c.iter().zip(&y).map(|(ci, yi)| ci * yi).sum();
                    prop_assert!(obj <= value + 1e-6, "feasible {y:?} beats optimum");
                }
            }
            LpOutcome::Infeasible => {
                // The box alone is feasible, so infeasibility must come
                // from an extra row that excludes the whole box; spot
                // check that x = 0 is indeed excluded.
                let origin_feasible = rows.iter().zip(&rhs).all(|(_, b)| *b >= 0.0);
                prop_assert!(!origin_feasible, "claimed infeasible but origin fits");
            }
            LpOutcome::Unbounded => {
                prop_assert!(false, "boxed LPs cannot be unbounded");
            }
        }
    }

    /// Chords are consistent with membership: points inside the chord
    /// range are in the body, points outside are not.
    #[test]
    fn chord_membership_consistency(seed in 0u64..2000) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random cone: 1–3 halfspaces through the origin, inside B(0,1).
        let n = 2 + (seed % 2) as usize;
        let k = 1 + (seed % 3) as usize;
        let halfspaces: Vec<Halfspace> = (0..k)
            .map(|_| {
                let normal: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                Halfspace::new(normal, 0.0)
            })
            .collect();
        let body = ConvexBody::new(n, halfspaces, Some(1.0));
        let Ok((p, _)) = body.interior_point() else { return Ok(()); };
        let dir: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let Some((lo, hi)) = body.chord(&p, &dir) else { return Ok(()); };
        prop_assert!(lo <= 0.0 && 0.0 <= hi, "start point must lie on the chord");
        for t in [lo + 0.1 * (hi - lo), 0.5 * (lo + hi), hi - 0.1 * (hi - lo)] {
            let q: Vec<f64> = p.iter().zip(&dir).map(|(a, d)| a + t * d).collect();
            prop_assert!(body.contains(&q), "chord point at t={t} escaped");
        }
        for t in [lo - 0.05 * (hi - lo + 1.0) - 1e-6, hi + 0.05 * (hi - lo + 1.0) + 1e-6] {
            let q: Vec<f64> = p.iter().zip(&dir).map(|(a, d)| a + t * d).collect();
            prop_assert!(!body.contains(&q), "point beyond the chord at t={t} inside");
        }
    }
}
