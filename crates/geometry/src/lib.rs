//! Convex-geometry substrate for the Theorem 7.1 FPRAS.
//!
//! Layering: a leaf crate above only the vendored `rand`; consumed by
//! `qarith-core`'s `fpras` module. Everything symbolic happens below
//! in `qarith-constraints`; this crate is pure `f64` geometry.
//!
//! The paper reduces `μ` for CQ(+,<) queries to the volume of a union of
//! convex bodies — homogenized polyhedral cones intersected with the unit
//! ball — and invokes the Bringmann–Friedrich estimator
//! (*Approximating the volume of unions and intersections of
//! high-dimensional geometric objects*, CG 2010), which needs three
//! per-body primitives: a volume (approximation), a uniform sampler, and a
//! membership oracle. This crate builds all three from scratch:
//!
//! * [`sample_unit_sphere`] / [`sample_unit_ball`] — the Gaussian
//!   normalization technique of Blum–Hopcroft–Kannan (the paper's \[8\]);
//! * [`ConvexBody`] — H-polytopes intersected with a ball: membership and
//!   exact line-chord computation;
//! * [`lp`] — a dense two-phase primal simplex solver (Bland's rule), used
//!   to find Chebyshev-style interior points and to discard empty cones;
//! * [`HitAndRun`] — the classic uniform sampler over convex bodies;
//! * [`estimate_volume_fraction`] — hybrid volume estimation: direct
//!   rejection sampling for bodies with non-tiny volume, multi-phase
//!   ball-annealing Monte Carlo for the rest (the practical stand-in for
//!   the Lovász–Vempala-style volume oracles the theorem assumes);
//! * [`estimate_union_fraction`] — the multiplicity-weighted union
//!   estimator (Karp–Luby style) of Bringmann–Friedrich.
//!
//! Everything is plain `f64`: by the time geometry runs, all symbolic
//! reasoning (homogenization, degeneracy detection) has already happened
//! exactly in `qarith-constraints`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod body;
mod error;
mod hitrun;
pub mod lp;
mod sampler;
mod union;
mod vecmath;
mod volume;

pub use body::{ConvexBody, Halfspace};
pub use error::GeometryError;
pub use hitrun::HitAndRun;
pub use sampler::{
    fill_unit_sphere_block, sample_unit_ball, sample_unit_ball_into, sample_unit_sphere,
    sample_unit_sphere_into, standard_normal,
};
pub use union::{estimate_union_fraction, UnionBody};
pub use vecmath::{dot, norm, scale_in_place};
pub use volume::{estimate_volume_fraction, unit_ball_volume, VolumeOptions};
