//! A dense two-phase primal simplex solver.
//!
//! Solves `maximize c·x subject to A·x ≤ b` with **free** variables
//! (internally split into positive/negative parts). Bland's rule prevents
//! cycling; an iteration budget guards against numerically degenerate
//! inputs. Problem sizes in this workspace are tiny (tens of variables and
//! constraints — one per linear atom of a ground-formula disjunct), so a
//! dense tableau is the right tool.
//!
//! The FPRAS uses the solver for two jobs:
//!
//! * **feasibility with margin** — does a homogenized cone
//!   `{x : aᵢ·x < 0}` have interior? Maximize `t` subject to
//!   `aᵢ·x + ‖aᵢ‖·t ≤ 0` and a bounding box; interior exists iff the
//!   optimum is positive. The optimizer also *returns* a deep interior
//!   point (a Chebyshev-style center) used to seed hit-and-run.
//! * **pruning** — empty cones contribute no volume and are dropped
//!   before sampling.

use crate::error::GeometryError;

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution (for the original free variables) and its
    /// objective value.
    Optimal {
        /// Optimizer.
        x: Vec<f64>,
        /// Objective value at the optimizer.
        value: f64,
    },
    /// The constraints are unsatisfiable.
    Infeasible,
    /// The objective is unbounded above on the feasible set.
    Unbounded,
}

const EPS: f64 = 1e-9;
const MAX_ITERS: usize = 20_000;

/// Maximizes `c·x` subject to `a·x ≤ b` (row-wise), `x` free.
///
/// `a` is row-major: `a[i]` is the `i`-th constraint, `a[i].len() == c.len()`.
pub fn maximize(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Result<LpOutcome, GeometryError> {
    let n = c.len();
    let m = a.len();
    for (i, row) in a.iter().enumerate() {
        if row.len() != n {
            return Err(GeometryError::DimensionMismatch { expected: n, actual: row.len() });
        }
        debug_assert!(i < b.len());
    }
    assert_eq!(b.len(), m, "b must have one entry per constraint row");

    // Columns: 0..n = x⁺, n..2n = x⁻, 2n..2n+m = slacks, then artificials.
    let split = 2 * n;
    let mut needs_artificial = vec![false; m];
    let mut n_art = 0;
    for (i, &bi) in b.iter().enumerate() {
        if bi < 0.0 {
            needs_artificial[i] = true;
            n_art += 1;
        }
    }
    let total = split + m + n_art;

    // Build tableau rows: [coeffs | rhs], with rows normalized to rhs ≥ 0.
    let mut t: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    let mut art_col = split + m;
    for i in 0..m {
        let mut row = vec![0.0; total + 1];
        let sgn = if needs_artificial[i] { -1.0 } else { 1.0 };
        for j in 0..n {
            row[j] = sgn * a[i][j];
            row[n + j] = -sgn * a[i][j];
        }
        row[split + i] = sgn; // slack
        row[total] = sgn * b[i];
        if needs_artificial[i] {
            row[art_col] = 1.0;
            basis.push(art_col);
            art_col += 1;
        } else {
            basis.push(split + i);
        }
        t.push(row);
    }

    // Phase 1: minimize sum of artificials (maximize −Σ art).
    if n_art > 0 {
        let mut obj = vec![0.0; total + 1];
        for o in obj.iter_mut().take(total).skip(split + m) {
            *o = -1.0;
        }
        // Make the objective row consistent with the basis (price out
        // basic artificials).
        for (i, &bv) in basis.iter().enumerate() {
            if bv >= split + m {
                let coef = obj[bv];
                if coef != 0.0 {
                    for (o, ti) in obj.iter_mut().zip(&t[i]) {
                        *o -= coef * ti;
                    }
                }
            }
        }
        simplex(&mut t, &mut obj, &mut basis, total)?;
        let phase1 = -obj[total]; // objective value = −(sum of artificials)
        if phase1 < -EPS {
            return Ok(LpOutcome::Infeasible);
        }
        // Pivot remaining (degenerate) artificials out of the basis.
        for i in 0..m {
            if basis[i] >= split + m {
                if let Some(j) = (0..split + m).find(|&j| t[i][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, i, j, total, None);
                } // else: redundant row; keep the artificial at value 0.
            }
        }
    }

    // Phase 2: the real objective over x⁺/x⁻ columns (artificials pinned
    // at zero by excluding them from entering).
    let mut obj = vec![0.0; total + 1];
    for j in 0..n {
        obj[j] = c[j];
        obj[n + j] = -c[j];
    }
    // Price out the current basis.
    for (i, &bv) in basis.iter().enumerate() {
        let coef = obj[bv];
        if coef != 0.0 {
            for (o, ti) in obj.iter_mut().zip(&t[i]) {
                *o -= coef * ti;
            }
        }
    }
    let enterable_limit = split + m; // artificials may not re-enter
    match simplex_limited(&mut t, &mut obj, &mut basis, total, enterable_limit)? {
        SimplexEnd::Optimal => {}
        SimplexEnd::Unbounded => return Ok(LpOutcome::Unbounded),
    }

    // Read off the solution.
    let mut xs = vec![0.0; total];
    for (i, &bv) in basis.iter().enumerate() {
        xs[bv] = t[i][total];
    }
    let x: Vec<f64> = (0..n).map(|j| xs[j] - xs[n + j]).collect();
    let value = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    Ok(LpOutcome::Optimal { x, value })
}

enum SimplexEnd {
    Optimal,
    Unbounded,
}

fn simplex(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    total: usize,
) -> Result<(), GeometryError> {
    match simplex_limited(t, obj, basis, total, total)? {
        SimplexEnd::Optimal => Ok(()),
        // Phase 1 is bounded by construction; unboundedness here means
        // numerical breakdown.
        SimplexEnd::Unbounded => Err(GeometryError::LpStalled),
    }
}

fn simplex_limited(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    total: usize,
    enterable_limit: usize,
) -> Result<SimplexEnd, GeometryError> {
    for _ in 0..MAX_ITERS {
        // Bland: smallest-index column with positive reduced cost.
        let Some(enter) = (0..enterable_limit).find(|&j| obj[j] > EPS) else {
            return Ok(SimplexEnd::Optimal);
        };
        // Ratio test (Bland tie-break on basis index).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for (i, row) in t.iter().enumerate() {
            if row[enter] > EPS {
                let ratio = row[total] / row[enter];
                let better = ratio < best - EPS
                    || (ratio < best + EPS && leave.is_some_and(|l| basis[i] < basis[l]));
                if better {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return Ok(SimplexEnd::Unbounded);
        };
        pivot(t, basis, leave, enter, total, Some(obj));
    }
    Err(GeometryError::LpStalled)
}

fn pivot(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    row: usize,
    col: usize,
    total: usize,
    obj: Option<&mut [f64]>,
) {
    let p = t[row][col];
    debug_assert!(p.abs() > EPS / 10.0, "pivot on (near-)zero element");
    for v in t[row].iter_mut().take(total + 1) {
        *v /= p;
    }
    let pivot_row = t[row].clone();
    for (i, r) in t.iter_mut().enumerate() {
        if i != row {
            let f = r[col];
            if f != 0.0 {
                for (v, pv) in r.iter_mut().zip(&pivot_row) {
                    *v -= f * pv;
                }
            }
        }
    }
    if let Some(obj) = obj {
        let f = obj[col];
        if f != 0.0 {
            for (v, pv) in obj.iter_mut().zip(&t[row]) {
                *v -= f * pv;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_optimal(out: LpOutcome, want_value: f64) -> Vec<f64> {
        match out {
            LpOutcome::Optimal { x, value } => {
                assert!((value - want_value).abs() < 1e-6, "value {value}, want {want_value}");
                x
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_box() {
        // max x + y s.t. x ≤ 1, y ≤ 2, −x ≤ 0, −y ≤ 0.
        let out = maximize(
            &[1.0, 1.0],
            &[vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0], vec![0.0, -1.0]],
            &[1.0, 2.0, 0.0, 0.0],
        )
        .unwrap();
        let x = assert_optimal(out, 3.0);
        assert!((x[0] - 1.0).abs() < 1e-6 && (x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn free_variables_go_negative() {
        // max −x s.t. −x ≤ 5  ⇒  x = −5, value 5.
        let out = maximize(&[-1.0], &[vec![-1.0]], &[5.0]).unwrap();
        let x = assert_optimal(out, 5.0);
        assert!((x[0] + 5.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_feasible() {
        // x ≥ 2 encoded as −x ≤ −2; max −x ⇒ x = 2.
        let out = maximize(&[-1.0], &[vec![-1.0]], &[-2.0]).unwrap();
        let x = assert_optimal(out, -2.0);
        assert!((x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ −1 and x ≥ 1.
        let out = maximize(&[1.0], &[vec![1.0], vec![-1.0]], &[-1.0, -1.0]).unwrap();
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with only x ≥ 0.
        let out = maximize(&[1.0], &[vec![-1.0]], &[0.0]).unwrap();
        assert_eq!(out, LpOutcome::Unbounded);
    }

    #[test]
    fn classic_lp() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0 → 36 at (2,6).
        let out = maximize(
            &[3.0, 5.0],
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0], vec![-1.0, 0.0], vec![0.0, -1.0]],
            &[4.0, 12.0, 18.0, 0.0, 0.0],
        )
        .unwrap();
        let x = assert_optimal(out, 36.0);
        assert!((x[0] - 2.0).abs() < 1e-6 && (x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn chebyshev_margin_of_a_cone() {
        // Cone {x < 0, y < 0} in a unit box: maximize t s.t.
        // x + t ≤ 0, y + t ≤ 0, ±x + t ≤ 1, ±y + t ≤ 1.
        let out = maximize(
            &[0.0, 0.0, 1.0],
            &[
                vec![1.0, 0.0, 1.0],
                vec![0.0, 1.0, 1.0],
                vec![1.0, 0.0, 1.0],
                vec![-1.0, 0.0, 1.0],
                vec![0.0, 1.0, 1.0],
                vec![0.0, -1.0, 1.0],
            ],
            &[0.0, 0.0, 1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        match out {
            LpOutcome::Optimal { x, value } => {
                assert!(value > 0.4, "margin should be sizeable, got {value}");
                assert!(x[0] < 0.0 && x[1] < 0.0, "center strictly inside: {x:?}");
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn empty_cone_has_no_margin() {
        // {x < 0 and −x < 0} is empty: max t s.t. x + t ≤ 0, −x + t ≤ 0 →
        // optimum t = 0 (not positive).
        let out = maximize(&[0.0, 1.0], &[vec![1.0, 1.0], vec![-1.0, 1.0]], &[0.0, 0.0]).unwrap();
        match out {
            LpOutcome::Optimal { value, .. } => assert!(value.abs() < 1e-6),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_equalities_via_inequality_pairs() {
        // x = 3 via x ≤ 3 ∧ −x ≤ −3; max x → 3.
        let out = maximize(&[1.0], &[vec![1.0], vec![-1.0]], &[3.0, -3.0]).unwrap();
        let x = assert_optimal(out, 3.0);
        assert!((x[0] - 3.0).abs() < 1e-6);
    }
}
