use rand::Rng;

use crate::body::ConvexBody;
use crate::error::GeometryError;
use crate::hitrun::HitAndRun;
use crate::sampler::sample_unit_ball_into;
use crate::vecmath::scale_in_place;

/// Exact volume of the unit ball `B^n(1)` (recursion
/// `V_n = 2π/n · V_{n−2}`, `V_0 = 1`, `V_1 = 2`).
pub fn unit_ball_volume(n: usize) -> f64 {
    match n {
        0 => 1.0,
        1 => 2.0,
        _ => unit_ball_volume(n - 2) * std::f64::consts::TAU / n as f64,
    }
}

/// Tuning knobs for [`estimate_volume_fraction`].
#[derive(Clone, Debug)]
pub struct VolumeOptions {
    /// Samples per annealing phase.
    pub samples_per_phase: usize,
    /// Hit-and-run steps between recorded samples.
    pub walk_steps: usize,
    /// Radius multiplier per phase (`1 + 1/n` when `None`).
    pub ratio: Option<f64>,
}

impl Default for VolumeOptions {
    fn default() -> Self {
        VolumeOptions { samples_per_phase: 600, walk_steps: 8, ratio: None }
    }
}

/// Estimates `Vol(K) / Vol(B^n(R))` for a convex body `K` bounded by an
/// outer ball `B(0, R)` (the body's first ball constraint; `R = 1` for the
/// FPRAS cones) via multi-phase ball annealing:
///
/// `Vol(K) = Vol(B(x₀, r₀)) · Π_i Vol(K ∩ B(x₀, rᵢ))/Vol(K ∩ B(x₀, rᵢ₋₁))`,
///
/// where `B(x₀, r₀) ⊆ K` is the LP inscribed ball and the radii grow
/// geometrically until the schedule ball swallows `K`. Each ratio is
/// estimated by hit-and-run sampling from the larger intersection and
/// counting hits in the smaller; every ratio is bounded below by a
/// constant, keeping per-phase relative variance bounded (the standard
/// Monte-Carlo volume argument — the practical stand-in for the volume
/// oracle assumed by Theorem 7.1).
pub fn estimate_volume_fraction(
    body: &ConvexBody,
    rng: &mut impl Rng,
    opts: &VolumeOptions,
) -> Result<f64, GeometryError> {
    let n = body.dim();
    if n == 0 {
        return Ok(1.0);
    }
    let outer_r = body.ball_radius().unwrap_or(1.0);
    let (center, r0) = body.interior_point()?;

    // Fast path: direct rejection sampling from the bounding ball. For
    // bodies that are not a tiny fraction of the ball this is unbiased
    // and has better constants than annealing (whose per-phase errors
    // multiply). Fall through to annealing only when too few hits land
    // (the regime where rejection sampling loses its relative accuracy —
    // exactly the regime annealing is designed for).
    let direct_samples = opts.samples_per_phase * 4;
    let mut hits = 0usize;
    // One point buffer for the whole rejection loop: `_into` sampling
    // consumes the RNG identically to the allocating variant.
    let mut p = vec![0.0; n];
    for _ in 0..direct_samples {
        sample_unit_ball_into(rng, &mut p);
        scale_in_place(&mut p, outer_r);
        if body.contains(&p) {
            hits += 1;
        }
    }
    if hits >= 64 {
        return Ok(hits as f64 / direct_samples as f64);
    }

    // Schedule: r₀ < r₁ < … until B(x₀, r_m) ⊇ B(0, R) ⊇ K.
    let ratio = opts.ratio.unwrap_or(1.0 + 1.0 / n as f64);
    let center_norm = center.iter().map(|c| c * c).sum::<f64>().sqrt();
    let reach = outer_r + center_norm;
    let mut radii = vec![r0];
    let mut r = r0;
    while r < reach {
        r *= ratio;
        radii.push(r.min(reach));
    }

    // log Vol(K) estimate, built up phase by phase. Phase i samples
    // K ∩ B(x₀, rᵢ) and counts the fraction inside B(x₀, rᵢ₋₁).
    let mut log_volume = (radii[0].ln() * n as f64) + unit_ball_volume(n).ln();
    for w in radii.windows(2) {
        let (r_small, r_big) = (w[0], w[1]);
        let phase_body = body.with_extra_ball(center.clone(), r_big);
        let mut chain = HitAndRun::from_point(&phase_body, center.clone())?;
        let mut hits = 0usize;
        for _ in 0..opts.samples_per_phase {
            // Advance + borrow instead of `sample` — no per-sample clone.
            chain.advance(rng, opts.walk_steps);
            let p = chain.current();
            let d2: f64 = p.iter().zip(&center).map(|(a, b)| (a - b) * (a - b)).sum();
            if d2 <= r_small * r_small {
                hits += 1;
            }
        }
        // A zero count would blow up the product; clamp at one hit (the
        // schedule guarantees the true ratio is ≥ (1/ratio)^n ≈ 1/e).
        let ratio_est = hits.max(1) as f64 / opts.samples_per_phase as f64;
        log_volume -= ratio_est.ln();
    }

    let log_fraction = log_volume - unit_ball_volume(n).ln() - (outer_r.ln() * n as f64);
    Ok(log_fraction.exp().min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Halfspace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_ball_volumes_match_closed_forms() {
        assert!((unit_ball_volume(1) - 2.0).abs() < 1e-12);
        assert!((unit_ball_volume(2) - std::f64::consts::PI).abs() < 1e-12);
        assert!((unit_ball_volume(3) - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-12);
        // V4 = π²/2.
        assert!((unit_ball_volume(4) - std::f64::consts::PI.powi(2) / 2.0).abs() < 1e-12);
    }

    fn quadrant(dim: usize) -> ConvexBody {
        let halfspaces = (0..dim)
            .map(|j| {
                let mut n = vec![0.0; dim];
                n[j] = 1.0;
                Halfspace::new(n, 0.0)
            })
            .collect();
        ConvexBody::new(dim, halfspaces, Some(1.0))
    }

    #[test]
    fn quadrant_fraction_2d() {
        // The negative quadrant is exactly 1/4 of the disk.
        let mut rng = StdRng::seed_from_u64(21);
        let f =
            estimate_volume_fraction(&quadrant(2), &mut rng, &VolumeOptions::default()).unwrap();
        assert!((f - 0.25).abs() < 0.06, "fraction {f}");
    }

    #[test]
    fn octant_fraction_3d() {
        let mut rng = StdRng::seed_from_u64(22);
        let f =
            estimate_volume_fraction(&quadrant(3), &mut rng, &VolumeOptions::default()).unwrap();
        assert!((f - 0.125).abs() < 0.05, "fraction {f}");
    }

    #[test]
    fn halfspace_fraction_2d() {
        // {x ≤ 0} ∩ B²: exactly half the disk.
        let body = ConvexBody::new(2, vec![Halfspace::new(vec![1.0, 0.0], 0.0)], Some(1.0));
        let mut rng = StdRng::seed_from_u64(23);
        let f = estimate_volume_fraction(&body, &mut rng, &VolumeOptions::default()).unwrap();
        assert!((f - 0.5).abs() < 0.08, "fraction {f}");
    }

    #[test]
    fn thin_cone_small_fraction() {
        // {y ≤ 0, y ≥ 4x, y ≥ −4x} … rewritten as halfspaces
        // y ≤ 0, 4x − y ≤ 0 is wrong; the cone around −y axis with slope:
        // |x| ≤ −y/4 ⇔ 4x + y ≤ 0 and −4x + y ≤ 0.
        // Angle = 2·arctan(1/4) ⇒ fraction = arctan(0.25)/π ≈ 0.0780.
        let body = ConvexBody::new(
            2,
            vec![Halfspace::new(vec![4.0, 1.0], 0.0), Halfspace::new(vec![-4.0, 1.0], 0.0)],
            Some(1.0),
        );
        let mut rng = StdRng::seed_from_u64(24);
        let opts = VolumeOptions { samples_per_phase: 1500, ..VolumeOptions::default() };
        let f = estimate_volume_fraction(&body, &mut rng, &opts).unwrap();
        let expect = (0.25f64).atan() / std::f64::consts::PI;
        assert!((f - expect).abs() < 0.03, "fraction {f}, expected {expect}");
    }

    #[test]
    fn empty_interior_is_an_error() {
        let body = ConvexBody::new(
            2,
            vec![Halfspace::new(vec![1.0, 0.0], 0.0), Halfspace::new(vec![-1.0, 0.0], 0.0)],
            Some(1.0),
        );
        let mut rng = StdRng::seed_from_u64(25);
        assert!(matches!(
            estimate_volume_fraction(&body, &mut rng, &VolumeOptions::default()),
            Err(GeometryError::EmptyInterior)
        ));
    }

    #[test]
    fn zero_dim_is_one() {
        let body = ConvexBody::new(0, vec![], Some(1.0));
        let mut rng = StdRng::seed_from_u64(26);
        let f = estimate_volume_fraction(&body, &mut rng, &VolumeOptions::default()).unwrap();
        assert_eq!(f, 1.0);
    }

    #[test]
    fn whole_ball_is_one() {
        let body = ConvexBody::new(2, vec![], Some(1.0));
        let mut rng = StdRng::seed_from_u64(27);
        let f = estimate_volume_fraction(&body, &mut rng, &VolumeOptions::default()).unwrap();
        assert!(f > 0.9, "fraction {f}");
    }
}
