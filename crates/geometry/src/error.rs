use std::fmt;

/// Errors from the geometry layer.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// A body has empty interior (no strictly feasible point); volumes of
    /// such bodies are zero and samplers cannot run on them.
    EmptyInterior,
    /// Mismatched dimensions between a body and a point/direction.
    DimensionMismatch {
        /// Body dimension.
        expected: usize,
        /// Offending vector length.
        actual: usize,
    },
    /// The LP solver cycled or exceeded its iteration budget (numerically
    /// degenerate input).
    LpStalled,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::EmptyInterior => write!(f, "convex body has empty interior"),
            GeometryError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: body is {expected}-dimensional, vector has {actual}")
            }
            GeometryError::LpStalled => write!(f, "simplex exceeded its iteration budget"),
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(GeometryError::EmptyInterior.to_string().contains("empty interior"));
        let e = GeometryError::DimensionMismatch { expected: 3, actual: 2 };
        assert!(e.to_string().contains("3"));
    }
}
