//! Tiny dense-vector kernels. Everything operates on slices so callers
//! control allocation; these are the innermost loops of the samplers.

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Scales a vector in place.
pub fn scale_in_place(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// `out = p + t·d` (allocating helper for tests; hot paths write in
/// place).
#[allow(dead_code)]
pub fn axpy(p: &[f64], t: f64, d: &[f64]) -> Vec<f64> {
    p.iter().zip(d).map(|(a, b)| a + t * b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        let mut v = vec![1.0, -2.0];
        scale_in_place(&mut v, 2.0);
        assert_eq!(v, vec![2.0, -4.0]);
        assert_eq!(axpy(&[1.0, 1.0], 2.0, &[0.5, -0.5]), vec![2.0, 0.0]);
    }

    #[test]
    fn empty_vectors() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm(&[]), 0.0);
    }
}
