//! Tiny dense-vector kernels. Everything operates on slices so callers
//! control allocation; these are the innermost loops of the samplers.

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Scales a vector in place.
pub fn scale_in_place(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// Euclidean norm of the strided lane `a[offset], a[offset+stride], …`.
///
/// Bit-compatible with [`norm`] over the same values in the same order:
/// both reduce `Σ x·x` left to right from `0.0` before the `sqrt`.
/// `stride` must be nonzero.
pub fn norm_strided(a: &[f64], offset: usize, stride: usize) -> f64 {
    a.iter().skip(offset).step_by(stride).map(|x| x * x).sum::<f64>().sqrt()
}

/// Scales the strided lane `a[offset], a[offset+stride], …` in place.
/// `stride` must be nonzero.
pub fn scale_strided_in_place(a: &mut [f64], offset: usize, stride: usize, s: f64) {
    for x in a.iter_mut().skip(offset).step_by(stride) {
        *x *= s;
    }
}

/// `out = p + t·d` (allocating helper for tests; hot paths write in
/// place).
#[allow(dead_code)]
pub fn axpy(p: &[f64], t: f64, d: &[f64]) -> Vec<f64> {
    p.iter().zip(d).map(|(a, b)| a + t * b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        let mut v = vec![1.0, -2.0];
        scale_in_place(&mut v, 2.0);
        assert_eq!(v, vec![2.0, -4.0]);
        assert_eq!(axpy(&[1.0, 1.0], 2.0, &[0.5, -0.5]), vec![2.0, 0.0]);
    }

    #[test]
    fn empty_vectors() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn strided_lane_matches_contiguous() {
        // Lane j of a 3-row × 2-column block (column-per-direction SoA)
        // must reduce exactly like the contiguous vector of the same
        // values.
        let block = [1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        assert_eq!(norm_strided(&block, 0, 2).to_bits(), norm(&[1.0, 2.0, 3.0]).to_bits());
        assert_eq!(norm_strided(&block, 1, 2).to_bits(), norm(&[10.0, 20.0, 30.0]).to_bits());
        let mut scaled = block;
        scale_strided_in_place(&mut scaled, 1, 2, 0.5);
        assert_eq!(scaled, [1.0, 5.0, 2.0, 10.0, 3.0, 15.0]);
    }
}
