use rand::Rng;

use crate::body::ConvexBody;
use crate::error::GeometryError;
use crate::sampler::sample_unit_sphere_into;

/// Hit-and-run sampler over a [`ConvexBody`].
///
/// From the current point, pick a uniform direction, intersect the line
/// with the body (exact chord from halfspace/ball algebra), and jump to a
/// uniform point on the chord. The chain's stationary distribution is
/// uniform on the body; mixing is fast in practice for the well-rounded
/// cones the FPRAS produces (each is seeded at a Chebyshev-style center).
///
/// This implements the "individual sampling oracle" that the
/// Bringmann–Friedrich union estimator assumes for each body.
pub struct HitAndRun<'a> {
    body: &'a ConvexBody,
    current: Vec<f64>,
    /// Owned direction scratch: `step` fills it in place, so the chain
    /// allocates only at construction (the old per-step `Vec` was the
    /// dominant allocation of the FPRAS walk loops).
    dir: Vec<f64>,
}

impl<'a> HitAndRun<'a> {
    /// Starts a chain at the body's LP interior point.
    pub fn new(body: &'a ConvexBody) -> Result<Self, GeometryError> {
        let (start, _) = body.interior_point()?;
        let dir = vec![0.0; body.dim()];
        Ok(HitAndRun { body, current: start, dir })
    }

    /// Starts a chain at a given interior point.
    pub fn from_point(body: &'a ConvexBody, start: Vec<f64>) -> Result<Self, GeometryError> {
        if start.len() != body.dim() {
            return Err(GeometryError::DimensionMismatch {
                expected: body.dim(),
                actual: start.len(),
            });
        }
        if !body.contains(&start) {
            return Err(GeometryError::EmptyInterior);
        }
        let dir = vec![0.0; body.dim()];
        Ok(HitAndRun { body, current: start, dir })
    }

    /// The current chain state.
    pub fn current(&self) -> &[f64] {
        &self.current
    }

    /// One hit-and-run step.
    pub fn step(&mut self, rng: &mut impl Rng) {
        sample_unit_sphere_into(rng, &mut self.dir);
        if let Some((lo, hi)) = self.body.chord(&self.current, &self.dir) {
            let t = lo + (hi - lo) * rng.gen::<f64>();
            for (c, di) in self.current.iter_mut().zip(&self.dir) {
                *c += t * di;
            }
            // Numerical safety: fall back if the step left the body.
            if !self.body.contains(&self.current) {
                for (c, di) in self.current.iter_mut().zip(&self.dir) {
                    *c -= t * di;
                }
            }
        }
    }

    /// Runs `steps` steps without materializing a sample; read the
    /// state with [`HitAndRun::current`]. This is the allocation-free
    /// path the volume/union estimators use.
    pub fn advance(&mut self, rng: &mut impl Rng, steps: usize) {
        for _ in 0..steps {
            self.step(rng);
        }
    }

    /// Runs `burn_in` steps and returns a sample (clone of the state).
    pub fn sample(&mut self, rng: &mut impl Rng, burn_in: usize) -> Vec<f64> {
        self.advance(rng, burn_in);
        self.current.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Halfspace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn neg_quadrant() -> ConvexBody {
        ConvexBody::new(
            2,
            vec![Halfspace::new(vec![1.0, 0.0], 0.0), Halfspace::new(vec![0.0, 1.0], 0.0)],
            Some(1.0),
        )
    }

    #[test]
    fn chain_stays_inside() {
        let body = neg_quadrant();
        let mut rng = StdRng::seed_from_u64(11);
        let mut chain = HitAndRun::new(&body).unwrap();
        for _ in 0..2000 {
            chain.step(&mut rng);
            assert!(body.contains(chain.current()), "left the body at {:?}", chain.current());
        }
    }

    #[test]
    fn marginals_look_uniform() {
        // In the quadrant cone, by symmetry E[x] = E[y] and the fraction
        // with |p| ≤ 1/2 should approach (1/2)² = 1/4.
        let body = neg_quadrant();
        let mut rng = StdRng::seed_from_u64(12);
        let mut chain = HitAndRun::new(&body).unwrap();
        let mut inside_half = 0usize;
        let mut sx = 0.0;
        let mut sy = 0.0;
        let trials = 6000;
        for _ in 0..trials {
            let p = chain.sample(&mut rng, 8);
            if p[0] * p[0] + p[1] * p[1] <= 0.25 {
                inside_half += 1;
            }
            sx += p[0];
            sy += p[1];
        }
        let frac = inside_half as f64 / trials as f64;
        assert!((frac - 0.25).abs() < 0.05, "fraction {frac}");
        let (mx, my) = (sx / trials as f64, sy / trials as f64);
        assert!((mx - my).abs() < 0.05, "symmetry: {mx} vs {my}");
        assert!(mx < -0.2 && my < -0.2, "means in the interior: {mx}, {my}");
    }

    #[test]
    fn bad_start_rejected() {
        let body = neg_quadrant();
        assert!(HitAndRun::from_point(&body, vec![0.5, 0.5]).is_err());
        assert!(HitAndRun::from_point(&body, vec![0.5]).is_err());
        assert!(HitAndRun::from_point(&body, vec![-0.2, -0.2]).is_ok());
    }
}
