use rand::Rng;

use crate::body::ConvexBody;
use crate::error::GeometryError;
use crate::hitrun::HitAndRun;

/// One member of a union: a convex body with a (pre-estimated) volume.
///
/// Volumes may be in any consistent unit (the Theorem 7.1 pipeline uses
/// fractions of the unit ball); the union estimate comes back in the same
/// unit.
#[derive(Clone, Debug)]
pub struct UnionBody {
    /// The body.
    pub body: ConvexBody,
    /// Its (estimated) volume.
    pub volume: f64,
}

/// Estimates `Vol(K₁ ∪ … ∪ K_m)` with the multiplicity-weighted
/// Karp–Luby-style estimator of Bringmann–Friedrich (the paper's \[9\]):
///
/// 1. pick body `i` with probability `Vᵢ / ΣV`;
/// 2. draw `x` uniform in `Kᵢ` (hit-and-run);
/// 3. accumulate `1 / |{j : x ∈ K_j}|`.
///
/// Then `E[ΣV · acc/N] = Vol(∪ K_j)`: each point of the union is counted
/// once no matter how many bodies cover it. Relative error ε needs
/// `O(m/ε²)` samples — an FPRAS given per-body samplers and volumes,
/// which is exactly what Theorem 7.1 assumes.
pub fn estimate_union_fraction(
    bodies: &[UnionBody],
    rng: &mut impl Rng,
    samples: usize,
    walk_steps: usize,
) -> Result<f64, GeometryError> {
    if bodies.is_empty() {
        return Ok(0.0);
    }
    let total: f64 = bodies.iter().map(|b| b.volume).sum();
    if total <= 0.0 {
        return Ok(0.0);
    }
    // Persistent chains: restarting per sample would forfeit mixing.
    let mut chains: Vec<HitAndRun<'_>> =
        bodies.iter().map(|b| HitAndRun::new(&b.body)).collect::<Result<_, _>>()?;

    let mut acc = 0.0f64;
    for _ in 0..samples {
        // Select a body proportionally to volume.
        let mut pick = rng.gen::<f64>() * total;
        let mut idx = bodies.len() - 1;
        for (i, b) in bodies.iter().enumerate() {
            if pick < b.volume {
                idx = i;
                break;
            }
            pick -= b.volume;
        }
        // Advance + borrow instead of `sample` — no per-sample clone.
        chains[idx].advance(rng, walk_steps);
        let x = chains[idx].current();
        let multiplicity = bodies.iter().filter(|b| b.body.contains(x)).count();
        // The drawn body contains x by construction; defensive max(1).
        acc += 1.0 / multiplicity.max(1) as f64;
    }
    Ok(total * acc / samples as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::Halfspace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn halfplane(nx: f64, ny: f64) -> ConvexBody {
        ConvexBody::new(2, vec![Halfspace::new(vec![nx, ny], 0.0)], Some(1.0))
    }

    fn quadrant(sx: f64, sy: f64) -> ConvexBody {
        ConvexBody::new(
            2,
            vec![Halfspace::new(vec![sx, 0.0], 0.0), Halfspace::new(vec![0.0, sy], 0.0)],
            Some(1.0),
        )
    }

    #[test]
    fn overlapping_halfplanes() {
        // {x ≤ 0} ∪ {y ≤ 0} covers 3/4 of the disk.
        let bodies = vec![
            UnionBody { body: halfplane(1.0, 0.0), volume: 0.5 },
            UnionBody { body: halfplane(0.0, 1.0), volume: 0.5 },
        ];
        let mut rng = StdRng::seed_from_u64(31);
        let est = estimate_union_fraction(&bodies, &mut rng, 8000, 6).unwrap();
        assert!((est - 0.75).abs() < 0.04, "estimate {est}");
    }

    #[test]
    fn disjoint_quadrants_add_up() {
        // (−,−) and (+,+) quadrants are disjoint: union = 1/2.
        let bodies = vec![
            UnionBody { body: quadrant(1.0, 1.0), volume: 0.25 },
            UnionBody { body: quadrant(-1.0, -1.0), volume: 0.25 },
        ];
        let mut rng = StdRng::seed_from_u64(32);
        let est = estimate_union_fraction(&bodies, &mut rng, 6000, 6).unwrap();
        assert!((est - 0.5).abs() < 0.04, "estimate {est}");
    }

    #[test]
    fn identical_bodies_do_not_double_count() {
        let bodies = vec![
            UnionBody { body: quadrant(1.0, 1.0), volume: 0.25 },
            UnionBody { body: quadrant(1.0, 1.0), volume: 0.25 },
            UnionBody { body: quadrant(1.0, 1.0), volume: 0.25 },
        ];
        let mut rng = StdRng::seed_from_u64(33);
        let est = estimate_union_fraction(&bodies, &mut rng, 4000, 6).unwrap();
        assert!((est - 0.25).abs() < 0.03, "estimate {est}");
    }

    #[test]
    fn nested_bodies() {
        // Quadrant ⊂ halfplane: union = halfplane = 1/2.
        let bodies = vec![
            UnionBody { body: halfplane(1.0, 0.0), volume: 0.5 },
            UnionBody { body: quadrant(1.0, 1.0), volume: 0.25 },
        ];
        let mut rng = StdRng::seed_from_u64(34);
        let est = estimate_union_fraction(&bodies, &mut rng, 8000, 6).unwrap();
        assert!((est - 0.5).abs() < 0.04, "estimate {est}");
    }

    #[test]
    fn empty_input() {
        let mut rng = StdRng::seed_from_u64(35);
        assert_eq!(estimate_union_fraction(&[], &mut rng, 100, 4).unwrap(), 0.0);
    }
}
