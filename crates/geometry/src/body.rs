use crate::error::GeometryError;
use crate::lp::{maximize, LpOutcome};
use crate::vecmath::{dot, norm};

/// A closed halfspace `normal·x ≤ offset`.
///
/// Strictness is immaterial for volumes (boundaries are measure-zero), so
/// the body layer works with closed halfspaces; the symbolic layer decides
/// which inequalities are strict.
#[derive(Clone, Debug, PartialEq)]
pub struct Halfspace {
    /// Outward normal.
    pub normal: Vec<f64>,
    /// Right-hand side.
    pub offset: f64,
}

impl Halfspace {
    /// `normal·x ≤ offset`.
    pub fn new(normal: Vec<f64>, offset: f64) -> Halfspace {
        Halfspace { normal, offset }
    }

    /// Membership test.
    pub fn contains(&self, x: &[f64]) -> bool {
        dot(&self.normal, x) <= self.offset + 1e-12
    }
}

/// A closed ball constraint `|x − center| ≤ radius`.
#[derive(Clone, Debug, PartialEq)]
pub struct Ball {
    /// Center.
    pub center: Vec<f64>,
    /// Radius.
    pub radius: f64,
}

/// An intersection of halfspaces and balls:
/// `{x : Aᵢ·x ≤ bᵢ} ∩ ⋂_j B(c_j, r_j)`.
///
/// The FPRAS instantiates this with homogenized cones (`bᵢ = 0`)
/// intersected with the unit ball; the annealing volume estimator adds a
/// second, off-center schedule ball. Supports membership, exact
/// line-chord computation (for hit-and-run), and LP-based interior-point
/// search.
#[derive(Clone, Debug)]
pub struct ConvexBody {
    dim: usize,
    halfspaces: Vec<Halfspace>,
    balls: Vec<Ball>,
}

impl ConvexBody {
    /// A body from halfspaces, optionally intersected with the centered
    /// ball `B(0, radius)`.
    pub fn new(dim: usize, halfspaces: Vec<Halfspace>, ball_radius: Option<f64>) -> ConvexBody {
        for h in &halfspaces {
            assert_eq!(h.normal.len(), dim, "halfspace dimension mismatch");
        }
        let balls = ball_radius
            .map(|r| vec![Ball { center: vec![0.0; dim], radius: r }])
            .into_iter()
            .flatten()
            .collect();
        ConvexBody { dim, halfspaces, balls }
    }

    /// The ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The halfspaces.
    pub fn halfspaces(&self) -> &[Halfspace] {
        &self.halfspaces
    }

    /// The ball constraints.
    pub fn balls(&self) -> &[Ball] {
        &self.balls
    }

    /// The radius of the first (outer) ball, if any.
    pub fn ball_radius(&self) -> Option<f64> {
        self.balls.first().map(|b| b.radius)
    }

    /// A copy intersected with one more ball `B(center, radius)`.
    pub fn with_extra_ball(&self, center: Vec<f64>, radius: f64) -> ConvexBody {
        assert_eq!(center.len(), self.dim);
        let mut out = self.clone();
        out.balls.push(Ball { center, radius });
        out
    }

    /// Membership test.
    pub fn contains(&self, x: &[f64]) -> bool {
        debug_assert_eq!(x.len(), self.dim);
        for b in &self.balls {
            let d2: f64 = x.iter().zip(&b.center).map(|(a, c)| (a - c) * (a - c)).sum();
            if d2 > b.radius * b.radius + 1e-12 {
                return false;
            }
        }
        self.halfspaces.iter().all(|h| h.contains(x))
    }

    /// The chord `{t : p + t·d ∈ body}` for a point `p` inside the body
    /// and a direction `d` — the core primitive of hit-and-run.
    ///
    /// Returns `None` if the chord is empty or unbounded.
    pub fn chord(&self, p: &[f64], d: &[f64]) -> Option<(f64, f64)> {
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        for h in &self.halfspaces {
            let nd = dot(&h.normal, d);
            let np = dot(&h.normal, p);
            let slack = h.offset - np;
            if nd.abs() < 1e-14 {
                if slack < -1e-12 {
                    return None; // p outside this halfspace
                }
                continue;
            }
            let t = slack / nd;
            if nd > 0.0 {
                hi = hi.min(t);
            } else {
                lo = lo.max(t);
            }
        }
        for ball in &self.balls {
            // |p − c + t·d|² ≤ r²: quadratic in t.
            let rel: Vec<f64> = p.iter().zip(&ball.center).map(|(a, c)| a - c).collect();
            let a = dot(d, d);
            let b = 2.0 * dot(&rel, d);
            let c = dot(&rel, &rel) - ball.radius * ball.radius;
            if a < 1e-14 {
                if c > 1e-12 {
                    return None;
                }
                continue;
            }
            let disc = b * b - 4.0 * a * c;
            if disc <= 0.0 {
                return None;
            }
            let s = disc.sqrt();
            lo = lo.max((-b - s) / (2.0 * a));
            hi = hi.min((-b + s) / (2.0 * a));
        }
        (lo < hi && lo.is_finite() && hi.is_finite()).then_some((lo, hi))
    }

    /// A point strictly inside the body with maximal margin, via the
    /// Chebyshev-style LP
    ///
    /// `max t  s.t.  Aᵢ·x + ‖Aᵢ‖·t ≤ bᵢ,  ±(x − c_j)_k + t ≤ r_j/√n`,
    ///
    /// whose per-ball box constraints keep `B(x, t)` inside each ball
    /// constraint. Returns the center and margin, or
    /// `Err(EmptyInterior)` if no positive margin exists (the body is
    /// empty or lower-dimensional).
    pub fn interior_point(&self) -> Result<(Vec<f64>, f64), GeometryError> {
        let n = self.dim;
        if n == 0 {
            return Err(GeometryError::EmptyInterior);
        }
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut rhs: Vec<f64> = Vec::new();
        for h in &self.halfspaces {
            let mut row = h.normal.clone();
            row.push(norm(&h.normal));
            rows.push(row);
            rhs.push(h.offset);
        }
        for ball in &self.balls {
            let box_half = ball.radius / (n as f64).sqrt();
            for j in 0..n {
                let mut up = vec![0.0; n + 1];
                up[j] = 1.0;
                up[n] = 1.0;
                rows.push(up);
                rhs.push(ball.center[j] + box_half);
                let mut down = vec![0.0; n + 1];
                down[j] = -1.0;
                down[n] = 1.0;
                rows.push(down);
                rhs.push(box_half - ball.center[j]);
            }
        }
        if rows.is_empty() {
            // Unconstrained body: any point works; margin is nominal.
            return Ok((vec![0.0; n], 1.0));
        }
        let mut c = vec![0.0; n + 1];
        c[n] = 1.0;
        match maximize(&c, &rows, &rhs)? {
            LpOutcome::Optimal { x, value } if value > 1e-9 => Ok((x[..n].to_vec(), value)),
            LpOutcome::Optimal { .. } | LpOutcome::Infeasible => Err(GeometryError::EmptyInterior),
            LpOutcome::Unbounded => {
                // Only possible with no ball and an unbounded cone: pick
                // the feasible direction the LP was escaping along — the
                // caller always supplies a bounding ball in practice.
                Err(GeometryError::LpStalled)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The negative quadrant cone in 2D, inside the unit ball.
    fn neg_quadrant() -> ConvexBody {
        ConvexBody::new(
            2,
            vec![Halfspace::new(vec![1.0, 0.0], 0.0), Halfspace::new(vec![0.0, 1.0], 0.0)],
            Some(1.0),
        )
    }

    #[test]
    fn membership() {
        let k = neg_quadrant();
        assert!(k.contains(&[-0.1, -0.1]));
        assert!(k.contains(&[0.0, -0.5]));
        assert!(!k.contains(&[0.1, -0.1]));
        assert!(!k.contains(&[-0.9, -0.9])); // outside the unit ball
    }

    #[test]
    fn chord_against_halfspaces_and_ball() {
        let k = neg_quadrant();
        let p = [-0.2, -0.2];
        // Direction +x: chord ends at x = 0 (halfspace) on the right and
        // the ball on the left.
        let (lo, hi) = k.chord(&p, &[1.0, 0.0]).unwrap();
        assert!((hi - 0.2).abs() < 1e-9, "hi {hi}");
        let left_x = -(1.0f64 - 0.04).sqrt(); // ball: x² + 0.04 = 1
        assert!((p[0] + lo - left_x).abs() < 1e-9, "lo {lo}");
    }

    #[test]
    fn chord_none_when_outside() {
        let k = neg_quadrant();
        assert!(k.chord(&[0.5, 0.5], &[1.0, 0.0]).is_none());
    }

    #[test]
    fn chord_with_two_balls() {
        // Unit ball ∩ B((0.5, 0), 1): lens shape. Along the x-axis from
        // the origin: right end at 0.5+... min(1, 1.5)=1 from first ball;
        // second ball gives x ∈ [−0.5, 1.5] ⇒ chord [−0.5, 1].
        let k = ConvexBody::new(2, vec![], Some(1.0)).with_extra_ball(vec![0.5, 0.0], 1.0);
        let (lo, hi) = k.chord(&[0.0, 0.0], &[1.0, 0.0]).unwrap();
        assert!((lo + 0.5).abs() < 1e-9, "lo {lo}");
        assert!((hi - 1.0).abs() < 1e-9, "hi {hi}");
        assert!(k.contains(&[0.9, 0.0]));
        assert!(!k.contains(&[-0.6, 0.0]));
    }

    #[test]
    fn chord_parallel_direction() {
        // Direction parallel to a face: only the other constraints bite.
        let k = neg_quadrant();
        let chord = k.chord(&[-0.3, -0.3], &[0.0, 1.0]).unwrap();
        assert!((chord.1 - 0.3).abs() < 1e-9);
    }

    #[test]
    fn interior_point_is_interior() {
        let k = neg_quadrant();
        let (x, margin) = k.interior_point().unwrap();
        assert!(margin > 0.1, "margin {margin}");
        assert!(k.contains(&x));
        assert!(x[0] < -0.05 && x[1] < -0.05, "strictly inside: {x:?}");
    }

    #[test]
    fn empty_body_detected() {
        // {x ≤ −1} ∩ {−x ≤ −1} = ∅ (x ≤ −1 and x ≥ 1).
        let k = ConvexBody::new(
            1,
            vec![Halfspace::new(vec![1.0], -1.0), Halfspace::new(vec![-1.0], -1.0)],
            Some(2.0),
        );
        assert!(matches!(k.interior_point(), Err(GeometryError::EmptyInterior)));
    }

    #[test]
    fn lower_dimensional_body_detected() {
        // {x ≤ 0} ∩ {−x ≤ 0} = the hyperplane x = 0: no interior.
        let k = ConvexBody::new(
            2,
            vec![Halfspace::new(vec![1.0, 0.0], 0.0), Halfspace::new(vec![-1.0, 0.0], 0.0)],
            Some(1.0),
        );
        assert!(matches!(k.interior_point(), Err(GeometryError::EmptyInterior)));
    }

    #[test]
    fn extra_ball_shrinks_body() {
        let k = neg_quadrant().with_extra_ball(vec![-0.5, -0.5], 0.2);
        assert!(k.contains(&[-0.5, -0.4]));
        assert!(!k.contains(&[-0.1, -0.1]));
        let (x, _) = k.interior_point().unwrap();
        assert!(k.contains(&x));
    }
}
