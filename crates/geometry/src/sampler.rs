//! Uniform sampling on spheres and balls.
//!
//! The paper (§8, §9) samples directions uniformly from the unit
//! `n`-ball using "the standard technique of sampling n independent and
//! normally distributed random variables" and scaling — the method from
//! Blum–Hopcroft–Kannan's *Foundations of Data Science* (reference [8]).
//! We implement the Gaussian source with Box–Muller so the only
//! dependency is a uniform `Rng`.

use rand::Rng;

use crate::vecmath::{norm, norm_strided, scale_in_place, scale_strided_in_place};

/// One standard-normal variate via Box–Muller.
///
/// (The polar/Marsaglia variant would discard samples; the trigonometric
/// form keeps the RNG stream aligned, which makes seeded runs easier to
/// reason about.)
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Guard against ln(0): move u1 into (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fills `out` with a point uniform on the unit sphere `S^{n−1}` where
/// `n = out.len()` (each coordinate Gaussian, then normalized).
///
/// Allocation-free twin of [`sample_unit_sphere`]: it consumes the RNG
/// in exactly the same order (coordinates first, retry on a
/// numerically-zero vector), so seeded streams — and therefore every
/// checked-in certainty digest — are bit-identical whichever entry
/// point a caller uses.
pub fn sample_unit_sphere_into(rng: &mut impl Rng, out: &mut [f64]) {
    if out.is_empty() {
        return;
    }
    loop {
        for x in out.iter_mut() {
            *x = standard_normal(rng);
        }
        let len = norm(out);
        // Astronomically unlikely, but a zero vector has no direction.
        if len > 1e-12 {
            scale_in_place(out, 1.0 / len);
            return;
        }
    }
}

/// A point uniform on the unit sphere `S^{n−1}` (each coordinate Gaussian,
/// then normalized). For `n = 0` returns the empty vector.
pub fn sample_unit_sphere(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    sample_unit_sphere_into(rng, &mut v);
    v
}

/// Fills `out` with a point uniform in the unit ball `B^n` where
/// `n = out.len()`. Allocation-free twin of [`sample_unit_ball`] with the
/// identical RNG consumption order.
pub fn sample_unit_ball_into(rng: &mut impl Rng, out: &mut [f64]) {
    if out.is_empty() {
        return;
    }
    let n = out.len();
    sample_unit_sphere_into(rng, out);
    let r: f64 = rng.gen::<f64>().powf(1.0 / n as f64);
    scale_in_place(out, r);
}

/// A point uniform in the unit ball `B^n` (sphere direction scaled by
/// `U^{1/n}`).
pub fn sample_unit_ball(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    sample_unit_ball_into(rng, &mut v);
    v
}

/// Fills a structure-of-arrays block with `count` unit-sphere directions
/// of dimension `rows`.
///
/// Layout: `out[c * count + j]` is coordinate `c` of direction `j`, so
/// each *coordinate* occupies a contiguous `count`-wide row — the layout
/// the blocked `CompiledFormula` evaluator in `qarith-constraints`
/// consumes with unit-stride lane loops. `out.len()` must equal
/// `rows * count`.
///
/// **Bit-pinning invariant:** the RNG is consumed direction-by-direction,
/// and within a direction coordinate-by-coordinate (with the same
/// zero-vector retry rule), exactly as `count` successive
/// [`sample_unit_sphere`] calls would consume it. Memory layout is
/// independent of draw *order*, so writing column `j` with stride
/// `count` instead of into a contiguous `Vec` changes no bit of any
/// seeded stream. The per-direction norm and scale reduce the strided
/// lane left to right, matching [`norm`]/[`scale_in_place`] bit for bit.
pub fn fill_unit_sphere_block(rng: &mut impl Rng, rows: usize, count: usize, out: &mut [f64]) {
    assert_eq!(out.len(), rows * count, "SoA block shape mismatch");
    if rows == 0 || count == 0 {
        return;
    }
    for j in 0..count {
        loop {
            for slot in out.iter_mut().skip(j).step_by(count) {
                *slot = standard_normal(rng);
            }
            let len = norm_strided(out, j, count);
            if len > 1e-12 {
                scale_strided_in_place(out, j, count, 1.0 / len);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn sphere_points_have_unit_norm() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1, 2, 5, 17] {
            for _ in 0..50 {
                let v = sample_unit_sphere(&mut rng, n);
                assert_eq!(v.len(), n);
                assert!((norm(&v) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sphere_is_sign_symmetric() {
        // Each coordinate positive about half the time.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 4;
        let trials = 4000;
        let mut positives = vec![0usize; n];
        for _ in 0..trials {
            let v = sample_unit_sphere(&mut rng, n);
            for (i, x) in v.iter().enumerate() {
                if *x > 0.0 {
                    positives[i] += 1;
                }
            }
        }
        for p in positives {
            let frac = p as f64 / trials as f64;
            assert!((frac - 0.5).abs() < 0.05, "fraction {frac}");
        }
    }

    #[test]
    fn ball_points_inside_and_fill_radius() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 3;
        let trials = 4000;
        let mut inside_half = 0usize;
        for _ in 0..trials {
            let v = sample_unit_ball(&mut rng, n);
            let r = norm(&v);
            assert!(r <= 1.0 + 1e-9);
            if r <= 0.5 {
                inside_half += 1;
            }
        }
        // P(|x| ≤ 1/2) = (1/2)³ = 1/8.
        let frac = inside_half as f64 / trials as f64;
        assert!((frac - 0.125).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn zero_dimensional_cases() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample_unit_sphere(&mut rng, 0).is_empty());
        assert!(sample_unit_ball(&mut rng, 0).is_empty());
    }

    #[test]
    fn into_variants_are_bit_identical_to_allocating_ones() {
        for n in [1usize, 2, 5, 17] {
            let mut a = StdRng::seed_from_u64(99 + n as u64);
            let mut b = StdRng::seed_from_u64(99 + n as u64);
            let mut buf = vec![0.0; n];
            for _ in 0..25 {
                let v = sample_unit_sphere(&mut a, n);
                sample_unit_sphere_into(&mut b, &mut buf);
                for (x, y) in v.iter().zip(&buf) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                let w = sample_unit_ball(&mut a, n);
                sample_unit_ball_into(&mut b, &mut buf);
                for (x, y) in w.iter().zip(&buf) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn block_fill_is_bit_identical_to_sequential_draws() {
        for (rows, count) in [(1usize, 1usize), (3, 4), (5, 7), (2, 64)] {
            let seed = 1000 + (rows * 31 + count) as u64;
            let mut scalar = StdRng::seed_from_u64(seed);
            let mut block_rng = StdRng::seed_from_u64(seed);
            let mut block = vec![0.0; rows * count];
            fill_unit_sphere_block(&mut block_rng, rows, count, &mut block);
            for j in 0..count {
                let v = sample_unit_sphere(&mut scalar, rows);
                for (c, x) in v.iter().enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        block[c * count + j].to_bits(),
                        "rows={rows} count={count} dir={j} coord={c}"
                    );
                }
            }
            // Both RNGs must also be left in the same state: the next
            // draw agrees.
            assert_eq!(
                scalar.gen::<u64>(),
                block_rng.gen::<u64>(),
                "RNG stream desynchronized at rows={rows} count={count}"
            );
        }
    }

    #[test]
    fn block_fill_degenerate_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut empty: Vec<f64> = Vec::new();
        fill_unit_sphere_block(&mut rng, 0, 7, &mut empty);
        fill_unit_sphere_block(&mut rng, 7, 0, &mut empty);
        // Zero-row/zero-count fills consume no randomness.
        let mut twin = StdRng::seed_from_u64(5);
        assert_eq!(rng.gen::<u64>(), twin.gen::<u64>());
    }
}
