//! Uniform sampling on spheres and balls.
//!
//! The paper (§8, §9) samples directions uniformly from the unit
//! `n`-ball using "the standard technique of sampling n independent and
//! normally distributed random variables" and scaling — the method from
//! Blum–Hopcroft–Kannan's *Foundations of Data Science* (reference [8]).
//! We implement the Gaussian source with Box–Muller so the only
//! dependency is a uniform `Rng`.

use rand::Rng;

use crate::vecmath::{norm, scale_in_place};

/// One standard-normal variate via Box–Muller.
///
/// (The polar/Marsaglia variant would discard samples; the trigonometric
/// form keeps the RNG stream aligned, which makes seeded runs easier to
/// reason about.)
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Guard against ln(0): move u1 into (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A point uniform on the unit sphere `S^{n−1}` (each coordinate Gaussian,
/// then normalized). For `n = 0` returns the empty vector.
pub fn sample_unit_sphere(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    loop {
        let mut v: Vec<f64> = (0..n).map(|_| standard_normal(rng)).collect();
        let len = norm(&v);
        // Astronomically unlikely, but a zero vector has no direction.
        if len > 1e-12 {
            scale_in_place(&mut v, 1.0 / len);
            return v;
        }
    }
}

/// A point uniform in the unit ball `B^n` (sphere direction scaled by
/// `U^{1/n}`).
pub fn sample_unit_ball(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let mut v = sample_unit_sphere(rng, n);
    let r: f64 = rng.gen::<f64>().powf(1.0 / n as f64);
    scale_in_place(&mut v, r);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn sphere_points_have_unit_norm() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1, 2, 5, 17] {
            for _ in 0..50 {
                let v = sample_unit_sphere(&mut rng, n);
                assert_eq!(v.len(), n);
                assert!((norm(&v) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sphere_is_sign_symmetric() {
        // Each coordinate positive about half the time.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 4;
        let trials = 4000;
        let mut positives = vec![0usize; n];
        for _ in 0..trials {
            let v = sample_unit_sphere(&mut rng, n);
            for (i, x) in v.iter().enumerate() {
                if *x > 0.0 {
                    positives[i] += 1;
                }
            }
        }
        for p in positives {
            let frac = p as f64 / trials as f64;
            assert!((frac - 0.5).abs() < 0.05, "fraction {frac}");
        }
    }

    #[test]
    fn ball_points_inside_and_fill_radius() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 3;
        let trials = 4000;
        let mut inside_half = 0usize;
        for _ in 0..trials {
            let v = sample_unit_ball(&mut rng, n);
            let r = norm(&v);
            assert!(r <= 1.0 + 1e-9);
            if r <= 0.5 {
                inside_half += 1;
            }
        }
        // P(|x| ≤ 1/2) = (1/2)³ = 1/8.
        let frac = inside_half as f64 / trials as f64;
        assert!((frac - 0.125).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn zero_dimensional_cases() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample_unit_sphere(&mut rng, 0).is_empty());
        assert!(sample_unit_ball(&mut rng, 0).is_empty());
    }
}
