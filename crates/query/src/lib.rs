//! The query language FO(+,·,<) of §3 and its fragments.
//!
//! Layering: above `qarith-types`, below `qarith-sql` (which lowers
//! SQL onto this AST) and `qarith-engine` (which evaluates/grounds
//! it).
//!
//! Queries are two-sorted first-order formulas: variables are typed
//! ([`Sort::Base`](qarith_types::Sort::Base) or
//! [`Sort::Num`](qarith_types::Sort::Num)); numerical terms are built from
//! variables, rational constants, `+`, `−`, `·`; atomic formulas are
//! relation atoms `R(t̄)`, base equalities `x = y`, and numerical
//! comparisons `t ⋈ t′`; formulas close under `∧, ∨, ¬, ∃, ∀`.
//!
//! Quantifiers range over the *active domain* of the (completed) database,
//! as in the paper's semantics ("a witness is found among elements of
//! `C_base(D)` / `C_num(D)`").
//!
//! The crate provides:
//!
//! * [`NumTerm`], [`BaseTerm`], [`CompareOp`] — terms and comparisons;
//! * [`Formula`], [`TypedVar`] — formulas with scope analysis;
//! * [`Query`] — a formula plus declared free variables, validated against
//!   a [`Catalog`](qarith_types::Catalog);
//! * [`Fragment`], [`ArithLevel`] — the classifier that drives algorithm
//!   selection (CQ(+,<) gets the multiplicative FPRAS of Theorem 7.1,
//!   everything else the additive scheme of Theorem 8.1, arithmetic-free
//!   generic queries the zero-one law of §2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod formula;
mod fragment;
mod query;
mod term;

pub use error::QueryError;
pub use formula::{Arg, Formula, TypedVar};
pub use fragment::{ArithLevel, Fragment};
pub use query::Query;
pub use term::{BaseTerm, CompareOp, Ident, NumTerm};
