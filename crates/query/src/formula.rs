use std::fmt;
use std::sync::Arc;

use qarith_types::Sort;

use crate::term::{BaseTerm, CompareOp, Ident, NumTerm};

/// A sorted variable binding, as used by quantifiers and query heads.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TypedVar {
    /// Variable name.
    pub name: Ident,
    /// Variable sort.
    pub sort: Sort,
}

impl TypedVar {
    /// A base-sorted variable.
    pub fn base(name: &str) -> TypedVar {
        TypedVar { name: Arc::from(name), sort: Sort::Base }
    }

    /// A numerical variable.
    pub fn num(name: &str) -> TypedVar {
        TypedVar { name: Arc::from(name), sort: Sort::Num }
    }
}

impl fmt::Display for TypedVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.sort)
    }
}

impl fmt::Debug for TypedVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An argument of a relation atom: a term of the column's sort.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Arg {
    /// A base-sort argument.
    Base(BaseTerm),
    /// A numerical argument (arbitrary term, per the paper's grammar).
    Num(NumTerm),
}

impl Arg {
    /// The sort this argument occupies.
    pub fn sort(&self) -> Sort {
        match self {
            Arg::Base(_) => Sort::Base,
            Arg::Num(_) => Sort::Num,
        }
    }
}

impl fmt::Display for Arg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arg::Base(t) => write!(f, "{t}"),
            Arg::Num(t) => write!(f, "{t}"),
        }
    }
}

impl fmt::Debug for Arg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A formula of FO(+,·,<) (§3 grammar).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The true formula (convenience; not in the paper's grammar but
    /// definable).
    True,
    /// The false formula.
    False,
    /// A relation atom `R(t̄)`.
    Rel {
        /// Relation name.
        relation: Ident,
        /// Arguments, one per column.
        args: Vec<Arg>,
    },
    /// Base-sort equality `s = t` (or disequality via negation).
    BaseEq(BaseTerm, BaseTerm),
    /// Numerical comparison `t ⋈ t′`.
    Cmp(NumTerm, CompareOp, NumTerm),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Existential quantification over typed variables.
    Exists(Vec<TypedVar>, Box<Formula>),
    /// Universal quantification over typed variables.
    Forall(Vec<TypedVar>, Box<Formula>),
}

impl Formula {
    /// Relation atom.
    pub fn rel(relation: &str, args: Vec<Arg>) -> Formula {
        Formula::Rel { relation: Arc::from(relation), args }
    }

    /// Numerical comparison.
    pub fn cmp(lhs: NumTerm, op: CompareOp, rhs: NumTerm) -> Formula {
        Formula::Cmp(lhs, op, rhs)
    }

    /// Base equality.
    pub fn base_eq(lhs: BaseTerm, rhs: BaseTerm) -> Formula {
        Formula::BaseEq(lhs, rhs)
    }

    /// Conjunction (no folding; the engine normalizes).
    pub fn and(parts: Vec<Formula>) -> Formula {
        match parts.len() {
            0 => Formula::True,
            1 => parts.into_iter().next().unwrap(),
            _ => Formula::And(parts),
        }
    }

    /// Disjunction.
    pub fn or(parts: Vec<Formula>) -> Formula {
        match parts.len() {
            0 => Formula::False,
            1 => parts.into_iter().next().unwrap(),
            _ => Formula::Or(parts),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Existential quantification.
    pub fn exists(vars: Vec<TypedVar>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Exists(vars, Box::new(body))
        }
    }

    /// Universal quantification.
    pub fn forall(vars: Vec<TypedVar>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Forall(vars, Box::new(body))
        }
    }

    /// Material implication `antecedent → consequent`.
    pub fn implies(antecedent: Formula, consequent: Formula) -> Formula {
        Formula::or(vec![Formula::not(antecedent), consequent])
    }

    /// Visits every variable occurrence with the sort demanded by its
    /// position. Binders are *not* tracked here — see
    /// [`Query::new`](crate::Query::new) for scope-aware analysis.
    pub fn visit_var_uses(&self, f: &mut impl FnMut(&Ident, Sort)) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Rel { args, .. } => {
                for a in args {
                    match a {
                        Arg::Base(BaseTerm::Var(x)) => f(x, Sort::Base),
                        Arg::Base(BaseTerm::Const(_)) => {}
                        Arg::Num(t) => t.visit_vars(&mut |x| f(x, Sort::Num)),
                    }
                }
            }
            Formula::BaseEq(l, r) => {
                for t in [l, r] {
                    if let BaseTerm::Var(x) = t {
                        f(x, Sort::Base);
                    }
                }
            }
            Formula::Cmp(l, _, r) => {
                l.visit_vars(&mut |x| f(x, Sort::Num));
                r.visit_vars(&mut |x| f(x, Sort::Num));
            }
            Formula::Not(inner) => inner.visit_var_uses(f),
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts {
                    p.visit_var_uses(f);
                }
            }
            Formula::Exists(_, body) | Formula::Forall(_, body) => body.visit_var_uses(f),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Formula::True
            | Formula::False
            | Formula::Rel { .. }
            | Formula::BaseEq(..)
            | Formula::Cmp(..) => 1,
            Formula::Not(inner) => 1 + inner.size(),
            Formula::And(parts) | Formula::Or(parts) => {
                1 + parts.iter().map(Formula::size).sum::<usize>()
            }
            Formula::Exists(_, body) | Formula::Forall(_, body) => 1 + body.size(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Rel { relation, args } => {
                write!(f, "{relation}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Formula::BaseEq(l, r) => write!(f, "{l} = {r}"),
            Formula::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
            Formula::Not(inner) => write!(f, "¬{inner}"),
            Formula::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(vars, body) => {
                write!(f, "∃")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, " {body}")
            }
            Formula::Forall(vars, body) => {
                write!(f, "∀")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, " {body}")
            }
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_collapse_trivial_cases() {
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        let a = Formula::cmp(NumTerm::var("x"), CompareOp::Lt, NumTerm::int(0));
        assert_eq!(Formula::and(vec![a.clone()]), a);
        assert_eq!(Formula::exists(vec![], a.clone()), a);
    }

    #[test]
    fn var_use_visiting() {
        // R(x, p·q) ∧ y = z  uses x:base, p,q:num, y,z:base.
        let f = Formula::and(vec![
            Formula::rel(
                "R",
                vec![
                    Arg::Base(BaseTerm::var("x")),
                    Arg::Num(NumTerm::var("p").mul(NumTerm::var("q"))),
                ],
            ),
            Formula::base_eq(BaseTerm::var("y"), BaseTerm::var("z")),
        ]);
        let mut uses = Vec::new();
        f.visit_var_uses(&mut |x, s| uses.push((x.to_string(), s)));
        assert_eq!(
            uses,
            vec![
                ("x".to_string(), Sort::Base),
                ("p".to_string(), Sort::Num),
                ("q".to_string(), Sort::Num),
                ("y".to_string(), Sort::Base),
                ("z".to_string(), Sort::Base),
            ]
        );
    }

    #[test]
    fn display_round_trip_visual() {
        let f = Formula::forall(
            vec![TypedVar::num("p")],
            Formula::implies(
                Formula::rel("C", vec![Arg::Num(NumTerm::var("p"))]),
                Formula::cmp(NumTerm::var("p"), CompareOp::Ge, NumTerm::int(0)),
            ),
        );
        assert_eq!(f.to_string(), "∀p:num (¬C(p) ∨ p >= 0)");
    }

    #[test]
    fn size_counts_nodes() {
        let a = Formula::cmp(NumTerm::var("x"), CompareOp::Lt, NumTerm::int(0));
        let f = Formula::exists(vec![TypedVar::num("x")], Formula::and(vec![a.clone(), a]));
        assert_eq!(f.size(), 4);
    }
}
