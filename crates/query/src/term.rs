use std::fmt;
use std::sync::Arc;

use qarith_numeric::Rational;
use qarith_types::BaseValue;

/// Variable names. `Arc<str>` so formulas clone cheaply during grounding.
pub type Ident = Arc<str>;

/// A term of the base sort: a variable or a constant.
///
/// (The paper's grammar only puts base *variables* in relation atoms;
/// allowing constants as well is a conservative convenience — a constant
/// argument abbreviates `∃x (x = c ∧ …)`.)
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum BaseTerm {
    /// A base-sort variable.
    Var(Ident),
    /// A base-sort constant.
    Const(BaseValue),
}

impl BaseTerm {
    /// Variable constructor.
    pub fn var(name: &str) -> BaseTerm {
        BaseTerm::Var(Arc::from(name))
    }

    /// String-constant constructor.
    pub fn str(s: &str) -> BaseTerm {
        BaseTerm::Const(BaseValue::str(s))
    }

    /// Integer-constant constructor.
    pub fn int(n: i64) -> BaseTerm {
        BaseTerm::Const(BaseValue::Int(n))
    }
}

impl fmt::Display for BaseTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseTerm::Var(x) => write!(f, "{x}"),
            BaseTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Debug for BaseTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A term of the numerical sort: variables, rational constants, and the
/// ring operations of the paper's grammar (`+`, `·`; `−` is definable and
/// provided directly).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum NumTerm {
    /// A numerical variable.
    Var(Ident),
    /// A rational constant (`Cnum` element).
    Const(Rational),
    /// `t + t′`
    Add(Box<NumTerm>, Box<NumTerm>),
    /// `t − t′`
    Sub(Box<NumTerm>, Box<NumTerm>),
    /// `t · t′`
    Mul(Box<NumTerm>, Box<NumTerm>),
    /// `−t`
    Neg(Box<NumTerm>),
}

impl NumTerm {
    /// Variable constructor.
    pub fn var(name: &str) -> NumTerm {
        NumTerm::Var(Arc::from(name))
    }

    /// Integer-constant constructor.
    pub fn int(n: i64) -> NumTerm {
        NumTerm::Const(Rational::from_int(n))
    }

    /// Decimal-constant constructor.
    ///
    /// # Panics
    ///
    /// Panics on malformed literals; intended for inline query authoring.
    pub fn decimal(s: &str) -> NumTerm {
        NumTerm::Const(Rational::parse_decimal(s).expect("valid decimal literal"))
    }

    /// `self + rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: NumTerm) -> NumTerm {
        NumTerm::Add(Box::new(self), Box::new(rhs))
    }

    /// `self − rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: NumTerm) -> NumTerm {
        NumTerm::Sub(Box::new(self), Box::new(rhs))
    }

    /// `self · rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: NumTerm) -> NumTerm {
        NumTerm::Mul(Box::new(self), Box::new(rhs))
    }

    /// `−self`
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> NumTerm {
        NumTerm::Neg(Box::new(self))
    }

    /// Upper bound on the polynomial degree of the term in its variables
    /// (exact when no cancellation occurs). Drives fragment
    /// classification: degree ≤ 1 terms stay in the `+`-only fragment.
    pub fn degree_bound(&self) -> u32 {
        match self {
            NumTerm::Var(_) => 1,
            NumTerm::Const(_) => 0,
            NumTerm::Add(a, b) | NumTerm::Sub(a, b) => a.degree_bound().max(b.degree_bound()),
            NumTerm::Mul(a, b) => a.degree_bound() + b.degree_bound(),
            NumTerm::Neg(a) => a.degree_bound(),
        }
    }

    /// `true` iff the term is a bare variable or constant — the shape
    /// allowed in the order-only fragments FO(<) / CQ(<).
    pub fn is_atomic(&self) -> bool {
        matches!(self, NumTerm::Var(_) | NumTerm::Const(_))
    }

    /// Visits every variable occurrence.
    pub fn visit_vars(&self, f: &mut impl FnMut(&Ident)) {
        match self {
            NumTerm::Var(x) => f(x),
            NumTerm::Const(_) => {}
            NumTerm::Add(a, b) | NumTerm::Sub(a, b) | NumTerm::Mul(a, b) => {
                a.visit_vars(f);
                b.visit_vars(f);
            }
            NumTerm::Neg(a) => a.visit_vars(f),
        }
    }
}

impl fmt::Display for NumTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumTerm::Var(x) => write!(f, "{x}"),
            NumTerm::Const(c) => write!(f, "{c}"),
            NumTerm::Add(a, b) => write!(f, "({a} + {b})"),
            NumTerm::Sub(a, b) => write!(f, "({a} - {b})"),
            NumTerm::Mul(a, b) => write!(f, "({a} * {b})"),
            NumTerm::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

impl fmt::Debug for NumTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Comparison operators between numerical terms. (`=` and `≠` are also
/// usable on the base sort via [`Formula::BaseEq`](crate::Formula).)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CompareOp {
    /// strictly less
    Lt,
    /// less or equal
    Le,
    /// equal
    Eq,
    /// not equal
    Ne,
    /// strictly greater
    Gt,
    /// greater or equal
    Ge,
}

impl CompareOp {
    /// Evaluates the comparison on ordered values.
    pub fn holds<T: PartialOrd>(self, lhs: &T, rhs: &T) -> bool {
        match self {
            CompareOp::Lt => lhs < rhs,
            CompareOp::Le => lhs <= rhs,
            CompareOp::Eq => lhs == rhs,
            CompareOp::Ne => lhs != rhs,
            CompareOp::Gt => lhs > rhs,
            CompareOp::Ge => lhs >= rhs,
        }
    }

    /// Logical complement.
    pub fn negated(self) -> CompareOp {
        match self {
            CompareOp::Lt => CompareOp::Ge,
            CompareOp::Le => CompareOp::Gt,
            CompareOp::Eq => CompareOp::Ne,
            CompareOp::Ne => CompareOp::Eq,
            CompareOp::Gt => CompareOp::Le,
            CompareOp::Ge => CompareOp::Lt,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_bounds() {
        let x = NumTerm::var("x");
        let y = NumTerm::var("y");
        assert_eq!(NumTerm::int(5).degree_bound(), 0);
        assert_eq!(x.clone().degree_bound(), 1);
        assert_eq!(x.clone().add(y.clone()).degree_bound(), 1);
        assert_eq!(x.clone().mul(y.clone()).degree_bound(), 2);
        assert_eq!(x.clone().mul(NumTerm::int(3)).degree_bound(), 1);
        assert_eq!(x.clone().mul(y.clone()).mul(x.clone()).degree_bound(), 3);
        assert_eq!(x.clone().sub(y).neg().degree_bound(), 1);
        assert!(x.is_atomic());
        assert!(!x.clone().add(NumTerm::int(1)).is_atomic());
    }

    #[test]
    fn visit_vars_collects_occurrences() {
        let t = NumTerm::var("x").mul(NumTerm::var("y")).add(NumTerm::var("x"));
        let mut seen = Vec::new();
        t.visit_vars(&mut |v| seen.push(v.to_string()));
        assert_eq!(seen, vec!["x", "y", "x"]);
    }

    #[test]
    fn compare_ops() {
        assert!(CompareOp::Lt.holds(&1, &2));
        assert!(!CompareOp::Lt.holds(&2, &2));
        assert!(CompareOp::Le.holds(&2, &2));
        assert!(CompareOp::Ne.holds(&1, &2));
        for op in [
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            for (a, b) in [(1, 2), (2, 1), (2, 2)] {
                assert_eq!(op.holds(&a, &b), !op.negated().holds(&a, &b));
            }
        }
    }

    #[test]
    fn display() {
        let t = NumTerm::var("r").mul(NumTerm::var("d")).sub(NumTerm::decimal("0.5"));
        assert_eq!(t.to_string(), "((r * d) - 1/2)");
        assert_eq!(BaseTerm::var("s").to_string(), "s");
        assert_eq!(BaseTerm::str("seg").to_string(), "\"seg\"");
        assert_eq!(CompareOp::Ne.to_string(), "<>");
    }
}
