use std::collections::HashMap;
use std::fmt;

use qarith_types::{Catalog, Sort};

use crate::error::QueryError;
use crate::formula::{Arg, Formula, TypedVar};
use crate::fragment::Fragment;
use crate::term::{BaseTerm, Ident, NumTerm};

/// A validated query: a head of declared free variables and an FO(+,·,<)
/// body, checked against a catalog.
///
/// Validation enforces: every relation atom matches its schema (name,
/// arity, per-column sorts); every variable occurrence is in scope and at
/// the sort of its binding; quantifiers never shadow. The query's
/// [`Fragment`] is computed once at construction.
#[derive(Clone)]
pub struct Query {
    free: Vec<TypedVar>,
    body: Formula,
    fragment: Fragment,
}

impl Query {
    /// Validates and builds a query.
    pub fn new(free: Vec<TypedVar>, body: Formula, catalog: &Catalog) -> Result<Query, QueryError> {
        let mut scope: HashMap<Ident, Sort> = HashMap::new();
        for v in &free {
            if scope.insert(v.name.clone(), v.sort).is_some() {
                return Err(QueryError::DuplicateBinding { var: v.name.to_string() });
            }
        }
        Self::check(&body, catalog, &mut scope)?;
        let fragment = Fragment::classify(&body);
        Ok(Query { free, body, fragment })
    }

    /// A Boolean (closed) query.
    pub fn boolean(body: Formula, catalog: &Catalog) -> Result<Query, QueryError> {
        Query::new(Vec::new(), body, catalog)
    }

    /// The declared free variables (the query head).
    pub fn free_vars(&self) -> &[TypedVar] {
        &self.free
    }

    /// The body formula.
    pub fn body(&self) -> &Formula {
        &self.body
    }

    /// The syntactic fragment (drives algorithm selection).
    pub fn fragment(&self) -> Fragment {
        self.fragment
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.free.len()
    }

    /// `true` iff the query has no free variables.
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    fn check(
        f: &Formula,
        catalog: &Catalog,
        scope: &mut HashMap<Ident, Sort>,
    ) -> Result<(), QueryError> {
        match f {
            Formula::True | Formula::False => Ok(()),
            Formula::Rel { relation, args } => {
                let schema = catalog.get(relation).ok_or_else(|| QueryError::UnknownRelation {
                    relation: relation.to_string(),
                })?;
                if args.len() != schema.arity() {
                    return Err(QueryError::ArityMismatch {
                        relation: relation.to_string(),
                        expected: schema.arity(),
                        actual: args.len(),
                    });
                }
                for (i, arg) in args.iter().enumerate() {
                    let expected = schema.sort_of(i);
                    if arg.sort() != expected {
                        return Err(QueryError::ArgSortMismatch {
                            relation: relation.to_string(),
                            column: i,
                            expected,
                            actual: arg.sort(),
                        });
                    }
                    match arg {
                        Arg::Base(t) => Self::check_base_term(t, scope)?,
                        Arg::Num(t) => Self::check_num_term(t, scope)?,
                    }
                }
                Ok(())
            }
            Formula::BaseEq(l, r) => {
                Self::check_base_term(l, scope)?;
                Self::check_base_term(r, scope)
            }
            Formula::Cmp(l, _, r) => {
                Self::check_num_term(l, scope)?;
                Self::check_num_term(r, scope)
            }
            Formula::Not(inner) => Self::check(inner, catalog, scope),
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts {
                    Self::check(p, catalog, scope)?;
                }
                Ok(())
            }
            Formula::Exists(vars, body) | Formula::Forall(vars, body) => {
                for v in vars {
                    if scope.insert(v.name.clone(), v.sort).is_some() {
                        return Err(QueryError::DuplicateBinding { var: v.name.to_string() });
                    }
                }
                let result = Self::check(body, catalog, scope);
                for v in vars {
                    scope.remove(&v.name);
                }
                result
            }
        }
    }

    fn check_base_term(t: &BaseTerm, scope: &HashMap<Ident, Sort>) -> Result<(), QueryError> {
        if let BaseTerm::Var(x) = t {
            Self::check_var(x, Sort::Base, scope)?;
        }
        Ok(())
    }

    fn check_num_term(t: &NumTerm, scope: &HashMap<Ident, Sort>) -> Result<(), QueryError> {
        let mut err = None;
        t.visit_vars(&mut |x| {
            if err.is_none() {
                err = Self::check_var(x, Sort::Num, scope).err();
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn check_var(x: &Ident, used: Sort, scope: &HashMap<Ident, Sort>) -> Result<(), QueryError> {
        match scope.get(x) {
            None => Err(QueryError::UnboundVariable { var: x.to_string() }),
            Some(&bound) if bound != used => {
                Err(QueryError::SortConflict { var: x.to_string(), bound, used })
            }
            Some(_) => Ok(()),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, v) in self.free.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") = {}", self.body)
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::CompareOp;
    use qarith_types::{Column, RelationSchema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add(
            RelationSchema::new("R", vec![Column::base("a"), Column::num("x"), Column::num("y")])
                .unwrap(),
        )
        .unwrap();
        cat
    }

    fn rel_axy() -> Formula {
        Formula::rel(
            "R",
            vec![
                Arg::Base(BaseTerm::var("a")),
                Arg::Num(NumTerm::var("x")),
                Arg::Num(NumTerm::var("y")),
            ],
        )
    }

    #[test]
    fn valid_query() {
        let q = Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(
                vec![TypedVar::num("x"), TypedVar::num("y")],
                Formula::and(vec![
                    rel_axy(),
                    Formula::cmp(NumTerm::var("x"), CompareOp::Lt, NumTerm::var("y")),
                ]),
            ),
            &catalog(),
        )
        .unwrap();
        assert_eq!(q.arity(), 1);
        assert!(!q.is_boolean());
        assert!(q.fragment().conjunctive);
    }

    #[test]
    fn unknown_relation() {
        let e = Query::boolean(Formula::rel("S", vec![]), &catalog());
        assert!(matches!(e, Err(QueryError::UnknownRelation { .. })));
    }

    #[test]
    fn arity_mismatch() {
        let e = Query::boolean(
            Formula::exists(
                vec![TypedVar::base("a")],
                Formula::rel("R", vec![Arg::Base(BaseTerm::var("a"))]),
            ),
            &catalog(),
        );
        assert!(matches!(e, Err(QueryError::ArityMismatch { expected: 3, actual: 1, .. })));
    }

    #[test]
    fn arg_sort_mismatch() {
        let e = Query::boolean(
            Formula::exists(
                vec![TypedVar::base("a"), TypedVar::base("b"), TypedVar::num("y")],
                Formula::rel(
                    "R",
                    vec![
                        Arg::Base(BaseTerm::var("a")),
                        Arg::Base(BaseTerm::var("b")), // column 1 is num
                        Arg::Num(NumTerm::var("y")),
                    ],
                ),
            ),
            &catalog(),
        );
        assert!(matches!(e, Err(QueryError::ArgSortMismatch { column: 1, .. })));
    }

    #[test]
    fn unbound_variable() {
        let e = Query::boolean(
            Formula::cmp(NumTerm::var("x"), CompareOp::Lt, NumTerm::int(0)),
            &catalog(),
        );
        assert!(matches!(e, Err(QueryError::UnboundVariable { .. })));
    }

    #[test]
    fn sort_conflict() {
        // x bound as base, used as num.
        let e = Query::new(
            vec![TypedVar::base("x")],
            Formula::cmp(NumTerm::var("x"), CompareOp::Lt, NumTerm::int(0)),
            &catalog(),
        );
        assert!(matches!(e, Err(QueryError::SortConflict { .. })));
    }

    #[test]
    fn shadowing_rejected() {
        let e = Query::new(
            vec![TypedVar::num("x")],
            Formula::exists(
                vec![TypedVar::num("x")],
                Formula::cmp(NumTerm::var("x"), CompareOp::Lt, NumTerm::int(0)),
            ),
            &catalog(),
        );
        assert!(matches!(e, Err(QueryError::DuplicateBinding { .. })));
    }

    #[test]
    fn scope_is_restored_after_quantifier() {
        // ∃x (x<0) ∧ x<0 — the second x is unbound.
        let e = Query::boolean(
            Formula::and(vec![
                Formula::exists(
                    vec![TypedVar::num("x")],
                    Formula::cmp(NumTerm::var("x"), CompareOp::Lt, NumTerm::int(0)),
                ),
                Formula::cmp(NumTerm::var("x"), CompareOp::Lt, NumTerm::int(0)),
            ]),
            &catalog(),
        );
        assert!(matches!(e, Err(QueryError::UnboundVariable { .. })));
    }

    #[test]
    fn display() {
        let q = Query::new(
            vec![TypedVar::base("a")],
            Formula::exists(vec![TypedVar::num("x"), TypedVar::num("y")], rel_axy()),
            &catalog(),
        )
        .unwrap();
        assert_eq!(q.to_string(), "q(a:base) = ∃x:num,y:num R(a, x, y)");
    }
}
