use std::fmt;

use crate::formula::{Arg, Formula};

/// How much arithmetic a query uses, ordered by expressiveness.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ArithLevel {
    /// No numerical comparisons and no arithmetic — the classical
    /// single-domain setting where the zero-one law of §2 applies.
    None,
    /// Order comparisons between bare variables/constants only — the
    /// `(<)` fragments.
    Order,
    /// Linear arithmetic (`+`, and `·` by constants) — the `(+,<)`
    /// fragments, eligible for the Theorem 7.1 FPRAS when conjunctive.
    Linear,
    /// Full polynomial arithmetic — the `(+,·,<)` fragments.
    Poly,
}

/// The syntactic fragment of a query: conjunctive or full FO, crossed with
/// an [`ArithLevel`]. Determines which measure algorithm applies:
///
/// | fragment | algorithm |
/// |---|---|
/// | generic (no arithmetic) | zero-one law, naive evaluation (§2) |
/// | CQ(+,<) | multiplicative FPRAS (Theorem 7.1) |
/// | anything in FO(+,·,<) | additive AFPRAS (Theorem 8.1) |
///
/// (Theorem 6.3 rules out a multiplicative FPRAS beyond the conjunctive
/// case, and Proposition 6.2 rules out exact computation in general.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fragment {
    /// `true` iff the query is in the ∃,∧-fragment (conjunctive queries).
    pub conjunctive: bool,
    /// The arithmetic level used.
    pub arith: ArithLevel,
}

impl Fragment {
    /// Classifies a formula.
    pub fn classify(f: &Formula) -> Fragment {
        let mut frag = Fragment { conjunctive: true, arith: ArithLevel::None };
        Self::walk(f, &mut frag);
        frag
    }

    fn bump(frag: &mut Fragment, level: ArithLevel) {
        if level > frag.arith {
            frag.arith = level;
        }
    }

    fn walk(f: &Formula, frag: &mut Fragment) {
        match f {
            Formula::True | Formula::False | Formula::BaseEq(..) => {}
            Formula::Rel { args, .. } => {
                for a in args {
                    if let Arg::Num(t) = a {
                        if !t.is_atomic() {
                            let lvl = if t.degree_bound() <= 1 {
                                ArithLevel::Linear
                            } else {
                                ArithLevel::Poly
                            };
                            Self::bump(frag, lvl);
                        }
                    }
                }
            }
            Formula::Cmp(l, _, r) => {
                let lvl = if l.is_atomic() && r.is_atomic() {
                    ArithLevel::Order
                } else if l.degree_bound() <= 1 && r.degree_bound() <= 1 {
                    ArithLevel::Linear
                } else {
                    ArithLevel::Poly
                };
                Self::bump(frag, lvl);
            }
            Formula::Not(inner) => {
                frag.conjunctive = false;
                Self::walk(inner, frag);
            }
            Formula::Or(parts) => {
                frag.conjunctive = false;
                for p in parts {
                    Self::walk(p, frag);
                }
            }
            Formula::And(parts) => {
                for p in parts {
                    Self::walk(p, frag);
                }
            }
            Formula::Exists(_, body) => Self::walk(body, frag),
            Formula::Forall(_, body) => {
                frag.conjunctive = false;
                Self::walk(body, frag);
            }
        }
    }

    /// `true` iff this fragment admits the Theorem 7.1 multiplicative
    /// FPRAS (conjunctive with at most linear arithmetic).
    pub fn has_fpras(&self) -> bool {
        self.conjunctive && self.arith <= ArithLevel::Linear
    }

    /// `true` iff the zero-one law of §2 applies (no interpreted
    /// numerical operations at all).
    pub fn is_generic(&self) -> bool {
        self.arith == ArithLevel::None
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head = if self.conjunctive { "CQ" } else { "FO" };
        let ops = match self.arith {
            ArithLevel::None => "",
            ArithLevel::Order => "<",
            ArithLevel::Linear => "+,<",
            ArithLevel::Poly => "+,*,<",
        };
        write!(f, "{head}({ops})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::TypedVar;
    use crate::term::{BaseTerm, CompareOp, NumTerm};

    fn x() -> NumTerm {
        NumTerm::var("x")
    }

    #[test]
    fn pure_cq_is_generic() {
        let f = Formula::exists(
            vec![TypedVar::base("a")],
            Formula::rel("R", vec![crate::formula::Arg::Base(BaseTerm::var("a"))]),
        );
        let frag = Fragment::classify(&f);
        assert!(frag.conjunctive);
        assert_eq!(frag.arith, ArithLevel::None);
        assert!(frag.is_generic());
        assert_eq!(frag.to_string(), "CQ()");
    }

    #[test]
    fn order_fragment() {
        let f = Formula::cmp(x(), CompareOp::Lt, NumTerm::int(5));
        let frag = Fragment::classify(&f);
        assert_eq!(frag.arith, ArithLevel::Order);
        assert!(frag.has_fpras());
        assert_eq!(frag.to_string(), "CQ(<)");
    }

    #[test]
    fn linear_fragment() {
        let f = Formula::cmp(x().add(NumTerm::var("y")), CompareOp::Le, NumTerm::int(1));
        assert_eq!(Fragment::classify(&f).arith, ArithLevel::Linear);
        // Multiplication by a constant stays linear.
        let f = Formula::cmp(x().mul(NumTerm::decimal("0.7")), CompareOp::Le, NumTerm::int(1));
        assert_eq!(Fragment::classify(&f).arith, ArithLevel::Linear);
    }

    #[test]
    fn poly_fragment() {
        let f = Formula::cmp(x().mul(NumTerm::var("y")), CompareOp::Le, NumTerm::int(1));
        let frag = Fragment::classify(&f);
        assert_eq!(frag.arith, ArithLevel::Poly);
        assert!(!frag.has_fpras());
        assert_eq!(frag.to_string(), "CQ(+,*,<)");
    }

    #[test]
    fn connectives_break_conjunctivity() {
        let atom = Formula::cmp(x(), CompareOp::Lt, NumTerm::int(0));
        for f in [
            Formula::not(atom.clone()),
            Formula::or(vec![atom.clone(), atom.clone()]),
            Formula::forall(vec![TypedVar::num("x")], atom.clone()),
        ] {
            let frag = Fragment::classify(&f);
            assert!(!frag.conjunctive, "{f}");
            assert!(!frag.has_fpras());
        }
        // ∃ and ∧ do not.
        let f = Formula::exists(vec![TypedVar::num("x")], Formula::and(vec![atom.clone(), atom]));
        assert!(Fragment::classify(&f).conjunctive);
    }

    #[test]
    fn arithmetic_inside_relation_args_counts() {
        let f = Formula::rel("R", vec![crate::formula::Arg::Num(x().mul(NumTerm::var("y")))]);
        assert_eq!(Fragment::classify(&f).arith, ArithLevel::Poly);
    }

    #[test]
    fn display_full_fo() {
        let f = Formula::not(Formula::cmp(x().mul(x()), CompareOp::Gt, NumTerm::int(0)));
        assert_eq!(Fragment::classify(&f).to_string(), "FO(+,*,<)");
    }
}
