use std::fmt;

use qarith_types::Sort;

/// Query validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A relation atom refers to a relation the catalog does not know.
    UnknownRelation {
        /// The missing name.
        relation: String,
    },
    /// A relation atom has the wrong number of arguments.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments written.
        actual: usize,
    },
    /// An argument's sort does not match the column's declared sort.
    ArgSortMismatch {
        /// Relation name.
        relation: String,
        /// Column position (0-based).
        column: usize,
        /// Declared sort.
        expected: Sort,
        /// Sort of the argument term.
        actual: Sort,
    },
    /// A variable is used at a sort different from its binding.
    SortConflict {
        /// The variable.
        var: String,
        /// Sort at the binding site.
        bound: Sort,
        /// Sort demanded by the conflicting use.
        used: Sort,
    },
    /// A variable occurs without being bound by a quantifier or declared
    /// free.
    UnboundVariable {
        /// The variable.
        var: String,
    },
    /// A quantifier rebinds a name already in scope (shadowing is
    /// rejected to keep grounding unambiguous).
    DuplicateBinding {
        /// The rebound variable.
        var: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownRelation { relation } => {
                write!(f, "unknown relation {relation}")
            }
            QueryError::ArityMismatch { relation, expected, actual } => write!(
                f,
                "relation {relation} has {expected} columns but the atom has {actual} arguments"
            ),
            QueryError::ArgSortMismatch { relation, column, expected, actual } => {
                write!(f, "argument {column} of {relation} should be {expected} but is {actual}")
            }
            QueryError::SortConflict { var, bound, used } => {
                write!(f, "variable {var} is bound at sort {bound} but used at sort {used}")
            }
            QueryError::UnboundVariable { var } => write!(f, "unbound variable {var}"),
            QueryError::DuplicateBinding { var } => {
                write!(f, "variable {var} is already bound in this scope")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = QueryError::SortConflict { var: "x".into(), bound: Sort::Base, used: Sort::Num };
        assert!(e.to_string().contains("x"));
        assert!(e.to_string().contains("base"));
        assert!(e.to_string().contains("num"));
    }
}
