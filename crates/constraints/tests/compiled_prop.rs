//! Property tests for the asymptotic machinery: the compiled evaluator
//! must agree with the tree interpreter on random formulas and
//! directions, and both must agree with direct evaluation at large
//! scale factors.

use proptest::prelude::*;

use qarith_constraints::asymptotic::{eval_at_scaled, formula_limit_truth, CompiledFormula};
use qarith_constraints::{Atom, ConstraintOp, Monomial, Polynomial, QfFormula, Var};
use qarith_numeric::Rational;

fn rational() -> impl Strategy<Value = Rational> {
    (-20i128..=20, 1i128..=8).prop_map(|(n, d)| Rational::new(n, d))
}

fn polynomial() -> impl Strategy<Value = Polynomial> {
    prop::collection::vec((rational(), 0u32..3, 0u32..=2, 0u32..3, 0u32..=1), 0..4).prop_map(
        |terms| {
            let mut p = Polynomial::zero();
            for (c, v1, e1, v2, e2) in terms {
                p.add_term(Monomial::from_pairs([(Var(v1), e1), (Var(v2), e2)]), c).unwrap();
            }
            p
        },
    )
}

fn op() -> impl Strategy<Value = ConstraintOp> {
    prop_oneof![
        Just(ConstraintOp::Lt),
        Just(ConstraintOp::Le),
        Just(ConstraintOp::Eq),
        Just(ConstraintOp::Ne),
        Just(ConstraintOp::Gt),
        Just(ConstraintOp::Ge),
    ]
}

fn formula() -> impl Strategy<Value = QfFormula> {
    let leaf = (polynomial(), op()).prop_map(|(p, o)| QfFormula::atom(Atom::new(p, o)));
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(QfFormula::and),
            prop::collection::vec(inner.clone(), 1..3).prop_map(QfFormula::or),
            inner.prop_map(QfFormula::negated),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The compiled hot-path evaluator is equivalent to the interpreter.
    #[test]
    fn compiled_equals_interpreter(f in formula(), raw_dir in prop::collection::vec(-3.0f64..3.0, 3)) {
        let compiled = CompiledFormula::compile(&f);
        // The interpreter indexes directions by original Var id; the
        // compiled form densifies. Project accordingly.
        let dense_dir: Vec<f64> =
            compiled.vars().iter().map(|v| raw_dir[v.index()]).collect();
        let mut memo = compiled.new_memo();
        prop_assert_eq!(
            compiled.limit_truth(&dense_dir, &mut memo),
            formula_limit_truth(&f, &raw_dir),
            "formula {}", f
        );
    }

    /// Lemma 8.2/8.4: the computed limit matches evaluation at large k
    /// whenever two decades of k agree with each other.
    #[test]
    fn limit_matches_stable_large_k(f in formula(), raw_dir in prop::collection::vec(-2.0f64..2.0, 3)) {
        let a = eval_at_scaled(&f, &raw_dir, 1e7);
        let b = eval_at_scaled(&f, &raw_dir, 1e9);
        if a == b {
            prop_assert_eq!(formula_limit_truth(&f, &raw_dir), a, "formula {}", f);
        }
    }

    /// ae-simplification agrees with the original asymptotically, except
    /// on the null set where some equality's restriction vanishes —
    /// excluded by re-checking with a perturbed direction.
    #[test]
    fn ae_simplification_is_asymptotically_sound(
        f in formula(),
        raw_dir in prop::collection::vec(-2.0f64..2.0, 3),
    ) {
        // The deprecated shim is exercised deliberately: its frozen
        // behavior is what qarith_rewrite::ae_simplify must reproduce.
        #[allow(deprecated)]
        let g = f.ae_simplified();
        let orig = formula_limit_truth(&f, &raw_dir);
        let simp = formula_limit_truth(&g, &raw_dir);
        if orig != simp {
            // Must be caused by an equality atom holding along this
            // direction; perturbing the direction must break the tie.
            let perturbed: Vec<f64> = raw_dir
                .iter()
                .enumerate()
                .map(|(i, x)| x + 1e-3 * ((i + 1) as f64) * 0.7318)
                .collect();
            let orig_p = formula_limit_truth(&f, &perturbed);
            let simp_p = formula_limit_truth(&g, &perturbed);
            prop_assert_eq!(orig_p, simp_p, "perturbation should reconcile: {}", f);
        }
    }

    /// NNF and the compiled form preserve the variable set semantics:
    /// dedup never changes atom count upward.
    #[test]
    fn compilation_never_duplicates_atoms(f in formula()) {
        let compiled = CompiledFormula::compile(&f);
        prop_assert!(compiled.atom_count() <= f.nnf().atom_count());
    }
}
