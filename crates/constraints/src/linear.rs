use std::fmt;

use qarith_numeric::Rational;

use crate::var::Var;

/// An affine form `Σ cᵢ·zᵢ + c₀` over ℚ.
///
/// Extracted from degree-≤1 [`Polynomial`](crate::Polynomial)s. The
/// Theorem 7.1 FPRAS turns each CQ(+,<) disjunct into an intersection of
/// halfspaces `LinearExpr ⋈ 0`; [`LinearExpr::dense_coeffs`] exports the
/// coefficient vector in the dense `f64` layout the geometry crate expects.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LinearExpr {
    /// Sorted by variable, no zero coefficients.
    coeffs: Vec<(Var, Rational)>,
    constant: Rational,
}

impl LinearExpr {
    /// Builds an affine form; merges duplicate variables, drops zeros.
    pub fn new(coeffs: impl IntoIterator<Item = (Var, Rational)>, constant: Rational) -> Self {
        let mut v: Vec<(Var, Rational)> = Vec::new();
        for (var, c) in coeffs {
            v.push((var, c));
        }
        v.sort_by_key(|&(var, _)| var);
        let mut merged: Vec<(Var, Rational)> = Vec::with_capacity(v.len());
        for (var, c) in v {
            match merged.last_mut() {
                Some((last, acc)) if *last == var => *acc += c,
                _ => merged.push((var, c)),
            }
        }
        merged.retain(|(_, c)| !c.is_zero());
        LinearExpr { coeffs: merged, constant }
    }

    /// The constant (affine) term.
    pub fn constant(&self) -> Rational {
        self.constant
    }

    /// Coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: Var) -> Rational {
        self.coeffs
            .binary_search_by_key(&v, |&(var, _)| var)
            .map_or(Rational::ZERO, |i| self.coeffs[i].1)
    }

    /// The nonzero `(variable, coefficient)` pairs, sorted by variable.
    pub fn coeffs(&self) -> &[(Var, Rational)] {
        &self.coeffs
    }

    /// `true` iff the linear part is empty (the form is a constant).
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The homogeneous part (constant dropped) — `c·z̄ < c₀` becomes
    /// `c·z̄ < 0` in the FPRAS reduction.
    pub fn homogenized(&self) -> LinearExpr {
        LinearExpr { coeffs: self.coeffs.clone(), constant: Rational::ZERO }
    }

    /// Exports the coefficients as a dense `f64` vector of length `dim`
    /// using `index_of` to map variables to coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `index_of` maps a variable outside `0..dim`.
    pub fn dense_coeffs(&self, dim: usize, mut index_of: impl FnMut(Var) -> usize) -> Vec<f64> {
        let mut out = vec![0.0; dim];
        for &(v, c) in &self.coeffs {
            let i = index_of(v);
            assert!(i < dim, "variable {v} mapped out of range ({i} >= {dim})");
            out[i] += c.to_f64();
        }
        out
    }

    /// Evaluates at an `f64` point indexed by [`Var::index`].
    pub fn eval_f64(&self, point: &[f64]) -> f64 {
        let mut acc = self.constant.to_f64();
        for &(v, c) in &self.coeffs {
            acc += c.to_f64() * point[v.index()];
        }
        acc
    }
}

impl fmt::Display for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(v, c) in &self.coeffs {
            if first {
                if c.signum() < 0 {
                    write!(f, "-")?;
                }
                first = false;
            } else if c.signum() < 0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let mag = c.abs();
            if mag == Rational::ONE {
                write!(f, "{v}")?;
            } else {
                write!(f, "{mag}*{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if !self.constant.is_zero() {
            if self.constant.signum() < 0 {
                write!(f, " - {}", self.constant.abs())?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn merging_and_zero_dropping() {
        let e = LinearExpr::new(vec![(Var(1), r(2)), (Var(0), r(3)), (Var(1), r(-2))], r(5));
        assert_eq!(e.coeff(Var(0)), r(3));
        assert_eq!(e.coeff(Var(1)), r(0));
        assert_eq!(e.coeffs().len(), 1);
        assert_eq!(e.constant(), r(5));
    }

    #[test]
    fn homogenization_drops_constant() {
        let e = LinearExpr::new(vec![(Var(0), r(2))], r(7));
        let h = e.homogenized();
        assert_eq!(h.constant(), Rational::ZERO);
        assert_eq!(h.coeff(Var(0)), r(2));
    }

    #[test]
    fn dense_export() {
        let e = LinearExpr::new(vec![(Var(2), r(1)), (Var(5), r(-2))], r(0));
        let dense = e.dense_coeffs(3, |v| match v.0 {
            2 => 0,
            5 => 2,
            _ => panic!(),
        });
        assert_eq!(dense, vec![1.0, 0.0, -2.0]);
    }

    #[test]
    fn evaluation() {
        let e = LinearExpr::new(vec![(Var(0), r(2)), (Var(1), r(-1))], r(3));
        assert_eq!(e.eval_f64(&[1.0, 4.0]), 1.0);
        assert!(LinearExpr::new(vec![], r(4)).is_constant());
    }

    #[test]
    fn display() {
        let e = LinearExpr::new(vec![(Var(0), r(-1)), (Var(1), r(2))], r(-3));
        assert_eq!(e.to_string(), "-z0 + 2*z1 - 3");
        assert_eq!(LinearExpr::new(vec![], r(7)).to_string(), "7");
    }
}
