use std::fmt;

use qarith_numeric::{NumericError, Rational};

use crate::linear::LinearExpr;
use crate::polynomial::Polynomial;

/// Comparison operators against zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstraintOp {
    /// `p < 0`
    Lt,
    /// `p ≤ 0`
    Le,
    /// `p = 0`
    Eq,
    /// `p ≠ 0`
    Ne,
    /// `p > 0`
    Gt,
    /// `p ≥ 0`
    Ge,
}

impl ConstraintOp {
    /// Whether the comparison holds for a value with the given sign
    /// (`-1`, `0`, `1`).
    ///
    /// This single function also decides *asymptotic* truth (Lemma 8.4):
    /// along a direction, a univariate polynomial either diverges with the
    /// sign of its leading nonzero coefficient or is identically zero
    /// (sign 0) — in both cases the eventual truth of `p ⋈ 0` is
    /// `holds(sign)`.
    pub fn holds(self, sign: i32) -> bool {
        match self {
            ConstraintOp::Lt => sign < 0,
            ConstraintOp::Le => sign <= 0,
            ConstraintOp::Eq => sign == 0,
            ConstraintOp::Ne => sign != 0,
            ConstraintOp::Gt => sign > 0,
            ConstraintOp::Ge => sign >= 0,
        }
    }

    /// The complement operator: `¬(p ⋈ 0)` is `p ⋈′ 0`.
    pub fn negated(self) -> ConstraintOp {
        match self {
            ConstraintOp::Lt => ConstraintOp::Ge,
            ConstraintOp::Le => ConstraintOp::Gt,
            ConstraintOp::Eq => ConstraintOp::Ne,
            ConstraintOp::Ne => ConstraintOp::Eq,
            ConstraintOp::Gt => ConstraintOp::Le,
            ConstraintOp::Ge => ConstraintOp::Lt,
        }
    }

    /// The operator with both sides of the comparison flipped
    /// (`p ⋈ 0` ⇔ `-p flipped(⋈) 0`).
    pub fn flipped(self) -> ConstraintOp {
        match self {
            ConstraintOp::Lt => ConstraintOp::Gt,
            ConstraintOp::Le => ConstraintOp::Ge,
            ConstraintOp::Gt => ConstraintOp::Lt,
            ConstraintOp::Ge => ConstraintOp::Le,
            ConstraintOp::Eq => ConstraintOp::Eq,
            ConstraintOp::Ne => ConstraintOp::Ne,
        }
    }

    /// `true` for the operators that define topologically open sets
    /// (`<`, `>`, `≠`). Open atoms are what the FPRAS cone machinery
    /// expects; closed atoms differ from their open interiors by
    /// measure-zero sets.
    pub fn is_strict(self) -> bool {
        matches!(self, ConstraintOp::Lt | ConstraintOp::Gt | ConstraintOp::Ne)
    }
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintOp::Lt => "<",
            ConstraintOp::Le => "<=",
            ConstraintOp::Eq => "=",
            ConstraintOp::Ne => "!=",
            ConstraintOp::Gt => ">",
            ConstraintOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A polynomial constraint `p(z̄) ⋈ 0`.
///
/// The grounding translation normalizes every comparison `t ⋈ t′` between
/// numerical terms into this "polynomial versus zero" form (`t − t′ ⋈ 0`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    poly: Polynomial,
    op: ConstraintOp,
}

impl Atom {
    /// Creates the atom `poly ⋈ 0`.
    pub fn new(poly: Polynomial, op: ConstraintOp) -> Atom {
        Atom { poly, op }
    }

    /// The atom `lhs ⋈ rhs` as `lhs − rhs ⋈ 0`.
    pub fn compare(
        lhs: &Polynomial,
        op: ConstraintOp,
        rhs: &Polynomial,
    ) -> Result<Atom, NumericError> {
        Ok(Atom { poly: lhs.checked_sub(rhs)?, op })
    }

    /// The left-hand polynomial.
    pub fn poly(&self) -> &Polynomial {
        &self.poly
    }

    /// The comparison operator.
    pub fn op(&self) -> ConstraintOp {
        self.op
    }

    /// Logical negation (complement operator on the same polynomial).
    pub fn negated(&self) -> Atom {
        Atom { poly: self.poly.clone(), op: self.op.negated() }
    }

    /// If the polynomial is constant, the atom's truth value.
    pub fn as_constant(&self) -> Option<bool> {
        self.poly.as_constant().map(|c| self.op.holds(c.signum()))
    }

    /// Evaluates at an `f64` point indexed by
    /// [`Var::index`](crate::Var::index).
    pub fn eval_f64(&self, point: &[f64]) -> bool {
        let v = self.poly.eval_f64(point);
        self.op.holds(if v < 0.0 {
            -1
        } else if v > 0.0 {
            1
        } else {
            0
        })
    }

    /// Exact evaluation at a rational point.
    pub fn eval_rational(&self, point: &[Rational]) -> Result<bool, NumericError> {
        Ok(self.op.holds(self.poly.eval_rational(point)?.signum()))
    }

    /// If the atom is linear (degree ≤ 1), its affine form.
    pub fn as_linear(&self) -> Option<LinearExpr> {
        self.poly.as_linear()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} 0", self.poly, self.op)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Var;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    #[test]
    fn holds_truth_table() {
        use ConstraintOp::*;
        for (op, neg, zero, pos) in [
            (Lt, true, false, false),
            (Le, true, true, false),
            (Eq, false, true, false),
            (Ne, true, false, true),
            (Gt, false, false, true),
            (Ge, false, true, true),
        ] {
            assert_eq!(op.holds(-1), neg, "{op} at -1");
            assert_eq!(op.holds(0), zero, "{op} at 0");
            assert_eq!(op.holds(1), pos, "{op} at 1");
        }
    }

    #[test]
    fn negation_complements_everywhere() {
        use ConstraintOp::*;
        for op in [Lt, Le, Eq, Ne, Gt, Ge] {
            for sign in [-1, 0, 1] {
                assert_eq!(op.holds(sign), !op.negated().holds(sign));
            }
        }
    }

    #[test]
    fn flip_mirrors_sign() {
        use ConstraintOp::*;
        for op in [Lt, Le, Eq, Ne, Gt, Ge] {
            for sign in [-1, 0, 1] {
                assert_eq!(op.holds(sign), op.flipped().holds(-sign));
            }
        }
    }

    #[test]
    fn compare_normalizes_to_zero() {
        // z0 < z1  ⇝  z0 − z1 < 0
        let a = Atom::compare(&z(0), ConstraintOp::Lt, &z(1)).unwrap();
        assert!(a.eval_f64(&[1.0, 2.0]));
        assert!(!a.eval_f64(&[2.0, 1.0]));
        assert!(!a.eval_f64(&[1.0, 1.0]));
    }

    #[test]
    fn constant_atoms() {
        let t = Atom::new(Polynomial::constant(Rational::from_int(-1)), ConstraintOp::Lt);
        assert_eq!(t.as_constant(), Some(true));
        let f = Atom::new(Polynomial::zero(), ConstraintOp::Ne);
        assert_eq!(f.as_constant(), Some(false));
        let open = Atom::new(z(0), ConstraintOp::Lt);
        assert_eq!(open.as_constant(), None);
    }

    #[test]
    fn rational_eval_is_exact() {
        // 3·z0 − 1 = 0 at z0 = 1/3 — f64 would wobble, rationals do not.
        let p = Polynomial::constant(Rational::from_int(3)) * z(0) - Polynomial::one();
        let a = Atom::new(p, ConstraintOp::Eq);
        assert!(a.eval_rational(&[Rational::new(1, 3)]).unwrap());
        assert!(!a.eval_rational(&[Rational::new(1, 2)]).unwrap());
    }

    #[test]
    fn display() {
        let a = Atom::compare(&z(0), ConstraintOp::Le, &z(1)).unwrap();
        assert_eq!(a.to_string(), "z0 - z1 <= 0");
    }
}
