//! Polynomial constraint algebra over the reals.
//!
//! This crate implements the quantifier-free fragment of the first-order
//! theory of `⟨ℝ, +, ·, <⟩` that the grounding translation of
//! Console–Hofer–Libkin (PODS 2020, Proposition 5.3) produces: Boolean
//! combinations of polynomial (in)equalities `p(z̄) ⋈ 0` over variables
//! `z₁ … z_n` that stand for the numerical nulls of a database.
//!
//! Layering: above `qarith-numeric`, below `qarith-rewrite`,
//! `qarith-engine`, and `qarith-core` — every ground formula the
//! pipeline measures is built from this crate's types. Paper
//! touchpoints: Proposition 5.3 (the formulas), Lemmas 8.2–8.4 (the
//! asymptotic analysis).
//!
//! The centre-piece is the **asymptotic truth test** of Lemma 8.4: for a
//! direction `a ∈ ℝⁿ`, the truth value of `φ(k·a)` stabilises as `k → ∞`,
//! and the stable value is computable from the *leading homogeneous
//! components* of each atom. [`asymptotic::CompiledFormula`] packages a
//! formula into a form where that limit is evaluated in time linear in the
//! formula for each sampled direction — the hot path of the paper's
//! additive approximation scheme (Theorem 8.1).
//!
//! Contents:
//!
//! * [`Var`] — variable identifiers (`z_i`);
//! * [`Monomial`], [`Polynomial`] — exact multivariate polynomials over ℚ,
//!   canonically represented (so a polynomial is zero iff its term map is
//!   empty — a property the asymptotic analysis relies on);
//! * [`LinearExpr`] — affine forms, extracted from degree-≤1 polynomials
//!   for the Theorem 7.1 FPRAS (convex cones);
//! * [`Atom`], [`ConstraintOp`] — polynomial constraints `p ⋈ 0`;
//! * [`QfFormula`] — quantifier-free formulas with NNF/DNF conversion,
//!   simplification and evaluation;
//! * [`asymptotic`] — Lemma 8.2–8.4: direction-wise limits;
//! * [`canonical`] — canonical forms and interning: dense renumbering,
//!   scale-insensitive asymptotic keys, and the [`FormulaInterner`] table
//!   backing the batch measurement engine's ν-cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asymptotic;
mod atom;
pub mod canonical;
mod error;
mod formula;
mod linear;
mod monomial;
mod polynomial;
mod var;

pub use atom::{Atom, ConstraintOp};
pub use canonical::{Canonical, FormulaInterner, InternStats};
pub use error::FormulaError;
pub use formula::{Dnf, QfFormula};
pub use linear::LinearExpr;
pub use monomial::Monomial;
pub use polynomial::Polynomial;
pub use var::Var;
