use std::collections::BTreeSet;
use std::fmt;

use qarith_numeric::{NumericError, Rational};

use crate::atom::Atom;
use crate::error::FormulaError;
use crate::var::Var;

/// A quantifier-free formula over polynomial constraints.
///
/// This is the target language of the Proposition 5.3 grounding: Boolean
/// combinations of [`Atom`]s. The smart constructors ([`QfFormula::and`],
/// [`QfFormula::or`], [`QfFormula::negated`]) flatten nested connectives and
/// fold constants, so `True`/`False` leaves only survive at the root.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum QfFormula {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// A polynomial constraint.
    Atom(Atom),
    /// Negation.
    Not(Box<QfFormula>),
    /// Conjunction (flattened; always ≥ 2 conjuncts after construction).
    And(Vec<QfFormula>),
    /// Disjunction (flattened; always ≥ 2 disjuncts after construction).
    Or(Vec<QfFormula>),
}

impl QfFormula {
    /// An atom as a formula, folding constant atoms.
    pub fn atom(a: Atom) -> QfFormula {
        match a.as_constant() {
            Some(true) => QfFormula::True,
            Some(false) => QfFormula::False,
            None => QfFormula::Atom(a),
        }
    }

    /// Conjunction with flattening and constant folding.
    pub fn and(parts: impl IntoIterator<Item = QfFormula>) -> QfFormula {
        let mut out: Vec<QfFormula> = Vec::new();
        for p in parts {
            match p {
                QfFormula::True => {}
                QfFormula::False => return QfFormula::False,
                QfFormula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => QfFormula::True,
            1 => out.pop().unwrap(),
            _ => QfFormula::And(out),
        }
    }

    /// Disjunction with flattening and constant folding.
    pub fn or(parts: impl IntoIterator<Item = QfFormula>) -> QfFormula {
        let mut out: Vec<QfFormula> = Vec::new();
        for p in parts {
            match p {
                QfFormula::False => {}
                QfFormula::True => return QfFormula::True,
                QfFormula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => QfFormula::False,
            1 => out.pop().unwrap(),
            _ => QfFormula::Or(out),
        }
    }

    /// Negation with constant folding and double-negation elimination.
    pub fn negated(self) -> QfFormula {
        match self {
            QfFormula::True => QfFormula::False,
            QfFormula::False => QfFormula::True,
            QfFormula::Not(inner) => *inner,
            QfFormula::Atom(a) => QfFormula::Atom(a.negated()),
            other => QfFormula::Not(Box::new(other)),
        }
    }

    /// Number of AST nodes (used for size budgets and reporting).
    pub fn size(&self) -> usize {
        match self {
            QfFormula::True | QfFormula::False | QfFormula::Atom(_) => 1,
            QfFormula::Not(inner) => 1 + inner.size(),
            QfFormula::And(parts) | QfFormula::Or(parts) => {
                1 + parts.iter().map(QfFormula::size).sum::<usize>()
            }
        }
    }

    /// All variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.visit_atoms(&mut |a| out.extend(a.poly().vars()));
        out
    }

    /// Visits every atom.
    pub fn visit_atoms(&self, f: &mut impl FnMut(&Atom)) {
        match self {
            QfFormula::True | QfFormula::False => {}
            QfFormula::Atom(a) => f(a),
            QfFormula::Not(inner) => inner.visit_atoms(f),
            QfFormula::And(parts) | QfFormula::Or(parts) => {
                for p in parts {
                    p.visit_atoms(f);
                }
            }
        }
    }

    /// Number of atom occurrences.
    pub fn atom_count(&self) -> usize {
        let mut n = 0;
        self.visit_atoms(&mut |_| n += 1);
        n
    }

    /// Evaluates at an `f64` point indexed by [`Var::index`].
    pub fn eval_f64(&self, point: &[f64]) -> bool {
        match self {
            QfFormula::True => true,
            QfFormula::False => false,
            QfFormula::Atom(a) => a.eval_f64(point),
            QfFormula::Not(inner) => !inner.eval_f64(point),
            QfFormula::And(parts) => parts.iter().all(|p| p.eval_f64(point)),
            QfFormula::Or(parts) => parts.iter().any(|p| p.eval_f64(point)),
        }
    }

    /// Exact evaluation at a rational point.
    pub fn eval_rational(&self, point: &[Rational]) -> Result<bool, NumericError> {
        Ok(match self {
            QfFormula::True => true,
            QfFormula::False => false,
            QfFormula::Atom(a) => a.eval_rational(point)?,
            QfFormula::Not(inner) => !inner.eval_rational(point)?,
            QfFormula::And(parts) => {
                for p in parts {
                    if !p.eval_rational(point)? {
                        return Ok(false);
                    }
                }
                true
            }
            QfFormula::Or(parts) => {
                for p in parts {
                    if p.eval_rational(point)? {
                        return Ok(true);
                    }
                }
                false
            }
        })
    }

    /// Negation normal form: `Not` nodes are pushed onto atoms (which
    /// absorb them via [`Atom::negated`]). The result contains no `Not`.
    pub fn nnf(&self) -> QfFormula {
        fn go(f: &QfFormula, negate: bool) -> QfFormula {
            match f {
                QfFormula::True => {
                    if negate {
                        QfFormula::False
                    } else {
                        QfFormula::True
                    }
                }
                QfFormula::False => {
                    if negate {
                        QfFormula::True
                    } else {
                        QfFormula::False
                    }
                }
                QfFormula::Atom(a) => QfFormula::atom(if negate { a.negated() } else { a.clone() }),
                QfFormula::Not(inner) => go(inner, !negate),
                QfFormula::And(parts) => {
                    let mapped = parts.iter().map(|p| go(p, negate));
                    if negate {
                        QfFormula::or(mapped)
                    } else {
                        QfFormula::and(mapped)
                    }
                }
                QfFormula::Or(parts) => {
                    let mapped = parts.iter().map(|p| go(p, negate));
                    if negate {
                        QfFormula::and(mapped)
                    } else {
                        QfFormula::or(mapped)
                    }
                }
            }
        }
        go(self, false)
    }

    /// Almost-everywhere simplification with respect to the asymptotic
    /// direction measure `ν`.
    ///
    /// For a polynomial `p` that is not identically zero, the set of
    /// directions along which `p(k·a)` is eventually zero is a proper
    /// algebraic subset of the sphere — a null set. Hence replacing
    /// (after NNF) every remaining equality atom by `false` and every
    /// disequality atom by `true` preserves `ν(φ)` exactly, while often
    /// collapsing large parts of ground formulas (e.g. the measure-zero
    /// branches that active-domain expansion of quantifiers creates).
    /// The result is frequently lower-dimensional and linear, bringing it
    /// within reach of the exact evaluators.
    ///
    /// (Identically-zero equalities never survive to this point: the
    /// [`QfFormula::atom`] constructor folds constant atoms.)
    ///
    /// **Deprecated:** this pass is subsumed by the `qarith-rewrite`
    /// crate's pipeline (`qarith_rewrite::ae_simplify` reproduces it
    /// bit for bit; `qarith_rewrite::Rewriter` adds constant-sign
    /// folding, Boolean normalization, and independence decomposition
    /// on top). The body below is frozen so existing callers keep the
    /// exact historical behavior; new code should go through
    /// `qarith-rewrite`, which is the one live simplifier.
    #[deprecated(note = "use qarith_rewrite::ae_simplify (bit-identical) or \
                         qarith_rewrite::Rewriter for the full pass pipeline")]
    pub fn ae_simplified(&self) -> QfFormula {
        fn go(f: &QfFormula) -> QfFormula {
            match f {
                QfFormula::True => QfFormula::True,
                QfFormula::False => QfFormula::False,
                QfFormula::Atom(a) => match a.op() {
                    crate::atom::ConstraintOp::Eq => QfFormula::False,
                    crate::atom::ConstraintOp::Ne => QfFormula::True,
                    _ => QfFormula::Atom(a.clone()),
                },
                QfFormula::Not(_) => unreachable!("runs on NNF"),
                QfFormula::And(parts) => QfFormula::and(parts.iter().map(go)),
                QfFormula::Or(parts) => QfFormula::or(parts.iter().map(go)),
            }
        }
        go(&self.nnf())
    }

    /// Disjunctive normal form with a size budget.
    ///
    /// The budget bounds the number of *conjunctions* (disjuncts) ever
    /// materialized; exceeding it aborts with
    /// [`FormulaError::DnfBlowup`] so callers can fall back to the
    /// additive approximation scheme, which works on arbitrary shapes.
    pub fn dnf(&self, limit: usize) -> Result<Dnf, FormulaError> {
        fn go(f: &QfFormula, limit: usize) -> Result<Vec<Vec<Atom>>, FormulaError> {
            Ok(match f {
                QfFormula::True => vec![vec![]],
                QfFormula::False => vec![],
                QfFormula::Atom(a) => vec![vec![a.clone()]],
                QfFormula::Not(_) => unreachable!("dnf runs on NNF input"),
                QfFormula::Or(parts) => {
                    let mut out = Vec::new();
                    for p in parts {
                        out.extend(go(p, limit)?);
                        if out.len() > limit {
                            return Err(FormulaError::DnfBlowup { reached: out.len(), limit });
                        }
                    }
                    out
                }
                QfFormula::And(parts) => {
                    let mut acc: Vec<Vec<Atom>> = vec![vec![]];
                    for p in parts {
                        let rhs = go(p, limit)?;
                        let mut next = Vec::with_capacity(acc.len().saturating_mul(rhs.len()));
                        for a in &acc {
                            for b in &rhs {
                                let mut conj = a.clone();
                                conj.extend(b.iter().cloned());
                                next.push(conj);
                                if next.len() > limit {
                                    return Err(FormulaError::DnfBlowup {
                                        reached: next.len(),
                                        limit,
                                    });
                                }
                            }
                        }
                        acc = next;
                    }
                    acc
                }
            })
        }
        let disjuncts = go(&self.nnf(), limit)?;
        Ok(Dnf { disjuncts })
    }
}

impl fmt::Display for QfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QfFormula::True => write!(f, "true"),
            QfFormula::False => write!(f, "false"),
            QfFormula::Atom(a) => write!(f, "({a})"),
            QfFormula::Not(inner) => write!(f, "!{inner}"),
            QfFormula::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            QfFormula::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Debug for QfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A formula in disjunctive normal form: a disjunction of conjunctions of
/// atoms. An empty disjunction is `false`; an empty conjunction is `true`.
#[derive(Clone, PartialEq, Eq)]
pub struct Dnf {
    disjuncts: Vec<Vec<Atom>>,
}

impl Dnf {
    /// The disjuncts (each a conjunction of atoms).
    pub fn disjuncts(&self) -> &[Vec<Atom>] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// `true` iff the DNF is the constant `false`.
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// `true` iff every atom in every disjunct is linear (degree ≤ 1) —
    /// the prerequisite for the Theorem 7.1 convex-cone FPRAS.
    pub fn is_linear(&self) -> bool {
        self.disjuncts.iter().all(|conj| conj.iter().all(|a| a.poly().degree() <= 1))
    }

    /// Converts back to a tree-shaped formula.
    pub fn to_formula(&self) -> QfFormula {
        QfFormula::or(
            self.disjuncts
                .iter()
                .map(|conj| QfFormula::and(conj.iter().cloned().map(QfFormula::atom))),
        )
    }

    /// Evaluates at an `f64` point.
    pub fn eval_f64(&self, point: &[f64]) -> bool {
        self.disjuncts.iter().any(|conj| conj.iter().all(|a| a.eval_f64(point)))
    }
}

impl fmt::Debug for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dnf[{} disjuncts]", self.disjuncts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::ConstraintOp;
    use crate::polynomial::Polynomial;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn lt(p: Polynomial) -> QfFormula {
        QfFormula::atom(Atom::new(p, ConstraintOp::Lt))
    }

    fn gt(p: Polynomial) -> QfFormula {
        QfFormula::atom(Atom::new(p, ConstraintOp::Gt))
    }

    #[test]
    fn smart_constructors_fold_constants() {
        assert_eq!(QfFormula::and([QfFormula::True, QfFormula::True]), QfFormula::True);
        assert_eq!(QfFormula::and([QfFormula::True, QfFormula::False]), QfFormula::False);
        assert_eq!(QfFormula::or([QfFormula::False, QfFormula::False]), QfFormula::False);
        assert_eq!(QfFormula::or([QfFormula::False, QfFormula::True]), QfFormula::True);
        assert_eq!(QfFormula::and([] as [QfFormula; 0]), QfFormula::True);
        assert_eq!(QfFormula::or([] as [QfFormula; 0]), QfFormula::False);
        // Single-element connectives collapse.
        let a = lt(z(0));
        assert_eq!(QfFormula::and([a.clone()]), a);
        assert_eq!(QfFormula::or([a.clone()]), a);
    }

    #[test]
    fn flattening() {
        let a = lt(z(0));
        let b = lt(z(1));
        let c = lt(z(2));
        let nested = QfFormula::and([a.clone(), QfFormula::and([b.clone(), c.clone()])]);
        match nested {
            QfFormula::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened And, got {other}"),
        }
    }

    #[test]
    fn evaluation() {
        // (z0 < 0) | (z1 > 0 & z0 > 0)
        let f = QfFormula::or([lt(z(0)), QfFormula::and([gt(z(1)), gt(z(0))])]);
        assert!(f.eval_f64(&[-1.0, 0.0]));
        assert!(f.eval_f64(&[1.0, 1.0]));
        assert!(!f.eval_f64(&[1.0, -1.0]));
        assert!(!f.eval_f64(&[0.0, 5.0]));
    }

    #[test]
    fn nnf_eliminates_not_and_preserves_semantics() {
        let f = QfFormula::and([lt(z(0)), QfFormula::or([gt(z(1)), lt(z(2))])]).negated();
        let g = f.nnf();
        fn has_not(f: &QfFormula) -> bool {
            match f {
                QfFormula::Not(_) => true,
                QfFormula::And(ps) | QfFormula::Or(ps) => ps.iter().any(has_not),
                _ => false,
            }
        }
        assert!(!has_not(&g));
        for p in [
            [-1.0, 2.0, 3.0],
            [1.0, -2.0, 3.0],
            [-0.5, 0.5, -0.5],
            [0.0, 0.0, 0.0],
            [2.0, -1.0, -4.0],
        ] {
            assert_eq!(f.eval_f64(&p), g.eval_f64(&p), "at {p:?}");
        }
    }

    #[test]
    fn dnf_preserves_semantics() {
        let f = QfFormula::and([
            QfFormula::or([lt(z(0)), gt(z(1))]),
            QfFormula::or([lt(z(1)), gt(z(2))]),
        ]);
        let dnf = f.dnf(64).unwrap();
        assert_eq!(dnf.len(), 4);
        for p in [
            [-1.0, -1.0, -1.0],
            [1.0, 2.0, 3.0],
            [1.0, -1.0, 3.0],
            [-1.0, 2.0, -3.0],
            [0.0, 0.0, 0.0],
        ] {
            assert_eq!(f.eval_f64(&p), dnf.eval_f64(&p), "at {p:?}");
        }
    }

    #[test]
    fn dnf_budget_is_enforced() {
        // (a1|b1) & (a2|b2) & … & (a12|b12) has 2^12 = 4096 disjuncts.
        let f = QfFormula::and((0..12).map(|i| QfFormula::or([lt(z(2 * i)), gt(z(2 * i + 1))])));
        assert!(matches!(f.dnf(100), Err(FormulaError::DnfBlowup { .. })));
        assert_eq!(f.dnf(5000).unwrap().len(), 4096);
    }

    #[test]
    fn dnf_constants() {
        assert!(QfFormula::False.dnf(10).unwrap().is_empty());
        let t = QfFormula::True.dnf(10).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.eval_f64(&[]));
    }

    #[test]
    fn dnf_linearity_check() {
        let lin = QfFormula::and([lt(z(0) + z(1)), gt(z(1))]).dnf(10).unwrap();
        assert!(lin.is_linear());
        let quad = lt(z(0) * z(0)).dnf(10).unwrap();
        assert!(!quad.is_linear());
    }

    #[test]
    fn vars_and_size() {
        let f = QfFormula::and([lt(z(0)), gt(z(3))]);
        let vars: Vec<Var> = f.vars().into_iter().collect();
        assert_eq!(vars, vec![Var(0), Var(3)]);
        assert_eq!(f.size(), 3);
        assert_eq!(f.atom_count(), 2);
    }

    // The shim's behavior is frozen; these tests pin it (and
    // tests/rewrite_soundness.rs pins qarith_rewrite::ae_simplify to it).
    #[allow(deprecated)]
    #[test]
    fn ae_simplification_replaces_equalities() {
        use crate::atom::ConstraintOp;
        // (z0 = z1) ∨ (z0 < 0) ⇝ z0 < 0.
        let eq = QfFormula::atom(Atom::new(z(0) - z(1), ConstraintOp::Eq));
        let f = QfFormula::or([eq.clone(), lt(z(0))]);
        assert_eq!(f.ae_simplified(), lt(z(0)));
        // Negated equality becomes ≠, i.e. almost-everywhere true.
        let f = QfFormula::and([eq.clone().negated(), lt(z(0))]);
        assert_eq!(f.ae_simplified(), lt(z(0)));
        // A bare equality collapses to false; a bare disequality to true.
        assert_eq!(eq.clone().ae_simplified(), QfFormula::False);
        assert_eq!(eq.negated().ae_simplified(), QfFormula::True);
    }

    #[allow(deprecated)]
    #[test]
    fn ae_simplification_keeps_inequalities_intact() {
        let f = QfFormula::and([lt(z(0) + z(1)), gt(z(1) * z(1))]);
        assert_eq!(f.ae_simplified(), f);
    }

    #[allow(deprecated)]
    #[test]
    fn ae_simplification_pushes_through_negation() {
        // ¬(z0 < 0 ∧ z1 = 0) ⇝ (z0 ≥ 0) ∨ (z1 ≠ 0) ⇝ true.
        let f = QfFormula::and([lt(z(0)), QfFormula::atom(Atom::new(z(1), ConstraintOp::Eq))])
            .negated();
        assert_eq!(f.ae_simplified(), QfFormula::True);
    }

    #[test]
    fn rational_and_f64_eval_agree_on_exact_points() {
        let f =
            QfFormula::or([lt(z(0) - z(1)), QfFormula::atom(Atom::new(z(0), ConstraintOp::Eq))]);
        let pts = [(0i64, 0i64), (1, 2), (2, 1), (-3, -3)];
        for (x, y) in pts {
            let fp = [x as f64, y as f64];
            let rp = [Rational::from_int(x), Rational::from_int(y)];
            assert_eq!(f.eval_f64(&fp), f.eval_rational(&rp).unwrap());
        }
    }
}
