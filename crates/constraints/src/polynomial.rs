use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use qarith_numeric::{NumericError, Rational};

use crate::linear::LinearExpr;
use crate::monomial::Monomial;
use crate::var::Var;

/// A multivariate polynomial over ℚ in canonical form.
///
/// The term map never contains zero coefficients, so:
///
/// * `p.is_zero()` ⇔ `p` is the zero polynomial (mathematically);
/// * a homogeneous component is the zero polynomial iff it has no terms.
///
/// Both properties are load-bearing for the asymptotic analysis of
/// Lemma 8.4: the limit of `p(k·a)` is read off the highest-degree
/// component that is not *identically* zero, which canonical form makes a
/// purely syntactic check.
///
/// ```
/// use qarith_constraints::{Polynomial, Var};
/// use qarith_numeric::Rational;
///
/// // (z0 + z1)² − z0² − 2·z0·z1 − z1²  ≡  0
/// let z0 = Polynomial::var(Var(0));
/// let z1 = Polynomial::var(Var(1));
/// let sq = (z0.clone() + z1.clone()).checked_mul(&(z0.clone() + z1.clone())).unwrap();
/// let expanded = z0.clone() * z0.clone()
///     + Polynomial::constant(Rational::from_int(2)) * z0 * z1.clone()
///     + z1.clone() * z1;
/// assert!((sq - expanded).is_zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Polynomial {
    /// Canonical: no zero coefficients. Graded-lex key order groups terms
    /// by total degree.
    terms: BTreeMap<Monomial, Rational>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Polynomial {
        Polynomial { terms: BTreeMap::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Polynomial {
        Polynomial::constant(Rational::ONE)
    }

    /// A constant polynomial.
    pub fn constant(c: Rational) -> Polynomial {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Monomial::unit(), c);
        }
        Polynomial { terms }
    }

    /// The polynomial `v`.
    pub fn var(v: Var) -> Polynomial {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::var(v), Rational::ONE);
        Polynomial { terms }
    }

    /// Builds a polynomial from raw `(monomial, coefficient)` pairs,
    /// summing duplicates and dropping zeros.
    pub fn from_terms(
        pairs: impl IntoIterator<Item = (Monomial, Rational)>,
    ) -> Result<Polynomial, NumericError> {
        let mut p = Polynomial::zero();
        for (m, c) in pairs {
            p.add_term(m, c)?;
        }
        Ok(p)
    }

    /// Adds `c · m` in place.
    pub fn add_term(&mut self, m: Monomial, c: Rational) -> Result<(), NumericError> {
        if c.is_zero() {
            return Ok(());
        }
        match self.terms.entry(m) {
            Entry::Vacant(e) => {
                e.insert(c);
            }
            Entry::Occupied(mut e) => {
                let sum = e.get().checked_add(&c)?;
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
        }
        Ok(())
    }

    /// `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// If the polynomial is a constant (including zero), returns it.
    pub fn as_constant(&self) -> Option<Rational> {
        match self.terms.len() {
            0 => Some(Rational::ZERO),
            1 => {
                let (m, c) = self.terms.iter().next().unwrap();
                m.is_unit().then_some(*c)
            }
            _ => None,
        }
    }

    /// Total degree; `0` for constants and for the zero polynomial.
    pub fn degree(&self) -> u32 {
        // Graded-lex order ⇒ the last key has maximal degree.
        self.terms.keys().next_back().map_or(0, Monomial::degree)
    }

    /// The canonical `(monomial, coefficient)` pairs in graded-lex order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &Rational)> {
        self.terms.iter()
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Coefficient of a monomial (zero if absent).
    pub fn coeff(&self, m: &Monomial) -> Rational {
        self.terms.get(m).copied().unwrap_or(Rational::ZERO)
    }

    /// The set of variables occurring with nonzero coefficient.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for m in self.terms.keys() {
            out.extend(m.vars());
        }
        out
    }

    /// Checked addition.
    pub fn checked_add(&self, rhs: &Polynomial) -> Result<Polynomial, NumericError> {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), *c)?;
        }
        Ok(out)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, rhs: &Polynomial) -> Result<Polynomial, NumericError> {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), c.checked_neg()?)?;
        }
        Ok(out)
    }

    /// Checked multiplication (term-by-term convolution).
    pub fn checked_mul(&self, rhs: &Polynomial) -> Result<Polynomial, NumericError> {
        let mut out = Polynomial::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                out.add_term(ma.mul(mb), ca.checked_mul(cb)?)?;
            }
        }
        Ok(out)
    }

    /// Checked scaling by a rational.
    pub fn checked_scale(&self, c: &Rational) -> Result<Polynomial, NumericError> {
        if c.is_zero() {
            return Ok(Polynomial::zero());
        }
        let mut out = Polynomial::zero();
        for (m, k) in &self.terms {
            out.terms.insert(m.clone(), k.checked_mul(c)?);
        }
        Ok(out)
    }

    /// Negation.
    pub fn negated(&self) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, c) in &self.terms {
            out.terms.insert(m.clone(), -*c);
        }
        out
    }

    /// Checked exponentiation by a small non-negative integer.
    pub fn checked_pow(&self, exp: u32) -> Result<Polynomial, NumericError> {
        let mut acc = Polynomial::one();
        for _ in 0..exp {
            acc = acc.checked_mul(self)?;
        }
        Ok(acc)
    }

    /// The degree-`d` homogeneous component.
    pub fn homogeneous_component(&self, d: u32) -> Polynomial {
        Polynomial {
            terms: self
                .terms
                .iter()
                .filter(|(m, _)| m.degree() == d)
                .map(|(m, c)| (m.clone(), *c))
                .collect(),
        }
    }

    /// Drops the constant term — the homogenization `p̃` used by the
    /// Theorem 7.1 FPRAS (for *linear* `p`, replacing `c·z̄ < c′` by
    /// `c·z̄ < 0`).
    pub fn without_constant_term(&self) -> Polynomial {
        let mut out = self.clone();
        out.terms.remove(&Monomial::unit());
        out
    }

    /// Substitutes a constant for a variable.
    pub fn substitute(&self, v: Var, value: &Rational) -> Result<Polynomial, NumericError> {
        let mut out = Polynomial::zero();
        for (m, c) in &self.terms {
            let mut coeff = *c;
            let mut rest: Vec<(Var, u32)> = Vec::with_capacity(m.factors().len());
            for &(mv, e) in m.factors() {
                if mv == v {
                    coeff = coeff.checked_mul(&value.checked_pow(e)?)?;
                } else {
                    rest.push((mv, e));
                }
            }
            out.add_term(Monomial::from_pairs(rest), coeff)?;
        }
        Ok(out)
    }

    /// Renames variables via `f` (used when remapping null ids to dense
    /// formula variables).
    pub fn map_vars(&self, mut f: impl FnMut(Var) -> Var) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m, c) in &self.terms {
            let renamed = Monomial::from_pairs(m.factors().iter().map(|&(v, e)| (f(v), e)));
            out.add_term(renamed, *c).expect("renaming cannot overflow");
        }
        out
    }

    /// Evaluates at a point (slice indexed by [`Var::index`]) in `f64`.
    pub fn eval_f64(&self, point: &[f64]) -> f64 {
        self.terms.iter().map(|(m, c)| c.to_f64() * m.eval_f64(point)).sum()
    }

    /// Evaluates exactly at a rational point (slice indexed by
    /// [`Var::index`]).
    pub fn eval_rational(&self, point: &[Rational]) -> Result<Rational, NumericError> {
        let mut acc = Rational::ZERO;
        for (m, c) in &self.terms {
            let mut term = *c;
            for &(v, e) in m.factors() {
                term = term.checked_mul(&point[v.index()].checked_pow(e)?)?;
            }
            acc = acc.checked_add(&term)?;
        }
        Ok(acc)
    }

    /// If `p` has degree ≤ 1, returns it as an affine form.
    pub fn as_linear(&self) -> Option<LinearExpr> {
        if self.degree() > 1 {
            return None;
        }
        let mut constant = Rational::ZERO;
        let mut coeffs = Vec::with_capacity(self.terms.len());
        for (m, c) in &self.terms {
            if m.is_unit() {
                constant = *c;
            } else {
                let &(v, e) = &m.factors()[0];
                debug_assert_eq!(e, 1);
                coeffs.push((v, *c));
            }
        }
        Some(LinearExpr::new(coeffs, constant))
    }
}

macro_rules! poly_binop {
    ($trait:ident, $method:ident, $checked:ident) => {
        impl $trait for Polynomial {
            type Output = Polynomial;
            fn $method(self, rhs: Polynomial) -> Polynomial {
                self.$checked(&rhs).expect("polynomial arithmetic overflow")
            }
        }
        impl $trait<&Polynomial> for &Polynomial {
            type Output = Polynomial;
            fn $method(self, rhs: &Polynomial) -> Polynomial {
                self.$checked(rhs).expect("polynomial arithmetic overflow")
            }
        }
    };
}

poly_binop!(Add, add, checked_add);
poly_binop!(Sub, sub, checked_sub);
poly_binop!(Mul, mul, checked_mul);

impl Neg for Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        self.negated()
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            let neg = c.signum() < 0;
            let mag = c.abs();
            if i == 0 {
                if neg {
                    write!(f, "-")?;
                }
            } else if neg {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            if m.is_unit() {
                write!(f, "{mag}")?;
            } else if mag == Rational::ONE {
                write!(f, "{m}")?;
            } else {
                write!(f, "{mag}*{m}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn c(n: i64) -> Polynomial {
        Polynomial::constant(Rational::from_int(n))
    }

    #[test]
    fn construction_and_zero() {
        assert!(Polynomial::zero().is_zero());
        assert!(Polynomial::constant(Rational::ZERO).is_zero());
        assert!(!Polynomial::one().is_zero());
        assert_eq!(Polynomial::one().as_constant(), Some(Rational::ONE));
        assert_eq!(z(0).as_constant(), None);
    }

    #[test]
    fn cancellation_restores_canonical_zero() {
        let p = z(0) + z(1);
        let q = (p.clone() * p.clone()) - (z(0) * z(0) + c(2) * z(0) * z(1) + z(1) * z(1));
        assert!(q.is_zero());
    }

    #[test]
    fn degree_computation() {
        assert_eq!(Polynomial::zero().degree(), 0);
        assert_eq!(c(5).degree(), 0);
        assert_eq!(z(0).degree(), 1);
        assert_eq!((z(0) * z(0) * z(1) + z(1)).degree(), 3);
    }

    #[test]
    fn ring_identities() {
        let p = z(0) * z(1) + c(3) * z(2) + c(-1);
        let q = z(1) - c(2) * z(2);
        let r = z(0) + c(7);
        // distributivity
        let lhs = p.clone() * (q.clone() + r.clone());
        let rhs = p.clone() * q.clone() + p.clone() * r.clone();
        assert_eq!(lhs, rhs);
        // commutativity
        assert_eq!(p.clone() * q.clone(), q.clone() * p.clone());
        assert_eq!(p.clone() + q.clone(), q + p.clone());
        // additive inverse
        assert!((p.clone() - p).is_zero());
    }

    #[test]
    fn homogeneous_components() {
        let p = z(0) * z(0) + c(2) * z(0) + c(5); // z0² + 2 z0 + 5
        assert_eq!(p.homogeneous_component(2), z(0) * z(0));
        assert_eq!(p.homogeneous_component(1), c(2) * z(0));
        assert_eq!(p.homogeneous_component(0), c(5));
        assert!(p.homogeneous_component(3).is_zero());
        assert_eq!(p.without_constant_term(), z(0) * z(0) + c(2) * z(0));
    }

    #[test]
    fn substitution() {
        let p = z(0) * z(0) + z(1); // z0² + z1
        let s = p.substitute(Var(0), &Rational::from_int(3)).unwrap();
        assert_eq!(s, z(1) + c(9));
        let t = s.substitute(Var(1), &Rational::from_int(-9)).unwrap();
        assert!(t.is_zero());
    }

    #[test]
    fn evaluation_f64_and_rational() {
        let p = z(0) * z(0) - c(2) * z(1) + c(1);
        assert_eq!(p.eval_f64(&[3.0, 4.0]), 2.0);
        let exact = p.eval_rational(&[Rational::from_int(3), Rational::from_int(4)]).unwrap();
        assert_eq!(exact, Rational::from_int(2));
    }

    #[test]
    fn linear_extraction() {
        let p = c(2) * z(0) - c(3) * z(2) + c(7);
        let lin = p.as_linear().expect("degree 1");
        assert_eq!(lin.constant(), Rational::from_int(7));
        assert_eq!(lin.coeff(Var(0)), Rational::from_int(2));
        assert_eq!(lin.coeff(Var(2)), Rational::from_int(-3));
        assert_eq!(lin.coeff(Var(1)), Rational::ZERO);
        assert!((z(0) * z(1)).as_linear().is_none());
        assert!(c(4).as_linear().is_some());
    }

    #[test]
    fn map_vars_renames() {
        let p = z(0) + z(5);
        let renamed = p.map_vars(|v| if v == Var(5) { Var(1) } else { v });
        assert_eq!(renamed, z(0) + z(1));
        // Renaming that merges variables must combine coefficients.
        let merged = p.map_vars(|_| Var(0));
        assert_eq!(merged, c(2) * z(0));
    }

    #[test]
    fn display_is_readable() {
        let p = z(0) * z(0) - Polynomial::constant(Rational::new(7, 10)) * z(1) + c(-3);
        assert_eq!(p.to_string(), "-3 - 7/10*z1 + z0^2");
        assert_eq!(Polynomial::zero().to_string(), "0");
    }

    #[test]
    fn vars_collects_support() {
        let p = z(0) * z(3) + z(7);
        let vars: Vec<Var> = p.vars().into_iter().collect();
        assert_eq!(vars, vec![Var(0), Var(3), Var(7)]);
    }
}
