use std::fmt;

/// A real variable `z_i`.
///
/// Variables are dense small integers; the grounding translation assigns
/// `Var(i)` to the numerical null `⊤_i`. Dense ids allow direction vectors
/// to be plain slices indexed by [`Var::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Var {
    fn from(i: u32) -> Self {
        Var(i)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(Var(3).to_string(), "z3");
        assert_eq!(Var(3).index(), 3);
        assert_eq!(format!("{:?}", Var(0)), "z0");
    }

    #[test]
    fn ordering_by_id() {
        assert!(Var(1) < Var(2));
        assert_eq!(Var::from(7u32), Var(7));
    }
}
