use std::fmt;

use qarith_numeric::NumericError;

/// Errors from formula manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormulaError {
    /// DNF conversion exceeded the configured size budget.
    ///
    /// DNF size can be exponential in formula size; callers that need a DNF
    /// (the Theorem 7.1 FPRAS) set an explicit budget and fall back to the
    /// additive scheme when it is exceeded.
    DnfBlowup {
        /// Number of conjunctions produced before giving up.
        reached: usize,
        /// The configured budget.
        limit: usize,
    },
    /// Exact rational arithmetic failed (overflow/division by zero).
    Numeric(NumericError),
}

impl fmt::Display for FormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormulaError::DnfBlowup { reached, limit } => {
                write!(f, "DNF conversion exceeded its size budget ({reached} > {limit} disjuncts)")
            }
            FormulaError::Numeric(e) => write!(f, "numeric error: {e}"),
        }
    }
}

impl std::error::Error for FormulaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormulaError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for FormulaError {
    fn from(e: NumericError) -> Self {
        FormulaError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = FormulaError::DnfBlowup { reached: 2048, limit: 1024 };
        assert!(e.to_string().contains("2048"));
        let e: FormulaError = NumericError::DivisionByZero.into();
        assert!(matches!(e, FormulaError::Numeric(_)));
        assert!(e.to_string().contains("division by zero"));
    }
}
