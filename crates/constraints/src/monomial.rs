use std::cmp::Ordering;
use std::fmt;

use crate::var::Var;

/// A monomial: a product of variable powers, e.g. `z0² · z2`.
///
/// Stored as a sorted list of `(variable, exponent)` pairs with strictly
/// positive exponents and strictly increasing variables — a canonical form,
/// so structural equality coincides with mathematical equality. The empty
/// monomial is the constant `1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Monomial {
    /// Sorted by variable; exponents ≥ 1.
    factors: Box<[(Var, u32)]>,
}

impl Monomial {
    /// The unit monomial (constant `1`).
    pub fn unit() -> Monomial {
        Monomial { factors: Box::new([]) }
    }

    /// A single variable to the first power.
    pub fn var(v: Var) -> Monomial {
        Monomial { factors: Box::new([(v, 1)]) }
    }

    /// Builds a monomial from arbitrary `(var, exp)` pairs: merges repeats,
    /// drops zero exponents, sorts.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, u32)>) -> Monomial {
        let mut v: Vec<(Var, u32)> = Vec::new();
        for (var, exp) in pairs {
            if exp == 0 {
                continue;
            }
            v.push((var, exp));
        }
        v.sort_by_key(|&(var, _)| var);
        let mut merged: Vec<(Var, u32)> = Vec::with_capacity(v.len());
        for (var, exp) in v {
            match merged.last_mut() {
                Some((last, e)) if *last == var => *e += exp,
                _ => merged.push((var, exp)),
            }
        }
        Monomial { factors: merged.into_boxed_slice() }
    }

    /// `true` for the constant-1 monomial.
    pub fn is_unit(&self) -> bool {
        self.factors.is_empty()
    }

    /// Total degree (sum of exponents).
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|&(_, e)| e).sum()
    }

    /// The `(variable, exponent)` factors, sorted by variable.
    pub fn factors(&self) -> &[(Var, u32)] {
        &self.factors
    }

    /// Iterator over the variables occurring in this monomial.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.factors.iter().map(|&(v, _)| v)
    }

    /// Product of two monomials (exponents add).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut out: Vec<(Var, u32)> = Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            let (va, ea) = self.factors[i];
            let (vb, eb) = other.factors[j];
            match va.cmp(&vb) {
                Ordering::Less => {
                    out.push((va, ea));
                    i += 1;
                }
                Ordering::Greater => {
                    out.push((vb, eb));
                    j += 1;
                }
                Ordering::Equal => {
                    out.push((va, ea + eb));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&other.factors[j..]);
        Monomial { factors: out.into_boxed_slice() }
    }

    /// Evaluates at a point given as a slice indexed by [`Var::index`].
    ///
    /// # Panics
    ///
    /// Panics if the point is shorter than the largest variable index.
    pub fn eval_f64(&self, point: &[f64]) -> f64 {
        let mut acc = 1.0;
        for &(v, e) in self.factors.iter() {
            acc *= point[v.index()].powi(e as i32);
        }
        acc
    }
}

/// Graded lexicographic order: first by total degree, then lexicographically
/// by factors. This puts higher-degree monomials later, which keeps
/// [`Polynomial`](crate::Polynomial) term maps grouped by degree.
impl Ord for Monomial {
    fn cmp(&self, other: &Self) -> Ordering {
        self.degree().cmp(&other.degree()).then_with(|| self.factors.cmp(&other.factors))
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unit() {
            return write!(f, "1");
        }
        for (i, &(v, e)) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, "*")?;
            }
            if e == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{e}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(u32, u32)]) -> Monomial {
        Monomial::from_pairs(pairs.iter().map(|&(v, e)| (Var(v), e)))
    }

    #[test]
    fn canonical_form() {
        assert_eq!(m(&[(1, 2), (0, 1)]), m(&[(0, 1), (1, 2)]));
        assert_eq!(m(&[(0, 1), (0, 1)]), m(&[(0, 2)]));
        assert_eq!(m(&[(0, 0)]), Monomial::unit());
        assert!(m(&[]).is_unit());
    }

    #[test]
    fn degree_and_vars() {
        let mono = m(&[(0, 2), (3, 1)]);
        assert_eq!(mono.degree(), 3);
        let vars: Vec<Var> = mono.vars().collect();
        assert_eq!(vars, vec![Var(0), Var(3)]);
    }

    #[test]
    fn multiplication_merges_exponents() {
        let a = m(&[(0, 1), (2, 1)]);
        let b = m(&[(0, 2), (1, 1)]);
        assert_eq!(a.mul(&b), m(&[(0, 3), (1, 1), (2, 1)]));
        assert_eq!(a.mul(&Monomial::unit()), a);
        assert_eq!(Monomial::unit().mul(&a), a);
    }

    #[test]
    fn graded_lex_ordering() {
        // degree first …
        assert!(m(&[(5, 1)]) < m(&[(0, 2)]));
        // … then lexicographic within a degree.
        assert!(m(&[(0, 1), (1, 1)]) < m(&[(0, 2)]));
        assert!(Monomial::unit() < m(&[(0, 1)]));
    }

    #[test]
    fn eval_at_point() {
        let mono = m(&[(0, 2), (1, 1)]);
        assert_eq!(mono.eval_f64(&[2.0, 3.0]), 12.0);
        assert_eq!(Monomial::unit().eval_f64(&[]), 1.0);
        assert_eq!(m(&[(1, 3)]).eval_f64(&[0.0, -2.0]), -8.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(m(&[(0, 1)]).to_string(), "z0");
        assert_eq!(m(&[(0, 2), (1, 1)]).to_string(), "z0^2*z1");
        assert_eq!(Monomial::unit().to_string(), "1");
    }
}
