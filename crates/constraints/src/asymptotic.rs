//! Asymptotic truth along directions (Lemmas 8.2–8.4 of the paper).
//!
//! For a quantifier-free formula `φ(z̄)` over ⟨ℝ,+,·,<⟩ and a direction
//! `a ∈ ℝⁿ`, define `f_{φ,a}(k) = [φ(k·a)]`. Lemma 8.2 shows the limit of
//! `f_{φ,a}(k)` as `k → ∞` exists (each atom's polynomial, restricted to a
//! ray, has finitely many sign changes); Lemma 8.4 shows the limit is
//! computable in polynomial time: substitute `z_i := k·a_i`, group each
//! atom by degree in `k`, and read the eventual sign off the
//! highest-degree group with a nonzero value.
//!
//! This module provides both a direct evaluator over [`QfFormula`] and a
//! [`CompiledFormula`] representation for the Monte-Carlo hot loop of the
//! additive scheme (Theorem 8.1): atoms are deduplicated, coefficients are
//! lowered to `f64`, variables are remapped to dense coordinates (which
//! also implements the paper's §9 *partial sampling* optimization — only
//! coordinates that actually occur in `φ` need to be sampled), and each
//! direction is evaluated with short-circuiting and per-atom memoization.

use std::collections::HashMap;

use qarith_numeric::Rational;

use crate::atom::{Atom, ConstraintOp};
use crate::formula::QfFormula;
use crate::polynomial::Polynomial;
use crate::var::Var;

/// The sign of `p(k·a)` for all sufficiently large `k`.
///
/// `p(k·a) = Σ_d c_d(a)·k^d` where `c_d(a)` is the degree-`d` homogeneous
/// component of `p` evaluated at `a`. The eventual sign is the sign of the
/// highest-degree nonzero `c_d(a)`; if all vanish, the restriction to the
/// ray is identically zero and the sign is `0`.
pub fn limit_sign_along(p: &Polynomial, dir: &[f64]) -> i32 {
    if p.is_zero() {
        return 0;
    }
    // One pass over the term map, bucketing per-degree sums — avoids
    // materializing a `Polynomial` per homogeneous component, which
    // dominated the exact evaluators (they call this once per cell/arc).
    // Terms of equal degree are visited in the same (graded) order the
    // component polynomials would store them, and each term is evaluated
    // as `coeff · monomial`, so every per-degree sum is bit-identical to
    // `homogeneous_component(d).eval_f64(dir)`.
    let mut by_degree = vec![0.0f64; p.degree() as usize + 1];
    for (m, c) in p.terms() {
        by_degree[m.degree() as usize] += c.to_f64() * m.eval_f64(dir);
    }
    for v in by_degree.into_iter().rev() {
        if v > 0.0 {
            return 1;
        }
        if v < 0.0 {
            return -1;
        }
        // A nonzero component can still vanish at this particular
        // direction (a measure-zero event for sampled directions); the
        // next lower degree then dominates.
    }
    0
}

/// `lim_{k→∞} [a ⋈ 0 at k·dir]` for a single atom (Lemma 8.4).
pub fn atom_limit_truth(a: &Atom, dir: &[f64]) -> bool {
    a.op().holds(limit_sign_along(a.poly(), dir))
}

/// The limit sign of `p` along **almost every** direction, when exact ℚ
/// bound propagation can determine it; `None` when it cannot.
///
/// The a.e. limit sign is the sign of the top nonzero homogeneous
/// component `h` of `p`: for a.e. direction `a`, `h(a) ≠ 0` (the zero
/// set of a nonzero polynomial is a null set of the sphere) and then
/// [`limit_sign_along`] reads the sign off `h`. Whether that sign is
/// constant is decided by interval propagation over `|aᵢ| ≤ 1` (true on
/// the unit sphere): a monomial with all-even exponents ranges over
/// `[0, 1]`, any other monomial over `[−1, 1]`; scaling by the
/// coefficient and summing bounds `h` from both sides, exactly in ℚ.
/// If the lower bound is ≥ 0 then `h ≥ 0` everywhere, so the a.e. limit
/// sign is `+1` (dually `−1` for an upper bound ≤ 0).
///
/// The propagation is conservative: a `None` only costs a
/// simplification opportunity, never correctness. A `Some` is exact
/// with respect to the direction measure `ν` — replacing `p ⋈ 0` by the
/// constant `⋈`-truth of the returned sign changes the formula's limit
/// truth only on a null set of directions, so `ν` is preserved exactly
/// (the same argument that justifies the equality/disequality
/// elimination of the almost-everywhere simplifier).
pub fn constant_limit_sign(p: &Polynomial) -> Option<i32> {
    if p.is_zero() {
        return Some(0);
    }
    // The top component's terms are exactly the terms of maximal total
    // degree (the representation is canonical: no zero terms are
    // stored), so one filtered pass suffices — this runs per atom in
    // the rewrite pipeline's fold pass, so no intermediate polynomials
    // are materialized.
    let top = p.degree();
    if top == 0 {
        return p.as_constant().map(|c| c.signum());
    }
    let mut low = Rational::ZERO;
    let mut high = Rational::ZERO;
    for (m, c) in p.terms() {
        if m.degree() != top {
            continue;
        }
        let even = m.factors().iter().all(|&(_, e)| e % 2 == 0);
        if even {
            if c.signum() > 0 {
                high += *c;
            } else {
                low += *c;
            }
        } else {
            let a = c.abs();
            low -= a;
            high += a;
        }
    }
    if low.signum() >= 0 {
        Some(1)
    } else if high.signum() <= 0 {
        Some(-1)
    } else {
        None
    }
}

/// The truth of `a` along almost every direction, when
/// [`constant_limit_sign`] determines the sign of its polynomial.
pub fn constant_limit_truth(a: &Atom) -> Option<bool> {
    constant_limit_sign(a.poly()).map(|s| a.op().holds(s))
}

/// `lim_{k→∞} f_{φ,dir}(k)` for a formula (Lemma 8.2 guarantees the limit
/// exists; this computes it without taking limits numerically).
pub fn formula_limit_truth(f: &QfFormula, dir: &[f64]) -> bool {
    match f {
        QfFormula::True => true,
        QfFormula::False => false,
        QfFormula::Atom(a) => atom_limit_truth(a, dir),
        QfFormula::Not(inner) => !formula_limit_truth(inner, dir),
        QfFormula::And(parts) => parts.iter().all(|p| formula_limit_truth(p, dir)),
        QfFormula::Or(parts) => parts.iter().any(|p| formula_limit_truth(p, dir)),
    }
}

/// `f_{φ,a}(k)`: evaluates `φ` at the scaled point `k·dir`. Used in tests
/// to confirm that [`formula_limit_truth`] agrees with large finite `k`.
pub fn eval_at_scaled(f: &QfFormula, dir: &[f64], k: f64) -> bool {
    let point: Vec<f64> = dir.iter().map(|&x| x * k).collect();
    f.eval_f64(&point)
}

/// A monomial lowered for fast evaluation: `(coefficient, [(dense var
/// index, exponent)])`.
type LoweredTerm = (f64, Box<[(u32, u32)]>);

/// An atom lowered for the Monte-Carlo hot loop: homogeneous components in
/// *descending* degree order, each a list of lowered terms.
struct CompiledAtom {
    op: ConstraintOp,
    /// Invariant: components are symbolically nonzero and sorted by
    /// strictly descending degree.
    components: Vec<Vec<LoweredTerm>>,
}

impl CompiledAtom {
    fn limit_truth(&self, dir: &[f64]) -> bool {
        let mut sign = 0i32;
        for comp in &self.components {
            let mut acc = 0.0f64;
            for (coeff, factors) in comp {
                let mut term = *coeff;
                for &(v, e) in factors.iter() {
                    // Exponents in ground formulas are tiny (≤ 3 in
                    // practice); powi is the right tool.
                    term *= dir[v as usize].powi(e as i32);
                }
                acc += term;
            }
            if acc > 0.0 {
                sign = 1;
                break;
            }
            if acc < 0.0 {
                sign = -1;
                break;
            }
        }
        self.op.holds(sign)
    }
}

/// Boolean skeleton over deduplicated atom ids.
enum Node {
    True,
    False,
    Atom(u32),
    And(Vec<Node>),
    Or(Vec<Node>),
}

/// A formula compiled for repeated asymptotic evaluation.
///
/// Construction performs, once:
///
/// * NNF conversion (negations absorbed into atoms);
/// * atom deduplication — ground formulas repeat the same comparison for
///   many database tuples, and each unique atom is evaluated at most once
///   per direction;
/// * homogeneous-component extraction per atom (descending degree);
/// * variable densification: the original [`Var`]s are remapped onto
///   `0..dim()`, so direction vectors only carry coordinates that matter
///   (the §9 partial-sampling optimization).
///
/// Per direction, call [`CompiledFormula::limit_truth`] with a scratch
/// memo from [`CompiledFormula::new_memo`].
pub struct CompiledFormula {
    atoms: Vec<CompiledAtom>,
    root: Node,
    /// `vars[i]` is the original variable for dense coordinate `i`.
    vars: Vec<Var>,
}

impl CompiledFormula {
    /// Compiles a formula. The input need not be in NNF.
    pub fn compile(f: &QfFormula) -> CompiledFormula {
        let nnf = f.nnf();
        // Dense variable order: sorted original ids, for determinism.
        let vars: Vec<Var> = nnf.vars().into_iter().collect();
        let dense: HashMap<Var, u32> =
            vars.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();

        let mut atoms: Vec<CompiledAtom> = Vec::new();
        let mut ids: HashMap<Atom, u32> = HashMap::new();
        let root = Self::build(&nnf, &dense, &mut atoms, &mut ids);
        CompiledFormula { atoms, root, vars }
    }

    fn build(
        f: &QfFormula,
        dense: &HashMap<Var, u32>,
        atoms: &mut Vec<CompiledAtom>,
        ids: &mut HashMap<Atom, u32>,
    ) -> Node {
        match f {
            QfFormula::True => Node::True,
            QfFormula::False => Node::False,
            QfFormula::Not(_) => unreachable!("compile runs on NNF input"),
            QfFormula::Atom(a) => {
                let id = *ids.entry(a.clone()).or_insert_with(|| {
                    atoms.push(Self::lower_atom(a, dense));
                    (atoms.len() - 1) as u32
                });
                Node::Atom(id)
            }
            QfFormula::And(parts) => {
                Node::And(parts.iter().map(|p| Self::build(p, dense, atoms, ids)).collect())
            }
            QfFormula::Or(parts) => {
                Node::Or(parts.iter().map(|p| Self::build(p, dense, atoms, ids)).collect())
            }
        }
    }

    fn lower_atom(a: &Atom, dense: &HashMap<Var, u32>) -> CompiledAtom {
        let p = a.poly();
        let mut components: Vec<Vec<LoweredTerm>> = Vec::new();
        for d in (0..=p.degree()).rev() {
            let comp = p.homogeneous_component(d);
            if comp.is_zero() {
                continue;
            }
            let terms: Vec<LoweredTerm> = comp
                .terms()
                .map(|(m, c)| {
                    let factors: Box<[(u32, u32)]> =
                        m.factors().iter().map(|&(v, e)| (dense[&v], e)).collect();
                    (c.to_f64(), factors)
                })
                .collect();
            components.push(terms);
        }
        CompiledAtom { op: a.op(), components }
    }

    /// Dimension of the dense direction space (number of distinct
    /// variables in the formula).
    pub fn dim(&self) -> usize {
        self.vars.len()
    }

    /// The original variable ids, in dense-coordinate order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of deduplicated atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Allocates a scratch memo for [`CompiledFormula::limit_truth`].
    pub fn new_memo(&self) -> Vec<i8> {
        vec![-1; self.atoms.len()]
    }

    /// The asymptotic truth of the formula along `dir` (dense
    /// coordinates, length [`CompiledFormula::dim`]).
    ///
    /// `memo` must come from [`CompiledFormula::new_memo`]; it is reset
    /// internally, so one allocation serves all directions.
    pub fn limit_truth(&self, dir: &[f64], memo: &mut [i8]) -> bool {
        debug_assert_eq!(dir.len(), self.vars.len());
        debug_assert_eq!(memo.len(), self.atoms.len());
        memo.fill(-1);
        self.eval_node(&self.root, dir, memo)
    }

    fn eval_node(&self, node: &Node, dir: &[f64], memo: &mut [i8]) -> bool {
        match node {
            Node::True => true,
            Node::False => false,
            Node::Atom(id) => {
                let i = *id as usize;
                match memo[i] {
                    0 => false,
                    1 => true,
                    _ => {
                        let t = self.atoms[i].limit_truth(dir);
                        memo[i] = t as i8;
                        t
                    }
                }
            }
            Node::And(parts) => parts.iter().all(|p| self.eval_node(p, dir, memo)),
            Node::Or(parts) => parts.iter().any(|p| self.eval_node(p, dir, memo)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_numeric::Rational;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn c(n: i64) -> Polynomial {
        Polynomial::constant(Rational::from_int(n))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    #[test]
    fn limit_sign_leading_term_dominates() {
        // p = z0² − 1000·z1: along (1, 1) the quadratic term wins.
        let p = z(0) * z(0) - c(1000) * z(1);
        assert_eq!(limit_sign_along(&p, &[1.0, 1.0]), 1);
        // Along (0, 1) the quadratic component vanishes; −1000·z1 decides.
        assert_eq!(limit_sign_along(&p, &[0.0, 1.0]), -1);
        // Along (0, 0): constant zero.
        assert_eq!(limit_sign_along(&p, &[0.0, 0.0]), 0);
    }

    #[test]
    fn limit_sign_constant_polynomials() {
        assert_eq!(limit_sign_along(&c(5), &[1.0]), 1);
        assert_eq!(limit_sign_along(&c(-5), &[1.0]), -1);
        assert_eq!(limit_sign_along(&Polynomial::zero(), &[1.0]), 0);
    }

    #[test]
    fn constants_ignored_asymptotically() {
        // z0 − 10⁶ > 0: along any positive direction eventually true.
        let p = z(0) - c(1_000_000);
        assert_eq!(limit_sign_along(&p, &[0.001]), 1);
        assert_eq!(limit_sign_along(&p, &[-0.001]), -1);
    }

    #[test]
    fn equality_atoms_need_identically_zero_rays() {
        let eq = Atom::new(z(0) - z(1), ConstraintOp::Eq);
        assert!(atom_limit_truth(&eq, &[1.0, 1.0])); // on the diagonal: 0 ≡ 0
        assert!(!atom_limit_truth(&eq, &[1.0, 2.0]));
        let ne = eq.negated();
        assert!(!atom_limit_truth(&ne, &[1.0, 1.0]));
        assert!(atom_limit_truth(&ne, &[1.0, 2.0]));
    }

    #[test]
    fn limit_matches_large_k_evaluation() {
        // The intro-example constraint: z1 ≥ 0 ∧ z0 ≥ 8 ∧ 0.7·z1 ≥ z0.
        let point7 = Polynomial::constant(Rational::new(7, 10));
        let f = QfFormula::and([
            atom(z(1), ConstraintOp::Ge),
            atom(z(0) - c(8), ConstraintOp::Ge),
            atom(point7 * z(1) - z(0), ConstraintOp::Ge),
        ]);
        let dirs = [[0.5f64, 1.0], [1.0, 1.0], [0.1, 0.9], [-0.3, 0.7], [0.6, 0.65], [0.0, 1.0]];
        for dir in dirs {
            let expected = eval_at_scaled(&f, &dir, 1e9);
            assert_eq!(formula_limit_truth(&f, &dir), expected, "direction {dir:?}");
        }
    }

    #[test]
    fn compiled_matches_interpreter() {
        let f = QfFormula::or([
            QfFormula::and([
                atom(z(0) * z(0) - z(1), ConstraintOp::Lt),
                atom(z(2) + z(0), ConstraintOp::Gt),
            ]),
            atom(z(1) - c(3) * z(2), ConstraintOp::Le).negated(),
        ]);
        let compiled = CompiledFormula::compile(&f);
        assert_eq!(compiled.dim(), 3);
        let mut memo = compiled.new_memo();
        let dirs = [
            [0.3, 0.2, 0.1],
            [-0.5, 0.5, 0.5],
            [1.0, -1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.7, 0.7, -0.7],
        ];
        for dir in dirs {
            assert_eq!(
                compiled.limit_truth(&dir, &mut memo),
                formula_limit_truth(&f, &dir),
                "direction {dir:?}"
            );
        }
    }

    #[test]
    fn compiled_densifies_sparse_vars() {
        // Formula over z5 and z100 compiles to a 2-dimensional direction
        // space — the §9 partial-sampling optimization.
        let f =
            QfFormula::and([atom(z(5), ConstraintOp::Gt), atom(z(100) - z(5), ConstraintOp::Gt)]);
        let compiled = CompiledFormula::compile(&f);
        assert_eq!(compiled.dim(), 2);
        assert_eq!(compiled.vars(), &[Var(5), Var(100)]);
        let mut memo = compiled.new_memo();
        assert!(compiled.limit_truth(&[1.0, 2.0], &mut memo));
        assert!(!compiled.limit_truth(&[2.0, 1.0], &mut memo));
    }

    #[test]
    fn compiled_dedups_repeated_atoms() {
        let a = atom(z(0), ConstraintOp::Gt);
        let f = QfFormula::or([
            QfFormula::and([a.clone(), atom(z(1), ConstraintOp::Gt)]),
            QfFormula::and([a.clone(), atom(z(1), ConstraintOp::Lt)]),
        ]);
        let compiled = CompiledFormula::compile(&f);
        assert_eq!(compiled.atom_count(), 3, "z0>0 appears once after dedup");
    }

    #[test]
    fn compiled_handles_constants() {
        let t = CompiledFormula::compile(&QfFormula::True);
        assert!(t.limit_truth(&[], &mut t.new_memo()));
        let f = CompiledFormula::compile(&QfFormula::False);
        assert!(!f.limit_truth(&[], &mut f.new_memo()));
    }

    #[test]
    fn constant_limit_sign_bound_propagation() {
        // Sums of even powers with uniform coefficient sign are decided.
        assert_eq!(constant_limit_sign(&(z(0) * z(0) + z(1) * z(1))), Some(1));
        assert_eq!(constant_limit_sign(&(c(-2) * z(0) * z(0) - z(1) * z(1))), Some(-1));
        // Constants in lower components are asymptotically irrelevant.
        assert_eq!(constant_limit_sign(&(z(0) * z(0) - c(1_000_000))), Some(1));
        // Mixed even/odd terms stay conservative: z0² + z0z1 + z1² is in
        // fact positive semidefinite, but the interval bound is [−1, 2],
        // so the analysis declines (soundly) to decide it.
        assert_eq!(constant_limit_sign(&(z(0) * z(0) + z(0) * z(1) + z(1) * z(1))), None);
        assert_eq!(constant_limit_sign(&(c(2) * z(0) * z(0) + z(0) * z(1))), None);
        // Odd monomials alone are undecided; zero is decided.
        assert_eq!(constant_limit_sign(&z(0)), None);
        assert_eq!(constant_limit_sign(&Polynomial::zero()), Some(0));
        // Constant polynomials read their own sign.
        assert_eq!(constant_limit_sign(&c(3)), Some(1));
        assert_eq!(constant_limit_sign(&c(-3)), Some(-1));
    }

    #[test]
    fn constant_limit_truth_matches_sampled_directions() {
        let a = Atom::new(z(0) * z(0) + z(1) * z(1) - c(5), ConstraintOp::Gt);
        assert_eq!(constant_limit_truth(&a), Some(true));
        let b = Atom::new(z(0) * z(0) - c(5), ConstraintOp::Le);
        assert_eq!(constant_limit_truth(&b), Some(false));
        for dir in [[0.6, 0.8], [-0.9, 0.1], [0.0, -1.0], [1.0, 0.0]] {
            assert!(atom_limit_truth(&a, &dir), "at {dir:?}");
        }
        // (The a.e. claim: along a null set — here a₀ = 0 — the sign can
        // differ; everywhere else it matches.)
        for dir in [[0.6], [-0.9], [1.0]] {
            assert!(!atom_limit_truth(&b, &dir), "at {dir:?}");
        }
    }

    #[test]
    fn lemma_8_2_monotone_stabilization() {
        // f_{φ,a}(k) must stabilize: check a formula whose truth flips at
        // finite k but settles.  φ: (z0 − 5)·(z0 − 10) > 0 along a = (1).
        let p = (z(0) - c(5)) * (z(0) - c(10));
        let f = atom(p, ConstraintOp::Gt);
        // k = 7: (2)(−3) < 0 → false; k large: true.
        assert!(!eval_at_scaled(&f, &[1.0], 7.0));
        assert!(eval_at_scaled(&f, &[1.0], 100.0));
        assert!(formula_limit_truth(&f, &[1.0]));
    }
}
