//! Asymptotic truth along directions (Lemmas 8.2–8.4 of the paper).
//!
//! For a quantifier-free formula `φ(z̄)` over ⟨ℝ,+,·,<⟩ and a direction
//! `a ∈ ℝⁿ`, define `f_{φ,a}(k) = [φ(k·a)]`. Lemma 8.2 shows the limit of
//! `f_{φ,a}(k)` as `k → ∞` exists (each atom's polynomial, restricted to a
//! ray, has finitely many sign changes); Lemma 8.4 shows the limit is
//! computable in polynomial time: substitute `z_i := k·a_i`, group each
//! atom by degree in `k`, and read the eventual sign off the
//! highest-degree group with a nonzero value.
//!
//! This module provides both a direct evaluator over [`QfFormula`] and a
//! [`CompiledFormula`] representation for the Monte-Carlo hot loop of the
//! additive scheme (Theorem 8.1): atoms are deduplicated, coefficients are
//! lowered to `f64`, variables are remapped to dense coordinates (which
//! also implements the paper's §9 *partial sampling* optimization — only
//! coordinates that actually occur in `φ` need to be sampled), and each
//! direction is evaluated with short-circuiting and per-atom memoization.

use std::collections::HashMap;

use qarith_numeric::Rational;

use crate::atom::{Atom, ConstraintOp};
use crate::formula::QfFormula;
use crate::polynomial::Polynomial;
use crate::var::Var;

/// The sign of `p(k·a)` for all sufficiently large `k`.
///
/// `p(k·a) = Σ_d c_d(a)·k^d` where `c_d(a)` is the degree-`d` homogeneous
/// component of `p` evaluated at `a`. The eventual sign is the sign of the
/// highest-degree nonzero `c_d(a)`; if all vanish, the restriction to the
/// ray is identically zero and the sign is `0`.
pub fn limit_sign_along(p: &Polynomial, dir: &[f64]) -> i32 {
    if p.is_zero() {
        return 0;
    }
    // One pass over the term map, bucketing per-degree sums — avoids
    // materializing a `Polynomial` per homogeneous component, which
    // dominated the exact evaluators (they call this once per cell/arc).
    // Terms of equal degree are visited in the same (graded) order the
    // component polynomials would store them, and each term is evaluated
    // as `coeff · monomial`, so every per-degree sum is bit-identical to
    // `homogeneous_component(d).eval_f64(dir)`.
    let mut by_degree = vec![0.0f64; p.degree() as usize + 1];
    for (m, c) in p.terms() {
        by_degree[m.degree() as usize] += c.to_f64() * m.eval_f64(dir);
    }
    for v in by_degree.into_iter().rev() {
        if v > 0.0 {
            return 1;
        }
        if v < 0.0 {
            return -1;
        }
        // A nonzero component can still vanish at this particular
        // direction (a measure-zero event for sampled directions); the
        // next lower degree then dominates.
    }
    0
}

/// `lim_{k→∞} [a ⋈ 0 at k·dir]` for a single atom (Lemma 8.4).
pub fn atom_limit_truth(a: &Atom, dir: &[f64]) -> bool {
    a.op().holds(limit_sign_along(a.poly(), dir))
}

/// The limit sign of `p` along **almost every** direction, when exact ℚ
/// bound propagation can determine it; `None` when it cannot.
///
/// The a.e. limit sign is the sign of the top nonzero homogeneous
/// component `h` of `p`: for a.e. direction `a`, `h(a) ≠ 0` (the zero
/// set of a nonzero polynomial is a null set of the sphere) and then
/// [`limit_sign_along`] reads the sign off `h`. Whether that sign is
/// constant is decided by interval propagation over `|aᵢ| ≤ 1` (true on
/// the unit sphere): a monomial with all-even exponents ranges over
/// `[0, 1]`, any other monomial over `[−1, 1]`; scaling by the
/// coefficient and summing bounds `h` from both sides, exactly in ℚ.
/// If the lower bound is ≥ 0 then `h ≥ 0` everywhere, so the a.e. limit
/// sign is `+1` (dually `−1` for an upper bound ≤ 0).
///
/// The propagation is conservative: a `None` only costs a
/// simplification opportunity, never correctness. A `Some` is exact
/// with respect to the direction measure `ν` — replacing `p ⋈ 0` by the
/// constant `⋈`-truth of the returned sign changes the formula's limit
/// truth only on a null set of directions, so `ν` is preserved exactly
/// (the same argument that justifies the equality/disequality
/// elimination of the almost-everywhere simplifier).
pub fn constant_limit_sign(p: &Polynomial) -> Option<i32> {
    if p.is_zero() {
        return Some(0);
    }
    // The top component's terms are exactly the terms of maximal total
    // degree (the representation is canonical: no zero terms are
    // stored), so one filtered pass suffices — this runs per atom in
    // the rewrite pipeline's fold pass, so no intermediate polynomials
    // are materialized.
    let top = p.degree();
    if top == 0 {
        return p.as_constant().map(|c| c.signum());
    }
    let mut low = Rational::ZERO;
    let mut high = Rational::ZERO;
    for (m, c) in p.terms() {
        if m.degree() != top {
            continue;
        }
        let even = m.factors().iter().all(|&(_, e)| e % 2 == 0);
        if even {
            if c.signum() > 0 {
                high += *c;
            } else {
                low += *c;
            }
        } else {
            let a = c.abs();
            low -= a;
            high += a;
        }
    }
    if low.signum() >= 0 {
        Some(1)
    } else if high.signum() <= 0 {
        Some(-1)
    } else {
        None
    }
}

/// The truth of `a` along almost every direction, when
/// [`constant_limit_sign`] determines the sign of its polynomial.
pub fn constant_limit_truth(a: &Atom) -> Option<bool> {
    constant_limit_sign(a.poly()).map(|s| a.op().holds(s))
}

/// `lim_{k→∞} f_{φ,dir}(k)` for a formula (Lemma 8.2 guarantees the limit
/// exists; this computes it without taking limits numerically).
pub fn formula_limit_truth(f: &QfFormula, dir: &[f64]) -> bool {
    match f {
        QfFormula::True => true,
        QfFormula::False => false,
        QfFormula::Atom(a) => atom_limit_truth(a, dir),
        QfFormula::Not(inner) => !formula_limit_truth(inner, dir),
        QfFormula::And(parts) => parts.iter().all(|p| formula_limit_truth(p, dir)),
        QfFormula::Or(parts) => parts.iter().any(|p| formula_limit_truth(p, dir)),
    }
}

/// `f_{φ,a}(k)`: evaluates `φ` at the scaled point `k·dir`. Used in tests
/// to confirm that [`formula_limit_truth`] agrees with large finite `k`.
pub fn eval_at_scaled(f: &QfFormula, dir: &[f64], k: f64) -> bool {
    let point: Vec<f64> = dir.iter().map(|&x| x * k).collect();
    f.eval_f64(&point)
}

/// A monomial lowered for fast evaluation: `(coefficient, [(dense var
/// index, exponent)])`.
type LoweredTerm = (f64, Box<[(u32, u32)]>);

/// `x^e` for the tiny exponents of ground formulas, bit-identical to
/// `x.powi(e as i32)` for finite `x`.
///
/// `powi` with a runtime exponent is a `__powidf2` libcall whose
/// square-and-multiply runs `mul = 1.0; if odd { mul *= a }; a *= a; …`
/// — so `e = 1` yields `1.0·x`, `e = 2` yields `1.0·(x·x)`, `e = 3`
/// yields `(1.0·x)·(x·x)`, `e = 4` yields `1.0·((x·x)·(x·x))`.
/// Multiplying a finite value by `1.0` is exact, and f64 multiplication
/// is commutative, so the inlined products below reproduce those bits
/// exactly while letting LLVM keep the hot loop free of libcalls (and
/// auto-vectorize it in the blocked evaluator).
#[inline(always)]
fn pow_small(x: f64, e: u32) -> f64 {
    match e {
        0 => 1.0,
        1 => x,
        2 => x * x,
        3 => x * (x * x),
        4 => {
            let sq = x * x;
            sq * sq
        }
        _ => x.powi(e as i32),
    }
}

/// An atom lowered for the Monte-Carlo hot loop: homogeneous components in
/// *descending* degree order, each a list of lowered terms.
struct CompiledAtom {
    op: ConstraintOp,
    /// Invariant: components are symbolically nonzero and sorted by
    /// strictly descending degree.
    components: Vec<Vec<LoweredTerm>>,
}

/// Sentinel for a lane whose atom sign is still undecided (the real
/// signs are `-1`, `0`, `1`).
const SIGN_UNDECIDED: i8 = 2;

impl CompiledAtom {
    fn limit_truth(&self, dir: &[f64]) -> bool {
        let mut sign = 0i32;
        for comp in &self.components {
            let mut acc = 0.0f64;
            for (coeff, factors) in comp {
                let mut term = *coeff;
                for &(v, e) in factors.iter() {
                    term *= pow_small(dir[v as usize], e);
                }
                acc += term;
            }
            if acc > 0.0 {
                sign = 1;
                break;
            }
            if acc < 0.0 {
                sign = -1;
                break;
            }
        }
        self.op.holds(sign)
    }

    /// Blockwise twin of [`CompiledAtom::limit_truth`] over `count`
    /// directions in SoA layout (`soa[v * count + j]` is coordinate `v`
    /// of direction `j`). Writes the atom's op-truth per lane into
    /// `out[..count]`.
    ///
    /// Bit-identity with the scalar path: each lane's component sum is
    /// built term by term with the identical association — `term`
    /// starts at the coefficient, multiplies factors left to right, and
    /// is added into an accumulator that starts at `0.0` — and a lane's
    /// sign is frozen by the first component whose sum is nonzero, just
    /// as the scalar `break` freezes it. Components past a lane's
    /// freeze point still compute for that lane (the block has no
    /// per-lane control flow) but their values are discarded, so they
    /// cannot perturb the result.
    fn limit_truth_lanes(
        &self,
        soa: &[f64],
        count: usize,
        term: &mut [f64],
        acc: &mut [f64],
        sign: &mut [i8],
        out: &mut [u8],
    ) {
        sign[..count].fill(SIGN_UNDECIDED);
        for comp in &self.components {
            acc[..count].fill(0.0);
            for (coeff, factors) in comp {
                term[..count].fill(*coeff);
                for &(v, e) in factors.iter() {
                    let row = &soa[v as usize * count..(v as usize + 1) * count];
                    // Hoist the exponent dispatch out of the lane loop:
                    // each arm is a branch-free independent-lane loop
                    // that LLVM auto-vectorizes.
                    match e {
                        1 => {
                            for (t, &x) in term[..count].iter_mut().zip(row) {
                                *t *= x;
                            }
                        }
                        2 => {
                            for (t, &x) in term[..count].iter_mut().zip(row) {
                                *t *= x * x;
                            }
                        }
                        3 => {
                            for (t, &x) in term[..count].iter_mut().zip(row) {
                                *t *= x * (x * x);
                            }
                        }
                        _ => {
                            for (t, &x) in term[..count].iter_mut().zip(row) {
                                *t *= pow_small(x, e);
                            }
                        }
                    }
                }
                // 4-wide manually unrolled accumulate (the pinned
                // stable toolchain has no `std::simd`): independent
                // lanes, so no reassociation — bit-identical to the
                // scalar `acc += term` per lane.
                let mut a4 = acc[..count].chunks_exact_mut(4);
                let mut t4 = term[..count].chunks_exact(4);
                for (a, t) in a4.by_ref().zip(t4.by_ref()) {
                    a[0] += t[0];
                    a[1] += t[1];
                    a[2] += t[2];
                    a[3] += t[3];
                }
                for (a, t) in a4.into_remainder().iter_mut().zip(t4.remainder()) {
                    *a += *t;
                }
            }
            let mut undecided = 0usize;
            for (s, &a) in sign[..count].iter_mut().zip(acc[..count].iter()) {
                if *s == SIGN_UNDECIDED {
                    if a > 0.0 {
                        *s = 1;
                    } else if a < 0.0 {
                        *s = -1;
                    } else {
                        undecided += 1;
                    }
                }
            }
            if undecided == 0 {
                break;
            }
        }
        for (o, &s) in out[..count].iter_mut().zip(sign[..count].iter()) {
            let resolved = if s == SIGN_UNDECIDED { 0 } else { i32::from(s) };
            *o = u8::from(self.op.holds(resolved));
        }
    }
}

/// Reusable scratch for [`CompiledFormula::limit_truth_block`]: every
/// buffer the blocked evaluator needs, allocated once per worker and
/// reused for every block (the allocs-per-sample pin in `kernel_bench`
/// asserts these never reallocate).
pub struct BlockScratch {
    /// Per-lane running product for the current lowered term.
    term: Vec<f64>,
    /// Per-lane accumulator for the current homogeneous component.
    acc: Vec<f64>,
    /// Per-lane resolved sign for the current atom
    /// ([`SIGN_UNDECIDED`] while open).
    sign: Vec<i8>,
    /// `atom_count × capacity` truth table, one row per atom.
    truth: Vec<u8>,
    /// One lane-row per boolean-skeleton depth level (row 0 holds the
    /// root's truth after a block evaluation).
    node_levels: Vec<Vec<u8>>,
    /// Maximum lane count this scratch serves.
    capacity: usize,
}

impl BlockScratch {
    /// Maximum lane count this scratch was allocated for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Boolean skeleton over deduplicated atom ids.
enum Node {
    True,
    False,
    Atom(u32),
    And(Vec<Node>),
    Or(Vec<Node>),
}

/// A formula compiled for repeated asymptotic evaluation.
///
/// Construction performs, once:
///
/// * NNF conversion (negations absorbed into atoms);
/// * atom deduplication — ground formulas repeat the same comparison for
///   many database tuples, and each unique atom is evaluated at most once
///   per direction;
/// * homogeneous-component extraction per atom (descending degree);
/// * variable densification: the original [`Var`]s are remapped onto
///   `0..dim()`, so direction vectors only carry coordinates that matter
///   (the §9 partial-sampling optimization).
///
/// Per direction, call [`CompiledFormula::limit_truth`] with a scratch
/// memo from [`CompiledFormula::new_memo`].
pub struct CompiledFormula {
    atoms: Vec<CompiledAtom>,
    root: Node,
    /// `vars[i]` is the original variable for dense coordinate `i`.
    vars: Vec<Var>,
}

impl CompiledFormula {
    /// Compiles a formula. The input need not be in NNF.
    pub fn compile(f: &QfFormula) -> CompiledFormula {
        let nnf = f.nnf();
        // Dense variable order: sorted original ids, for determinism.
        let vars: Vec<Var> = nnf.vars().into_iter().collect();
        let dense: HashMap<Var, u32> =
            vars.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();

        let mut atoms: Vec<CompiledAtom> = Vec::new();
        let mut ids: HashMap<Atom, u32> = HashMap::new();
        let root = Self::build(&nnf, &dense, &mut atoms, &mut ids);
        CompiledFormula { atoms, root, vars }
    }

    fn build(
        f: &QfFormula,
        dense: &HashMap<Var, u32>,
        atoms: &mut Vec<CompiledAtom>,
        ids: &mut HashMap<Atom, u32>,
    ) -> Node {
        match f {
            QfFormula::True => Node::True,
            QfFormula::False => Node::False,
            QfFormula::Not(_) => unreachable!("compile runs on NNF input"),
            QfFormula::Atom(a) => {
                let id = *ids.entry(a.clone()).or_insert_with(|| {
                    atoms.push(Self::lower_atom(a, dense));
                    (atoms.len() - 1) as u32
                });
                Node::Atom(id)
            }
            QfFormula::And(parts) => {
                Node::And(parts.iter().map(|p| Self::build(p, dense, atoms, ids)).collect())
            }
            QfFormula::Or(parts) => {
                Node::Or(parts.iter().map(|p| Self::build(p, dense, atoms, ids)).collect())
            }
        }
    }

    fn lower_atom(a: &Atom, dense: &HashMap<Var, u32>) -> CompiledAtom {
        let p = a.poly();
        let mut components: Vec<Vec<LoweredTerm>> = Vec::new();
        for d in (0..=p.degree()).rev() {
            let comp = p.homogeneous_component(d);
            if comp.is_zero() {
                continue;
            }
            let terms: Vec<LoweredTerm> = comp
                .terms()
                .map(|(m, c)| {
                    let factors: Box<[(u32, u32)]> =
                        m.factors().iter().map(|&(v, e)| (dense[&v], e)).collect();
                    (c.to_f64(), factors)
                })
                .collect();
            components.push(terms);
        }
        CompiledAtom { op: a.op(), components }
    }

    /// Dimension of the dense direction space (number of distinct
    /// variables in the formula).
    pub fn dim(&self) -> usize {
        self.vars.len()
    }

    /// The original variable ids, in dense-coordinate order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of deduplicated atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Allocates a scratch memo for [`CompiledFormula::limit_truth`].
    pub fn new_memo(&self) -> Vec<i8> {
        vec![-1; self.atoms.len()]
    }

    /// The asymptotic truth of the formula along `dir` (dense
    /// coordinates, length [`CompiledFormula::dim`]).
    ///
    /// `memo` must come from [`CompiledFormula::new_memo`]; it is reset
    /// internally, so one allocation serves all directions.
    pub fn limit_truth(&self, dir: &[f64], memo: &mut [i8]) -> bool {
        debug_assert_eq!(dir.len(), self.vars.len());
        debug_assert_eq!(memo.len(), self.atoms.len());
        memo.fill(-1);
        self.eval_node(&self.root, dir, memo)
    }

    fn eval_node(&self, node: &Node, dir: &[f64], memo: &mut [i8]) -> bool {
        match node {
            Node::True => true,
            Node::False => false,
            Node::Atom(id) => {
                let i = *id as usize;
                match memo[i] {
                    0 => false,
                    1 => true,
                    _ => {
                        let t = self.atoms[i].limit_truth(dir);
                        memo[i] = t as i8;
                        t
                    }
                }
            }
            Node::And(parts) => parts.iter().all(|p| self.eval_node(p, dir, memo)),
            Node::Or(parts) => parts.iter().any(|p| self.eval_node(p, dir, memo)),
        }
    }

    /// Allocates a scratch for [`CompiledFormula::limit_truth_block`]
    /// serving up to `capacity` lanes.
    pub fn new_block_scratch(&self, capacity: usize) -> BlockScratch {
        BlockScratch {
            term: vec![0.0; capacity],
            acc: vec![0.0; capacity],
            sign: vec![0; capacity],
            truth: vec![0; self.atoms.len() * capacity],
            node_levels: vec![vec![0; capacity]; skeleton_depth(&self.root) + 1],
            capacity,
        }
    }

    /// The asymptotic truth of the formula along `count` directions at
    /// once, returning the number of satisfied lanes.
    ///
    /// `soa` is the structure-of-arrays block of
    /// `qarith_geometry::fill_unit_sphere_block`: `soa[v * count + j]`
    /// is dense coordinate `v` of direction `j`, `soa.len() =
    /// dim() * count`. `scratch` comes from
    /// [`CompiledFormula::new_block_scratch`] with `capacity ≥ count`.
    ///
    /// **Bit-identity contract:** for every lane `j`, the result equals
    /// `limit_truth(dir_j, memo)` on the contiguous copy of that
    /// direction. Atom signs reduce per lane with the exact scalar
    /// association (see `CompiledAtom::limit_truth_lanes`); the
    /// boolean skeleton is then evaluated lane-parallel over the
    /// precomputed atom truths (`&=`/`|=` rows, one scratch row per
    /// tree depth) — the scalar walk memoizes and short-circuits, but
    /// an atom's truth is a pure function of the direction and `all` /
    /// `any` equal the bitwise fold, so evaluating every node eagerly
    /// changes no lane's outcome.
    pub fn limit_truth_block(
        &self,
        soa: &[f64],
        count: usize,
        scratch: &mut BlockScratch,
    ) -> usize {
        debug_assert_eq!(soa.len(), self.vars.len() * count);
        assert!(count <= scratch.capacity, "block wider than scratch capacity");
        for (i, atom) in self.atoms.iter().enumerate() {
            let row = &mut scratch.truth[i * count..(i + 1) * count];
            atom.limit_truth_lanes(
                soa,
                count,
                &mut scratch.term,
                &mut scratch.acc,
                &mut scratch.sign,
                row,
            );
        }
        let (root_row, deeper) = scratch.node_levels.split_first_mut().expect("≥ 1 level");
        eval_node_block(&self.root, &scratch.truth, count, deeper, root_row);
        root_row[..count].iter().map(|&b| usize::from(b)).sum()
    }
}

/// Depth of the boolean skeleton: the number of nested And/Or levels
/// (leaves are depth 0). Sizes the per-level scratch rows of
/// [`BlockScratch`].
fn skeleton_depth(node: &Node) -> usize {
    match node {
        Node::True | Node::False | Node::Atom(_) => 0,
        Node::And(parts) | Node::Or(parts) => {
            1 + parts.iter().map(skeleton_depth).max().unwrap_or(0)
        }
    }
}

/// Lane-parallel boolean-skeleton evaluation: writes the subtree's truth
/// per lane into `out[..count]`. Children evaluate into `levels[0]` (one
/// scratch row per depth, so recursion never aliases) and fold into
/// `out` with `&=`/`|=` — branch-free independent-lane loops that LLVM
/// auto-vectorizes. Equal to the scalar short-circuit walk because
/// `all`/`any` over pure per-lane truths are exactly the bitwise folds.
fn eval_node_block(
    node: &Node,
    truth: &[u8],
    count: usize,
    levels: &mut [Vec<u8>],
    out: &mut [u8],
) {
    match node {
        Node::True => out[..count].fill(1),
        Node::False => out[..count].fill(0),
        Node::Atom(id) => {
            let i = *id as usize;
            out[..count].copy_from_slice(&truth[i * count..i * count + count]);
        }
        Node::And(parts) => {
            out[..count].fill(1);
            let (child, deeper) = levels.split_first_mut().expect("depth-sized levels");
            for p in parts {
                eval_node_block(p, truth, count, deeper, child);
                for (o, &c) in out[..count].iter_mut().zip(child[..count].iter()) {
                    *o &= c;
                }
            }
        }
        Node::Or(parts) => {
            out[..count].fill(0);
            let (child, deeper) = levels.split_first_mut().expect("depth-sized levels");
            for p in parts {
                eval_node_block(p, truth, count, deeper, child);
                for (o, &c) in out[..count].iter_mut().zip(child[..count].iter()) {
                    *o |= c;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qarith_numeric::Rational;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn c(n: i64) -> Polynomial {
        Polynomial::constant(Rational::from_int(n))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    #[test]
    fn limit_sign_leading_term_dominates() {
        // p = z0² − 1000·z1: along (1, 1) the quadratic term wins.
        let p = z(0) * z(0) - c(1000) * z(1);
        assert_eq!(limit_sign_along(&p, &[1.0, 1.0]), 1);
        // Along (0, 1) the quadratic component vanishes; −1000·z1 decides.
        assert_eq!(limit_sign_along(&p, &[0.0, 1.0]), -1);
        // Along (0, 0): constant zero.
        assert_eq!(limit_sign_along(&p, &[0.0, 0.0]), 0);
    }

    #[test]
    fn limit_sign_constant_polynomials() {
        assert_eq!(limit_sign_along(&c(5), &[1.0]), 1);
        assert_eq!(limit_sign_along(&c(-5), &[1.0]), -1);
        assert_eq!(limit_sign_along(&Polynomial::zero(), &[1.0]), 0);
    }

    #[test]
    fn constants_ignored_asymptotically() {
        // z0 − 10⁶ > 0: along any positive direction eventually true.
        let p = z(0) - c(1_000_000);
        assert_eq!(limit_sign_along(&p, &[0.001]), 1);
        assert_eq!(limit_sign_along(&p, &[-0.001]), -1);
    }

    #[test]
    fn equality_atoms_need_identically_zero_rays() {
        let eq = Atom::new(z(0) - z(1), ConstraintOp::Eq);
        assert!(atom_limit_truth(&eq, &[1.0, 1.0])); // on the diagonal: 0 ≡ 0
        assert!(!atom_limit_truth(&eq, &[1.0, 2.0]));
        let ne = eq.negated();
        assert!(!atom_limit_truth(&ne, &[1.0, 1.0]));
        assert!(atom_limit_truth(&ne, &[1.0, 2.0]));
    }

    #[test]
    fn limit_matches_large_k_evaluation() {
        // The intro-example constraint: z1 ≥ 0 ∧ z0 ≥ 8 ∧ 0.7·z1 ≥ z0.
        let point7 = Polynomial::constant(Rational::new(7, 10));
        let f = QfFormula::and([
            atom(z(1), ConstraintOp::Ge),
            atom(z(0) - c(8), ConstraintOp::Ge),
            atom(point7 * z(1) - z(0), ConstraintOp::Ge),
        ]);
        let dirs = [[0.5f64, 1.0], [1.0, 1.0], [0.1, 0.9], [-0.3, 0.7], [0.6, 0.65], [0.0, 1.0]];
        for dir in dirs {
            let expected = eval_at_scaled(&f, &dir, 1e9);
            assert_eq!(formula_limit_truth(&f, &dir), expected, "direction {dir:?}");
        }
    }

    #[test]
    fn compiled_matches_interpreter() {
        let f = QfFormula::or([
            QfFormula::and([
                atom(z(0) * z(0) - z(1), ConstraintOp::Lt),
                atom(z(2) + z(0), ConstraintOp::Gt),
            ]),
            atom(z(1) - c(3) * z(2), ConstraintOp::Le).negated(),
        ]);
        let compiled = CompiledFormula::compile(&f);
        assert_eq!(compiled.dim(), 3);
        let mut memo = compiled.new_memo();
        let dirs = [
            [0.3, 0.2, 0.1],
            [-0.5, 0.5, 0.5],
            [1.0, -1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.7, 0.7, -0.7],
        ];
        for dir in dirs {
            assert_eq!(
                compiled.limit_truth(&dir, &mut memo),
                formula_limit_truth(&f, &dir),
                "direction {dir:?}"
            );
        }
    }

    #[test]
    fn compiled_densifies_sparse_vars() {
        // Formula over z5 and z100 compiles to a 2-dimensional direction
        // space — the §9 partial-sampling optimization.
        let f =
            QfFormula::and([atom(z(5), ConstraintOp::Gt), atom(z(100) - z(5), ConstraintOp::Gt)]);
        let compiled = CompiledFormula::compile(&f);
        assert_eq!(compiled.dim(), 2);
        assert_eq!(compiled.vars(), &[Var(5), Var(100)]);
        let mut memo = compiled.new_memo();
        assert!(compiled.limit_truth(&[1.0, 2.0], &mut memo));
        assert!(!compiled.limit_truth(&[2.0, 1.0], &mut memo));
    }

    #[test]
    fn compiled_dedups_repeated_atoms() {
        let a = atom(z(0), ConstraintOp::Gt);
        let f = QfFormula::or([
            QfFormula::and([a.clone(), atom(z(1), ConstraintOp::Gt)]),
            QfFormula::and([a.clone(), atom(z(1), ConstraintOp::Lt)]),
        ]);
        let compiled = CompiledFormula::compile(&f);
        assert_eq!(compiled.atom_count(), 3, "z0>0 appears once after dedup");
    }

    #[test]
    fn compiled_handles_constants() {
        let t = CompiledFormula::compile(&QfFormula::True);
        assert!(t.limit_truth(&[], &mut t.new_memo()));
        let f = CompiledFormula::compile(&QfFormula::False);
        assert!(!f.limit_truth(&[], &mut f.new_memo()));
    }

    #[test]
    fn constant_limit_sign_bound_propagation() {
        // Sums of even powers with uniform coefficient sign are decided.
        assert_eq!(constant_limit_sign(&(z(0) * z(0) + z(1) * z(1))), Some(1));
        assert_eq!(constant_limit_sign(&(c(-2) * z(0) * z(0) - z(1) * z(1))), Some(-1));
        // Constants in lower components are asymptotically irrelevant.
        assert_eq!(constant_limit_sign(&(z(0) * z(0) - c(1_000_000))), Some(1));
        // Mixed even/odd terms stay conservative: z0² + z0z1 + z1² is in
        // fact positive semidefinite, but the interval bound is [−1, 2],
        // so the analysis declines (soundly) to decide it.
        assert_eq!(constant_limit_sign(&(z(0) * z(0) + z(0) * z(1) + z(1) * z(1))), None);
        assert_eq!(constant_limit_sign(&(c(2) * z(0) * z(0) + z(0) * z(1))), None);
        // Odd monomials alone are undecided; zero is decided.
        assert_eq!(constant_limit_sign(&z(0)), None);
        assert_eq!(constant_limit_sign(&Polynomial::zero()), Some(0));
        // Constant polynomials read their own sign.
        assert_eq!(constant_limit_sign(&c(3)), Some(1));
        assert_eq!(constant_limit_sign(&c(-3)), Some(-1));
    }

    #[test]
    fn constant_limit_truth_matches_sampled_directions() {
        let a = Atom::new(z(0) * z(0) + z(1) * z(1) - c(5), ConstraintOp::Gt);
        assert_eq!(constant_limit_truth(&a), Some(true));
        let b = Atom::new(z(0) * z(0) - c(5), ConstraintOp::Le);
        assert_eq!(constant_limit_truth(&b), Some(false));
        for dir in [[0.6, 0.8], [-0.9, 0.1], [0.0, -1.0], [1.0, 0.0]] {
            assert!(atom_limit_truth(&a, &dir), "at {dir:?}");
        }
        // (The a.e. claim: along a null set — here a₀ = 0 — the sign can
        // differ; everywhere else it matches.)
        for dir in [[0.6], [-0.9], [1.0]] {
            assert!(!atom_limit_truth(&b, &dir), "at {dir:?}");
        }
    }

    #[test]
    fn pow_small_matches_powi() {
        // The contract is with the *runtime* `__powidf2` libcall (what a
        // runtime exponent compiles to) — black_box both operands, or in
        // release LLVM const-folds `powi` on these literal inputs to a
        // correctly-rounded value that can differ by 1 ulp from the
        // libcall's square-and-multiply (seen at x=-0.988123, e=4).
        use std::hint::black_box;
        for x in [0.0f64, -0.0, 1.0, -1.0, 0.3071594, -0.988123, 1e-9, -7.25] {
            for e in 0u32..8 {
                let via_powi = black_box(x).powi(black_box(e as i32));
                assert_eq!(pow_small(x, e).to_bits(), via_powi.to_bits(), "x={x} e={e}");
            }
        }
    }

    /// Builds a blockwise SoA copy of `dirs` (count lanes, dim rows).
    fn soa_of(dirs: &[Vec<f64>]) -> (Vec<f64>, usize) {
        let count = dirs.len();
        let dim = dirs.first().map_or(0, Vec::len);
        let mut soa = vec![0.0; dim * count];
        for (j, d) in dirs.iter().enumerate() {
            for (c, &x) in d.iter().enumerate() {
                soa[c * count + j] = x;
            }
        }
        (soa, count)
    }

    #[test]
    fn block_matches_scalar_lane_for_lane() {
        // Mixed ops, shared atoms, a degree-3 term, and nested ∧/∨ —
        // exercises dedup rows, the powi specializations, and the
        // skeleton walk.
        let f = QfFormula::or([
            QfFormula::and([
                atom(z(0) * z(0) - z(1), ConstraintOp::Lt),
                atom(z(2) + z(0), ConstraintOp::Gt),
                atom(z(0) * z(0) * z(0) + z(1) * z(2), ConstraintOp::Ge),
            ]),
            atom(z(1) - c(3) * z(2), ConstraintOp::Le).negated(),
            QfFormula::and([
                atom(z(0) * z(0) - z(1), ConstraintOp::Lt),
                atom(z(2) - z(1), ConstraintOp::Eq),
            ]),
        ]);
        let compiled = CompiledFormula::compile(&f);
        let dirs: Vec<Vec<f64>> = vec![
            vec![0.3, 0.2, 0.1],
            vec![-0.5, 0.5, 0.5],
            vec![1.0, -1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.7, 0.7, -0.7],
            vec![0.25, 0.75, 0.5],
            vec![-0.1, -0.2, -0.3],
        ];
        let mut memo = compiled.new_memo();
        // Run at several widths, including non-multiples of 4 (the
        // unroll remainder) and width 1.
        for width in [1usize, 3, 4, 5, 7] {
            let mut scratch = compiled.new_block_scratch(width);
            for chunk in dirs.chunks(width) {
                let (soa, count) = soa_of(chunk);
                let scalar_hits =
                    chunk.iter().filter(|d| compiled.limit_truth(d, &mut memo)).count();
                assert_eq!(
                    compiled.limit_truth_block(&soa, count, &mut scratch),
                    scalar_hits,
                    "width={width}"
                );
            }
        }
    }

    #[test]
    fn block_handles_constant_formulas() {
        let t = CompiledFormula::compile(&QfFormula::True);
        let mut s = t.new_block_scratch(8);
        assert_eq!(t.limit_truth_block(&[], 8, &mut s), 8);
        let f = CompiledFormula::compile(&QfFormula::False);
        let mut s = f.new_block_scratch(8);
        assert_eq!(f.limit_truth_block(&[], 8, &mut s), 0);
    }

    #[test]
    fn lemma_8_2_monotone_stabilization() {
        // f_{φ,a}(k) must stabilize: check a formula whose truth flips at
        // finite k but settles.  φ: (z0 − 5)·(z0 − 10) > 0 along a = (1).
        let p = (z(0) - c(5)) * (z(0) - c(10));
        let f = atom(p, ConstraintOp::Gt);
        // k = 7: (2)(−3) < 0 → false; k large: true.
        assert!(!eval_at_scaled(&f, &[1.0], 7.0));
        assert!(eval_at_scaled(&f, &[1.0], 100.0));
        assert!(formula_limit_truth(&f, &[1.0]));
    }
}
