//! Canonical forms and interning for quantifier-free formulas.
//!
//! Ground formulas of different candidate answers frequently coincide up
//! to the *identity of their nulls*: `0.8·z₃ − 27 ≤ 0` for one product
//! and `0.8·z₉ − 27 ≤ 0` for another describe the same measurement
//! problem, because `ν` is invariant under permutations of the direction
//! coordinates. The batch measurement engine exploits this by mapping
//! every ground formula to a canonical representative, measuring each
//! representative once, and sharing the result across the class.
//!
//! Two levels of canonicalization are provided, with different
//! guarantees:
//!
//! * the **structural form** ([`Canonical::formula`]): negation normal
//!   form plus *order-preserving* dense renumbering of the variables
//!   (the variable of rank `i` becomes `z_i`). Every measurement
//!   algorithm in `qarith-core` densifies variables by exactly this rank
//!   order before doing any numeric work, so measuring the structural
//!   form is **bit-identical** to measuring the original formula — for
//!   the exact evaluators, the FPRAS, and the AFPRAS alike, for any
//!   fixed seed. Formulas with equal structural forms are
//!   interchangeable everywhere.
//!
//! * the **asymptotic key** ([`Canonical::asymptotic_key`]): on top of
//!   the structural form, every homogeneous component of every atom is
//!   rescaled (exactly, in ℚ) so its graded-lex-leading coefficient has
//!   absolute value 1, and the children of `And`/`Or` nodes are sorted
//!   and deduplicated. Positive per-component rescaling preserves the
//!   *sign* of each component along every direction, hence the entire
//!   asymptotic truth function of Lemma 8.4; child order and repetition
//!   are irrelevant to Boolean evaluation. Formulas sharing an
//!   asymptotic key therefore have identical asymptotic truth at every
//!   direction — the quantity the Theorem 8.1 sampler evaluates — which
//!   makes the key the right dedup granularity for the *sampling* route:
//!   constants like `27` vs `31` vanish into `±1` and the sales
//!   workload's per-tuple constants stop defeating the cache. The key
//!   must **not** be used to group formulas for the geometric FPRAS or
//!   the 2-D arc evaluator, whose `f64` intermediates are
//!   scale-sensitive; the batch engine falls back to the structural key
//!   there.
//!
//! [`FormulaInterner`] maintains the canonical-form table: it assigns a
//! small dense id per distinct structural form and memoizes the (mildly
//! expensive) canonicalization itself.

use std::collections::HashMap;
use std::fmt::Write as _;

use qarith_numeric::Rational;

use crate::atom::Atom;
use crate::formula::QfFormula;
use crate::polynomial::Polynomial;
use crate::var::Var;

/// A formula in canonical form, with its cache keys.
#[derive(Clone, Debug)]
pub struct Canonical {
    /// The structural canonical representative: NNF with variables
    /// densely renumbered in rank order. Measuring this formula is
    /// bit-identical to measuring the original (see module docs).
    pub formula: QfFormula,
    /// Number of distinct variables (the sampling dimension).
    pub dim: usize,
    /// Serialization of [`Canonical::formula`]; equal strings ⇔ equal
    /// structural forms.
    pub structural_key: String,
}

impl Canonical {
    /// The scale- and order-insensitive key: equal strings ⇒ identical
    /// asymptotic truth functions (the converse need not hold).
    /// Computed on demand — only the sampling route pays for it.
    pub fn asymptotic_key(&self) -> String {
        asymptotic_key(&self.formula)
    }
}

/// Canonicalizes a formula: NNF, order-preserving dense renumbering, and
/// the structural key.
pub fn canonicalize(phi: &QfFormula) -> Canonical {
    let formula = renumbered(phi);
    let dim = formula.vars().len();
    let structural_key = formula.to_string();
    Canonical { formula, dim, structural_key }
}

/// The structural canonical *formula* alone — NNF plus order-preserving
/// dense renumbering — without serializing the structural key. For
/// callers that go on to build a different key (e.g. the batch engine's
/// rewritten asymptotic keys via [`asymptotic_key_of`]), skipping the
/// serialization saves the most expensive part of [`canonicalize`].
pub fn renumbered(phi: &QfFormula) -> QfFormula {
    let nnf = phi.nnf();
    let vars: Vec<Var> = nnf.vars().into_iter().collect();
    let rank: HashMap<Var, Var> =
        vars.iter().enumerate().map(|(i, &v)| (v, Var(i as u32))).collect();
    rename(&nnf, &rank)
}

/// The asymptotic grouping key of an already-renumbered NNF formula
/// (the output of [`renumbered`] or [`Canonical::formula`]). Equal keys
/// ⇒ identical asymptotic truth functions, exactly as for
/// [`Canonical::asymptotic_key`] — this is the same computation without
/// requiring the full [`Canonical`].
pub fn asymptotic_key_of(phi: &QfFormula) -> String {
    asymptotic_key(phi)
}

/// Renames variables through the given map (order-preserving maps keep
/// graded-lex term order, hence atom structure, intact).
fn rename(f: &QfFormula, map: &HashMap<Var, Var>) -> QfFormula {
    match f {
        QfFormula::True => QfFormula::True,
        QfFormula::False => QfFormula::False,
        QfFormula::Atom(a) => QfFormula::atom(Atom::new(a.poly().map_vars(|v| map[&v]), a.op())),
        QfFormula::Not(inner) => rename(inner, map).negated(),
        QfFormula::And(parts) => QfFormula::and(parts.iter().map(|p| rename(p, map))),
        QfFormula::Or(parts) => QfFormula::or(parts.iter().map(|p| rename(p, map))),
    }
}

/// Rescales every homogeneous component of `p` so that its
/// graded-lex-leading coefficient has absolute value 1. Exact in ℚ; the
/// sign of each component at every point is preserved, so the asymptotic
/// sign function of the polynomial (Lemma 8.4) is unchanged.
pub fn scale_normalized(p: &Polynomial) -> Polynomial {
    // Single pass, no per-component polynomials: the leading coefficient
    // of a component is the first term of that degree in the (graded)
    // term order, which a filtered scan visits first as well. This runs
    // per atom on every asymptotic-key build — the batch engine's
    // grouping hot path.
    let mut lead: HashMap<u32, Rational> = HashMap::new();
    for (m, c) in p.terms() {
        lead.entry(m.degree()).or_insert_with(|| c.abs());
    }
    let mut out = Polynomial::zero();
    for (m, c) in p.terms() {
        out.add_term(m.clone(), *c / lead[&m.degree()]).expect("unit rescale");
    }
    out
}

/// Builds the asymptotic grouping key of an (already renumbered, NNF)
/// formula: atoms are scale-normalized, `And`/`Or` children are
/// serialized, sorted, and deduplicated.
fn asymptotic_key(f: &QfFormula) -> String {
    fn walk(f: &QfFormula, out: &mut String) {
        match f {
            QfFormula::True => out.push('T'),
            QfFormula::False => out.push('F'),
            QfFormula::Atom(a) => {
                let _ = write!(out, "{} {}", scale_normalized(a.poly()), a.op());
            }
            QfFormula::Not(inner) => {
                // NNF input leaves no Not nodes, but stay total.
                out.push('!');
                out.push('(');
                walk(inner, out);
                out.push(')');
            }
            QfFormula::And(parts) | QfFormula::Or(parts) => {
                out.push(if matches!(f, QfFormula::And(_)) { '&' } else { '|' });
                let mut kids: Vec<String> = parts
                    .iter()
                    .map(|p| {
                        let mut s = String::new();
                        walk(p, &mut s);
                        s
                    })
                    .collect();
                kids.sort();
                kids.dedup();
                out.push('[');
                for (i, k) in kids.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                }
                out.push(']');
            }
        }
    }
    let mut out = String::new();
    walk(f, &mut out);
    out
}

/// How often the interner found an existing entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Lookups that found an existing canonical form.
    pub hits: usize,
    /// Lookups that created a new entry.
    pub misses: usize,
}

impl InternStats {
    /// Total lookups.
    pub fn lookups(&self) -> usize {
        self.hits + self.misses
    }
}

/// An interning table for canonical formulas: one dense id per distinct
/// *structural* form, with a front map on the raw formulas so literally
/// repeated inputs skip canonicalization entirely.
#[derive(Debug, Default)]
pub struct FormulaInterner {
    raw: HashMap<QfFormula, u32>,
    by_structural: HashMap<String, u32>,
    entries: Vec<Canonical>,
    stats: InternStats,
}

impl FormulaInterner {
    /// An empty interner.
    pub fn new() -> FormulaInterner {
        FormulaInterner::default()
    }

    /// Canonicalizes `phi` (memoized) and interns the result, returning
    /// the dense id of its structural class.
    pub fn intern(&mut self, phi: &QfFormula) -> u32 {
        if let Some(&id) = self.raw.get(phi) {
            self.stats.hits += 1;
            return id;
        }
        let canon = canonicalize(phi);
        let id = match self.by_structural.get(&canon.structural_key) {
            Some(&id) => {
                self.stats.hits += 1;
                id
            }
            None => {
                let id = self.entries.len() as u32;
                self.by_structural.insert(canon.structural_key.clone(), id);
                self.entries.push(canon);
                self.stats.misses += 1;
                id
            }
        };
        self.raw.insert(phi.clone(), id);
        id
    }

    /// The canonical entry for an id returned by
    /// [`FormulaInterner::intern`].
    pub fn get(&self, id: u32) -> &Canonical {
        &self.entries[id as usize]
    }

    /// Number of distinct structural classes interned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> InternStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::ConstraintOp;

    fn z(i: u32) -> Polynomial {
        Polynomial::var(Var(i))
    }

    fn c(n: i64) -> Polynomial {
        Polynomial::constant(Rational::from_int(n))
    }

    fn atom(p: Polynomial, op: ConstraintOp) -> QfFormula {
        QfFormula::atom(Atom::new(p, op))
    }

    #[test]
    fn renumbering_is_order_preserving() {
        // z5 − z3 < 0 renumbers to z1 − z0 < 0 (rank order kept).
        let f = atom(z(5) - z(3), ConstraintOp::Lt);
        let canon = canonicalize(&f);
        assert_eq!(canon.dim, 2);
        assert_eq!(canon.formula, atom(z(1) - z(0), ConstraintOp::Lt));
    }

    #[test]
    fn null_renaming_shares_structural_key() {
        // Monotone renamings of the same shape intern to one class.
        let a = atom(c(4) * z(2) - c(27), ConstraintOp::Le);
        let b = atom(c(4) * z(9) - c(27), ConstraintOp::Le);
        let ca = canonicalize(&a);
        let cb = canonicalize(&b);
        assert_eq!(ca.structural_key, cb.structural_key);
        assert_eq!(ca.formula, cb.formula);
    }

    #[test]
    fn structural_form_preserves_semantics() {
        let f = QfFormula::and([
            atom(z(7) - z(2), ConstraintOp::Lt),
            atom(z(2) * z(7) - c(5), ConstraintOp::Gt),
        ])
        .negated();
        let canon = canonicalize(&f);
        // Same semantics under the rank substitution z2 ↦ z0, z7 ↦ z1.
        for (a, b) in [(1.0, 2.0), (3.0, 1.0), (2.0, 4.0), (-1.0, -2.0)] {
            let orig = f.eval_f64(&[0.0, 0.0, a, 0.0, 0.0, 0.0, 0.0, b]);
            let got = canon.formula.eval_f64(&[a, b]);
            assert_eq!(orig, got, "at ({a}, {b})");
        }
    }

    #[test]
    fn scale_normalization_is_per_component() {
        // 0.8·z0 − 27 ⇝ z0 − 1: each component scaled independently.
        let p = Polynomial::constant(Rational::new(4, 5)) * z(0) - c(27);
        assert_eq!(scale_normalized(&p), z(0) - c(1));
        // Leading coefficient sign survives (only magnitudes normalize).
        let q = c(-3) * z(0) - c(27);
        assert_eq!(scale_normalized(&q), c(-1) * z(0) - c(1));
    }

    #[test]
    fn asymptotic_key_ignores_constants_and_scales() {
        let a = atom(Polynomial::constant(Rational::new(4, 5)) * z(3) - c(27), ConstraintOp::Le);
        let b = atom(Polynomial::constant(Rational::new(9, 10)) * z(8) - c(31), ConstraintOp::Le);
        assert_eq!(canonicalize(&a).asymptotic_key(), canonicalize(&b).asymptotic_key());
        // … but the structural keys differ (different coefficients).
        assert_ne!(canonicalize(&a).structural_key, canonicalize(&b).structural_key);
    }

    #[test]
    fn asymptotic_key_sorts_and_dedups_children() {
        let p = atom(z(0), ConstraintOp::Gt);
        let q = atom(z(1), ConstraintOp::Lt);
        let f = QfFormula::or([p.clone(), q.clone()]);
        let g = QfFormula::or([q.clone(), p.clone(), q]);
        assert_eq!(canonicalize(&f).asymptotic_key(), canonicalize(&g).asymptotic_key());
    }

    #[test]
    fn asymptotic_key_distinguishes_sign_and_op() {
        let a = atom(z(0), ConstraintOp::Gt);
        let b = atom(c(-1) * z(0), ConstraintOp::Gt);
        let c_ = atom(z(0), ConstraintOp::Ge);
        assert_ne!(canonicalize(&a).asymptotic_key(), canonicalize(&b).asymptotic_key());
        assert_ne!(canonicalize(&a).asymptotic_key(), canonicalize(&c_).asymptotic_key());
    }

    #[test]
    fn scale_normalization_preserves_asymptotic_truth() {
        use crate::asymptotic::formula_limit_truth;
        let f = QfFormula::and([
            atom(Polynomial::constant(Rational::new(4, 5)) * z(0) - c(27), ConstraintOp::Le),
            atom(c(3) * z(0) * z(1) - c(8), ConstraintOp::Gt),
        ]);
        let g = QfFormula::and([
            atom(z(0) - c(1), ConstraintOp::Le),
            atom(z(0) * z(1) - c(1), ConstraintOp::Gt),
        ]);
        assert_eq!(canonicalize(&f).asymptotic_key(), canonicalize(&g).asymptotic_key());
        for dir in [[0.5, 0.5], [-0.5, 0.5], [0.5, -0.5], [-1.0, -1.0], [0.0, 1.0], [1.0, 0.0]] {
            assert_eq!(formula_limit_truth(&f, &dir), formula_limit_truth(&g, &dir), "at {dir:?}");
        }
    }

    #[test]
    fn interner_dedups_and_counts() {
        let mut interner = FormulaInterner::new();
        let a = atom(z(2) - c(5), ConstraintOp::Lt);
        let b = atom(z(6) - c(5), ConstraintOp::Lt); // renamed copy
        let distinct = atom(z(2) - c(6), ConstraintOp::Lt);
        let ia = interner.intern(&a);
        let ib = interner.intern(&b);
        let ic = interner.intern(&distinct);
        assert_eq!(ia, ib);
        assert_ne!(ia, ic);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.stats(), InternStats { hits: 1, misses: 2 });
        assert_eq!(interner.get(ia).dim, 1);
    }

    #[test]
    fn nnf_makes_negated_comparisons_coincide() {
        // ¬(z0 < 0) and z0 ≥ 0 share a structural class.
        let a = atom(z(0), ConstraintOp::Lt).negated();
        let b = atom(z(0), ConstraintOp::Ge);
        assert_eq!(canonicalize(&a).structural_key, canonicalize(&b).structural_key);
    }

    #[test]
    fn constants_canonicalize() {
        let t = canonicalize(&QfFormula::True);
        assert_eq!(t.dim, 0);
        assert_eq!(t.formula, QfFormula::True);
        let f = canonicalize(&QfFormula::False);
        assert_eq!(f.formula, QfFormula::False);
        assert_ne!(t.asymptotic_key(), f.asymptotic_key());
    }
}
