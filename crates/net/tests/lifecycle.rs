//! Connection-lifecycle suite: backpressure, the idle reaper, and the
//! drain protocol.
//!
//! The load-bearing invariant is the backpressure one: the admission
//! gate's permit is scoped to query *execution* inside
//! [`QueryService::query`], so a reply parked against a slow (or
//! absent) reader never holds an admission slot — other clients keep
//! flowing through even a 1-wide gate. The rest pins the timers:
//! idle connections are reaped, drains finish in-flight work, and the
//! shutdown deadline is enforced against a connection wedged
//! mid-frame.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qarith_core::afpras::{AfprasOptions, SampleCount};
use qarith_core::{BatchOptions, MeasureOptions, MethodChoice};
use qarith_datagen::WorkloadScale;
use qarith_net::{Decoded, ErrorKind, NetClient, NetConfig, NetServer, Request};
use qarith_serve::{QueryService, ServeConfig};

const SQL: &str = "SELECT P.id FROM Products P";

fn test_service(max_in_flight: usize) -> Arc<QueryService> {
    let db = qarith_datagen::sales::sales_database(&WorkloadScale::Tiny.params(), 2020);
    let options = MeasureOptions {
        method: MethodChoice::Afpras,
        afpras: AfprasOptions {
            epsilon: 0.1,
            samples: SampleCount::Paper,
            seed: 77 ^ 0xF1616,
            ..AfprasOptions::default()
        },
        batch: BatchOptions { threads: 1, dedup: true },
        ..MeasureOptions::default()
    };
    Arc::new(QueryService::new(
        db,
        ServeConfig { options, max_in_flight, ..ServeConfig::default() },
    ))
}

fn fast_config() -> NetConfig {
    NetConfig {
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(30),
        tick: Duration::from_millis(2),
        ..NetConfig::default()
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A reader that never reads must not hold an admission slot: with a
/// 1-wide gate, a second client's queries keep completing while the
/// first connection's replies sit undelivered, and the `in_flight`
/// gauge returns to 0 between executions.
#[test]
fn slow_readers_never_hold_admission_permits() {
    let server = NetServer::start(test_service(1), fast_config()).expect("bind");

    // The slow reader: pipeline a pile of requests and read nothing.
    let mut slow = NetClient::connect(server.local_addr()).expect("connect slow");
    for _ in 0..20 {
        slow.send(&Request { epsilon: None, sql: SQL.to_string() }).expect("pipelined send");
    }
    // Wait until at least one of its replies has been produced (and is
    // now parked in socket buffers or a blocked write).
    wait_until("slow reader's first reply written", || server.stats().frames_out >= 1);

    // Through the same 1-wide gate, a well-behaved client completes —
    // repeatedly — while the slow reader still hasn't read a byte.
    let mut brisk = NetClient::connect(server.local_addr()).expect("connect brisk");
    for _ in 0..5 {
        let reply = brisk.query(SQL).expect("brisk round trip");
        assert!(matches!(reply, Decoded::Reply(_)));
    }

    // The gauge proves the permit is not parked with the replies: no
    // query is executing right now, undelivered replies or not.
    wait_until("in_flight returns to 0", || server.service().admission_stats().in_flight == 0);

    // The slow reader's replies were never lost — they arrive, in
    // order, when it finally reads.
    for _ in 0..20 {
        assert!(matches!(slow.receive().expect("late reply"), Decoded::Reply(_)));
    }
}

/// A connection that goes quiet between requests is reaped at the idle
/// timeout, counted in `timeouts`, and the active gauge returns to 0.
#[test]
fn idle_connections_are_reaped() {
    let config = NetConfig {
        idle_timeout: Duration::from_millis(100),
        tick: Duration::from_millis(2),
        ..fast_config()
    };
    let server = NetServer::start(test_service(4), config).expect("bind");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let started = Instant::now();
    // Send nothing; the server closes us (EOF) once the idle budget
    // runs out.
    let mut buf = Vec::new();
    let n = stream.read_to_end(&mut buf).expect("EOF from reaper");
    assert_eq!(n, 0, "reaped without a reply frame");
    assert!(started.elapsed() >= Duration::from_millis(90), "not reaped early");
    wait_until("reaped connection deregistered", || server.stats().connections_active == 0);
    let stats = server.stats();
    assert!(stats.timeouts >= 1, "the reap counts as a timeout: {stats:?}");
    assert_eq!(stats.connections_closed, 1);
}

/// Graceful drain under in-flight load: every request admitted before
/// the drain finishes with a real reply, no connection survives, and
/// new connections are refused.
#[test]
fn graceful_drain_finishes_in_flight_work() {
    let server = Arc::new(NetServer::start(test_service(8), fast_config()).expect("bind"));
    let addr = server.local_addr();

    // Clients hammer in a loop until the server drains them out.
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut completed = 0usize;
                let Ok(mut client) = NetClient::connect(addr) else { return completed };
                loop {
                    match client.query(SQL) {
                        Ok(Decoded::Reply(_)) => completed += 1,
                        // Drain: a structured shutdown notice or a
                        // socket-level close — both are clean ends.
                        Ok(Decoded::Error { kind, .. }) => {
                            assert_eq!(kind, ErrorKind::Shutdown);
                            return completed;
                        }
                        Ok(other) => panic!("query answered with {other:?}"),
                        Err(_) => return completed,
                    }
                }
            })
        })
        .collect();

    // Let the load establish itself, then drain.
    wait_until("load is flowing", || server.stats().frames_out >= 8);
    let outcome = server.shutdown(Duration::from_secs(10));
    assert!(outcome.drained, "drain completed: {outcome:?}");
    assert!(!outcome.forced, "no force needed for well-behaved clients: {outcome:?}");
    assert_eq!(server.stats().connections_active, 0);

    let completed: usize = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    assert!(completed >= 8, "pre-drain requests completed normally ({completed})");

    // The listener is gone: new connections are refused outright.
    assert!(TcpStream::connect(addr).is_err(), "post-drain connections must be refused by the OS");
}

/// An idle connection mid-drain gets the structured shutdown notice.
#[test]
fn drain_notifies_idle_connections() {
    let server = Arc::new(NetServer::start(test_service(4), fast_config()).expect("bind"));
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    assert!(matches!(client.query(SQL).expect("warmup"), Decoded::Reply(_)));

    let drainer = {
        let server = server.clone();
        std::thread::spawn(move || server.shutdown(Duration::from_secs(10)))
    };
    // Between requests, the drain point answers `err kind=shutdown`
    // (or, in a tight race with our read, a bare close).
    match client.receive() {
        Ok(Decoded::Error { kind, .. }) => assert_eq!(kind, ErrorKind::Shutdown),
        Ok(other) => panic!("expected shutdown notice, got {other:?}"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::ConnectionReset
            ),
            "clean close or shutdown notice, not {e:?}"
        ),
    }
    let outcome = drainer.join().expect("drainer");
    assert!(outcome.drained && !outcome.forced, "{outcome:?}");
}

/// The shutdown deadline is enforced: a connection wedged mid-frame
/// (header sent, payload withheld, generous read budget) cannot stall
/// the drain past the caller's deadline plus the bounded force grace.
#[test]
fn shutdown_deadline_forces_wedged_connections() {
    let config = NetConfig {
        // A read budget far beyond the shutdown deadline: without the
        // force phase, the wedged frame would pin the drain for 30 s.
        read_timeout: Duration::from_secs(30),
        tick: Duration::from_millis(2),
        ..fast_config()
    };
    let server = NetServer::start(test_service(4), config).expect("bind");

    let mut wedged = TcpStream::connect(server.local_addr()).expect("connect");
    wedged.write_all(&128u32.to_be_bytes()).expect("header only");
    wait_until("wedge registered", || server.stats().connections_active == 1);

    let started = Instant::now();
    let outcome = server.shutdown(Duration::from_millis(200));
    let took = started.elapsed();
    assert!(outcome.forced, "the deadline had to force: {outcome:?}");
    assert!(outcome.drained, "force + grace cleared the wedge: {outcome:?}");
    assert!(
        took < Duration::from_secs(5),
        "shutdown returned promptly despite a 30 s read budget (took {took:?})"
    );
    assert_eq!(server.stats().connections_active, 0);
}
